//! Elaboration: lowering a parsed Verilog module onto the word-level
//! [`htd_rtl::Design`] IR.
//!
//! The elaborator implements the synthesizable-subset semantics needed for
//! the Trust-Hub style accelerator benchmarks:
//!
//! * one (implicit) clock domain — every edge-sensitive `always` block is
//!   treated as clocked by the global clock; clock ports disappear from the
//!   IR,
//! * synchronous or asynchronous resets are folded into register initial
//!   values (the detection method never constrains the starting state, so
//!   the reset net itself carries no information for the analysis) and the
//!   reset ports likewise disappear,
//! * nonblocking assignments in clocked blocks become register next-state
//!   functions; `if`/`case` control flow becomes mux trees with
//!   last-assignment-wins semantics,
//! * continuous assignments and combinational `always` blocks become wires,
//! * all vectors are unsigned, two-valued and at most 128 bits wide
//!   ([`htd_rtl::MAX_WIDTH`]).

use std::collections::{HashMap, HashSet};

use htd_rtl::{Design, ExprId, SignalId, ValidatedDesign};

use crate::ast::{
    AlwaysBlock, BinaryOperator, Expression, LValue, Module, NetDecl, NetKind, PortDirection,
    Sensitivity, SourceUnit, Statement, UnaryOperator,
};
use crate::error::{SourceLocation, VerilogError};
use crate::parser::parse;

/// Options controlling elaboration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ElaborateOptions {
    /// Name of the top module; when `None` the source must contain exactly
    /// one module.
    pub top: Option<String>,
    /// Port names (lower-cased) recognised as clocks in addition to the
    /// edge-sensitivity analysis.
    pub clock_ports: Vec<String>,
    /// Port names (lower-cased) recognised as resets in addition to the
    /// reset-branch analysis.
    pub reset_ports: Vec<String>,
}

impl Default for ElaborateOptions {
    fn default() -> Self {
        ElaborateOptions {
            top: None,
            clock_ports: vec!["clk".into(), "clock".into(), "i_clk".into(), "clk_i".into()],
            reset_ports: vec![
                "rst".into(),
                "reset".into(),
                "rst_n".into(),
                "resetn".into(),
                "nreset".into(),
                "i_rst".into(),
                "rst_i".into(),
            ],
        }
    }
}

/// Parses and elaborates Verilog source text with default options.
///
/// # Errors
///
/// Returns the first lexical, syntactic or elaboration error.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), htd_verilog::VerilogError> {
/// let design = htd_verilog::compile(
///     "module acc(input clk, input rst, input [7:0] d, output [7:0] q);
///        reg [7:0] total;
///        always @(posedge clk) begin
///          if (rst) total <= 8'd0;
///          else     total <= total + d;
///        end
///        assign q = total;
///      endmodule",
/// )?;
/// assert_eq!(design.design().name(), "acc");
/// assert_eq!(design.design().registers().len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn compile(source: &str) -> Result<ValidatedDesign, VerilogError> {
    compile_with_options(source, &ElaborateOptions::default())
}

/// Parses and elaborates Verilog source text with explicit options.
///
/// # Errors
///
/// Returns the first lexical, syntactic or elaboration error.
pub fn compile_with_options(
    source: &str,
    options: &ElaborateOptions,
) -> Result<ValidatedDesign, VerilogError> {
    let unit = parse(source)?;
    elaborate(&unit, options)
}

/// Elaborates an already-parsed [`SourceUnit`].
///
/// # Errors
///
/// Returns an elaboration error (undeclared names, unsupported constructs,
/// width problems, …).
pub fn elaborate(
    unit: &SourceUnit,
    options: &ElaborateOptions,
) -> Result<ValidatedDesign, VerilogError> {
    let module = match &options.top {
        Some(top) => unit
            .modules
            .iter()
            .find(|m| &m.name == top)
            .ok_or_else(|| VerilogError::UnknownModule { name: top.clone() })?,
        None => {
            if unit.modules.len() == 1 {
                &unit.modules[0]
            } else {
                return Err(VerilogError::Unsupported {
                    construct: "multiple modules without a top-module selection".to_string(),
                    location: unit.modules[1].location,
                });
            }
        }
    };
    Elaborator::new(module, options)?.run()
}

/// Width and offset of a declared vector.
#[derive(Clone, Copy, Debug)]
struct VectorShape {
    width: u32,
    lsb: u32,
}

/// How a name is driven.
#[derive(Clone, Debug, PartialEq, Eq)]
enum DriverKind {
    /// A primary input port.
    Input,
    /// Assigned with `<=`/`=` inside a clocked `always` block.
    Register { block: usize },
    /// Driven by continuous assignments (possibly several partial ones).
    Continuous,
    /// Assigned inside a combinational `always` block.
    Combinational { block: usize },
}

/// One partial continuous drive of a vector: the (msb, lsb) slice of the
/// target covered, the right-hand side, and the width context in which the
/// right-hand side is evaluated (Verilog's context-determined sizing: in
/// `assign {c, s} = a + b;` the addition is as wide as the whole target).
#[derive(Clone, Debug)]
struct PartialDrive {
    msb: u32,
    lsb: u32,
    value: Expression,
    context_width: u32,
}

struct Elaborator<'a> {
    module: &'a Module,
    options: &'a ElaborateOptions,
    design: Design,
    parameters: HashMap<String, u128>,
    shapes: HashMap<String, VectorShape>,
    directions: HashMap<String, PortDirection>,
    declared: HashSet<String>,
    drivers: HashMap<String, DriverKind>,
    continuous: HashMap<String, Vec<PartialDrive>>,
    clock_signals: HashSet<String>,
    /// Reset name → value it takes when *deasserted* (0 for active-high, 1
    /// for active-low).
    reset_signals: HashMap<String, u128>,
    inputs: HashMap<String, SignalId>,
    registers: HashMap<String, SignalId>,
    /// Lazily elaborated combinational values.
    comb_values: HashMap<String, ExprId>,
    /// Names currently being elaborated (combinational-loop detection).
    in_progress: Vec<String>,
}

impl<'a> Elaborator<'a> {
    fn new(module: &'a Module, options: &'a ElaborateOptions) -> Result<Self, VerilogError> {
        Ok(Elaborator {
            module,
            options,
            design: Design::new(module.name.clone()),
            parameters: HashMap::new(),
            shapes: HashMap::new(),
            directions: HashMap::new(),
            declared: HashSet::new(),
            drivers: HashMap::new(),
            continuous: HashMap::new(),
            clock_signals: HashSet::new(),
            reset_signals: HashMap::new(),
            inputs: HashMap::new(),
            registers: HashMap::new(),
            comb_values: HashMap::new(),
            in_progress: Vec::new(),
        })
    }

    fn run(mut self) -> Result<ValidatedDesign, VerilogError> {
        self.evaluate_parameters()?;
        self.collect_declarations()?;
        self.classify_clocks_and_resets()?;
        self.collect_drivers()?;
        self.create_inputs()?;
        self.create_registers()?;
        self.elaborate_clocked_blocks()?;
        self.elaborate_outputs()?;
        let design = std::mem::replace(&mut self.design, Design::new("done"));
        Ok(design.validated()?)
    }

    // ------------------------------------------------------------------
    // Pass 1: parameters and declarations
    // ------------------------------------------------------------------

    fn evaluate_parameters(&mut self) -> Result<(), VerilogError> {
        for p in &self.module.parameters {
            let value = self.const_eval(&p.value, "a parameter value")?;
            self.parameters.insert(p.name.clone(), value);
        }
        Ok(())
    }

    fn collect_declarations(&mut self) -> Result<(), VerilogError> {
        for decl in &self.module.declarations {
            self.add_declaration(decl)?;
        }
        // Port names listed in the header but never declared in the body are
        // an error we report eagerly with the module location.
        for port in &self.module.ports {
            if !self.declared.contains(port) {
                return Err(VerilogError::UndeclaredIdentifier {
                    name: port.clone(),
                    location: self.module.location,
                });
            }
        }
        Ok(())
    }

    fn add_declaration(&mut self, decl: &NetDecl) -> Result<(), VerilogError> {
        let shape = match &decl.range {
            Some((msb, lsb)) => {
                let msb = u32::try_from(self.const_eval(msb, "a range bound")?).unwrap_or(u32::MAX);
                let lsb = u32::try_from(self.const_eval(lsb, "a range bound")?).unwrap_or(u32::MAX);
                if msb < lsb {
                    return Err(VerilogError::Unsupported {
                        construct: format!("descending range [{msb}:{lsb}] of `{}`", decl.name),
                        location: decl.location,
                    });
                }
                VectorShape {
                    width: msb - lsb + 1,
                    lsb,
                }
            }
            None => match decl.kind {
                NetKind::Integer => VectorShape { width: 32, lsb: 0 },
                _ => VectorShape { width: 1, lsb: 0 },
            },
        };
        if let Some(direction) = decl.direction {
            if direction == PortDirection::Inout {
                return Err(VerilogError::Unsupported {
                    construct: format!("inout port `{}`", decl.name),
                    location: decl.location,
                });
            }
            self.directions.insert(decl.name.clone(), direction);
        }
        match self.shapes.get(&decl.name) {
            Some(existing) => {
                // Non-ANSI style declares a port twice (`output [7:0] y;` and
                // `reg [7:0] y;`); the shapes must agree, wider information
                // wins over the default scalar shape.
                if decl.range.is_some() && existing.width == 1 && shape.width != 1 {
                    self.shapes.insert(decl.name.clone(), shape);
                } else if decl.range.is_some()
                    && existing.width != 1
                    && shape.width != existing.width
                {
                    return Err(VerilogError::DuplicateDeclaration {
                        name: decl.name.clone(),
                        location: decl.location,
                    });
                }
            }
            None => {
                self.shapes.insert(decl.name.clone(), shape);
            }
        }
        self.declared.insert(decl.name.clone());
        Ok(())
    }

    // ------------------------------------------------------------------
    // Pass 2: clock / reset classification
    // ------------------------------------------------------------------

    fn classify_clocks_and_resets(&mut self) -> Result<(), VerilogError> {
        for block in &self.module.always_blocks {
            let Sensitivity::Edges(edges) = &block.sensitivity else {
                continue;
            };
            if edges.is_empty() {
                continue;
            }
            // Which edge signal is tested by an outer reset `if`?
            let mut reset_name: Option<String> = None;
            if let Some(analysis) = analyze_reset(block) {
                let is_edge = edges.iter().any(|e| e.signal == analysis.name);
                let in_list = self
                    .options
                    .reset_ports
                    .contains(&analysis.name.to_lowercase());
                if is_edge || in_list {
                    let deasserted = if analysis.active_low { 1 } else { 0 };
                    self.reset_signals.insert(analysis.name.clone(), deasserted);
                    reset_name = Some(analysis.name);
                }
            }
            // Every other edge signal is a clock.
            for e in edges {
                if Some(&e.signal) != reset_name.as_ref() {
                    self.clock_signals.insert(e.signal.clone());
                }
            }
        }
        // Ports named like clocks are clocks even if no always block uses
        // them (e.g. dead clock inputs of a benchmark wrapper).
        for port in &self.module.ports {
            if self.options.clock_ports.contains(&port.to_lowercase()) {
                self.clock_signals.insert(port.clone());
            }
        }
        // A signal cannot be both clock and reset.
        for name in self.reset_signals.keys() {
            if self.clock_signals.contains(name) {
                return Err(VerilogError::Unsupported {
                    construct: format!("`{name}` is used both as a clock and as a reset"),
                    location: self.module.location,
                });
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Pass 3: driver classification
    // ------------------------------------------------------------------

    fn collect_drivers(&mut self) -> Result<(), VerilogError> {
        for port in &self.module.ports {
            if self.directions.get(port) == Some(&PortDirection::Input) {
                self.drivers.insert(port.clone(), DriverKind::Input);
            }
        }
        for (index, block) in self.module.always_blocks.iter().enumerate() {
            let clocked = matches!(block.sensitivity, Sensitivity::Edges(_));
            let mut targets = Vec::new();
            collect_assigned_names(&block.body, &mut targets);
            for name in targets {
                if !self.declared.contains(&name) {
                    return Err(VerilogError::UndeclaredIdentifier {
                        name,
                        location: block.location,
                    });
                }
                let kind = if clocked {
                    DriverKind::Register { block: index }
                } else {
                    DriverKind::Combinational { block: index }
                };
                match self.drivers.get(&name) {
                    None => {
                        self.drivers.insert(name, kind);
                    }
                    Some(existing) if *existing == kind => {}
                    Some(_) => return Err(VerilogError::MultipleDrivers { name }),
                }
            }
        }
        for assign in &self.module.assigns {
            self.collect_continuous_target(&assign.target, &assign.value, None)?;
        }
        Ok(())
    }

    fn collect_continuous_target(
        &mut self,
        target: &LValue,
        value: &Expression,
        context_width: Option<u32>,
    ) -> Result<(), VerilogError> {
        match target {
            LValue::Identifier { name, location } => {
                let shape = self.shape_of(name, *location)?;
                let ctx = context_width.unwrap_or(shape.width);
                self.push_continuous(
                    name,
                    shape.width - 1 + shape.lsb,
                    shape.lsb,
                    value.clone(),
                    ctx,
                    *location,
                )
            }
            LValue::Bit {
                name,
                index,
                location,
            } => {
                let bit = u32::try_from(self.const_eval(index, "a bit-select target index")?)
                    .unwrap_or(u32::MAX);
                self.push_continuous(
                    name,
                    bit,
                    bit,
                    value.clone(),
                    context_width.unwrap_or(1),
                    *location,
                )
            }
            LValue::Part {
                name,
                msb,
                lsb,
                location,
            } => {
                let msb =
                    u32::try_from(self.const_eval(msb, "a part-select bound")?).unwrap_or(u32::MAX);
                let lsb =
                    u32::try_from(self.const_eval(lsb, "a part-select bound")?).unwrap_or(u32::MAX);
                let ctx = context_width.unwrap_or(msb.saturating_sub(lsb) + 1);
                self.push_continuous(name, msb, lsb, value.clone(), ctx, *location)
            }
            LValue::Concat { parts, location } => {
                // `assign {hi, lo} = expr;` — slice the right-hand side; the
                // right-hand side is evaluated as wide as the whole target.
                let mut offsets = Vec::new();
                let mut total = 0u32;
                for part in parts.iter().rev() {
                    let width = self.lvalue_width(part)?;
                    offsets.push((part, total));
                    total += width;
                }
                for (part, offset) in offsets {
                    let shifted = Expression::Binary {
                        op: BinaryOperator::ShiftRight,
                        left: Box::new(value.clone()),
                        right: Box::new(number(u128::from(offset), *location)),
                        location: *location,
                    };
                    self.collect_continuous_target(part, &shifted, Some(total))?;
                }
                Ok(())
            }
        }
    }

    fn push_continuous(
        &mut self,
        name: &str,
        msb: u32,
        lsb: u32,
        value: Expression,
        context_width: u32,
        location: SourceLocation,
    ) -> Result<(), VerilogError> {
        if !self.declared.contains(name) {
            return Err(VerilogError::UndeclaredIdentifier {
                name: name.to_string(),
                location,
            });
        }
        match self.drivers.get(name) {
            None => {
                self.drivers
                    .insert(name.to_string(), DriverKind::Continuous);
            }
            Some(DriverKind::Continuous) => {}
            Some(_) => {
                return Err(VerilogError::MultipleDrivers {
                    name: name.to_string(),
                })
            }
        }
        let entry = self.continuous.entry(name.to_string()).or_default();
        if entry.iter().any(|p| msb >= p.lsb && p.msb >= lsb) {
            return Err(VerilogError::MultipleDrivers {
                name: name.to_string(),
            });
        }
        entry.push(PartialDrive {
            msb,
            lsb,
            value,
            context_width,
        });
        Ok(())
    }

    fn lvalue_width(&mut self, target: &LValue) -> Result<u32, VerilogError> {
        Ok(match target {
            LValue::Identifier { name, location } => self.shape_of(name, *location)?.width,
            LValue::Bit { .. } => 1,
            LValue::Part { msb, lsb, .. } => {
                let msb = self.const_eval(msb, "a part-select bound")?;
                let lsb = self.const_eval(lsb, "a part-select bound")?;
                u32::try_from(msb.saturating_sub(lsb) + 1).unwrap_or(1)
            }
            LValue::Concat { parts, .. } => {
                let mut total = 0;
                for p in parts {
                    total += self.lvalue_width(p)?;
                }
                total
            }
        })
    }

    // ------------------------------------------------------------------
    // Pass 4: IR construction
    // ------------------------------------------------------------------

    fn create_inputs(&mut self) -> Result<(), VerilogError> {
        for port in &self.module.ports {
            if self.directions.get(port) != Some(&PortDirection::Input) {
                continue;
            }
            if self.clock_signals.contains(port) || self.reset_signals.contains_key(port) {
                continue;
            }
            let shape = self.shape_of(port, self.module.location)?;
            let id = self.design.add_input(port.clone(), shape.width)?;
            self.inputs.insert(port.clone(), id);
        }
        Ok(())
    }

    fn create_registers(&mut self) -> Result<(), VerilogError> {
        // Determine reset values first so registers get the right initial
        // value.
        let mut reset_values: HashMap<String, u128> = HashMap::new();
        for block in &self.module.always_blocks {
            if !matches!(block.sensitivity, Sensitivity::Edges(_)) {
                continue;
            }
            if let Some(analysis) = analyze_reset(block) {
                if self.reset_signals.contains_key(&analysis.name) {
                    let (reset_branch, _) =
                        split_reset_branches(&block.body, analysis.reset_branch_is_then);
                    self.collect_reset_values(reset_branch, &mut reset_values)?;
                }
            }
        }
        let names: Vec<String> = self
            .drivers
            .iter()
            .filter(|(_, kind)| matches!(kind, DriverKind::Register { .. }))
            .map(|(name, _)| name.clone())
            .collect();
        let mut sorted = names;
        sorted.sort();
        for name in sorted {
            let shape = self.shape_of(&name, self.module.location)?;
            let init = reset_values.get(&name).copied().unwrap_or(0) & mask_bits(shape.width);
            let ir_name = self.register_ir_name(&name);
            let id = self.design.add_register(ir_name, shape.width, init)?;
            self.registers.insert(name.clone(), id);
        }
        Ok(())
    }

    /// Output ports that are procedural registers keep the port name for the
    /// IR output and get a `_reg` suffix for the register itself (like a
    /// synthesis tool would).
    fn register_ir_name(&self, name: &str) -> String {
        if self.directions.get(name) == Some(&PortDirection::Output) {
            format!("{name}_reg")
        } else {
            name.to_string()
        }
    }

    fn collect_reset_values(
        &mut self,
        stmt: &Statement,
        values: &mut HashMap<String, u128>,
    ) -> Result<(), VerilogError> {
        match stmt {
            Statement::Block(stmts) => {
                for s in stmts {
                    self.collect_reset_values(s, values)?;
                }
                Ok(())
            }
            Statement::Assign { target, value, .. } => {
                let LValue::Identifier { name, .. } = target else {
                    // Partial resets are folded to zero-initialised registers.
                    return Ok(());
                };
                let name = name.clone();
                match self.const_eval(value, "a reset value") {
                    Ok(v) => {
                        values.insert(name, v);
                        Ok(())
                    }
                    Err(_) => Err(VerilogError::NonConstantReset { name }),
                }
            }
            Statement::If { .. } | Statement::Case { .. } | Statement::Empty => Ok(()),
        }
    }

    fn elaborate_clocked_blocks(&mut self) -> Result<(), VerilogError> {
        for (index, block) in self.module.always_blocks.iter().enumerate() {
            if !matches!(block.sensitivity, Sensitivity::Edges(_)) {
                continue;
            }
            // Strip the reset branch: the functional body is the non-reset
            // path; reset values have already been captured as initial
            // values.
            let body = match analyze_reset(block) {
                Some(analysis) if self.reset_signals.contains_key(&analysis.name) => {
                    let (_, functional) =
                        split_reset_branches(&block.body, analysis.reset_branch_is_then);
                    functional.cloned().unwrap_or(Statement::Empty)
                }
                _ => block.body.clone(),
            };
            // Current-value environment: every register assigned in this
            // block starts out holding its time-t value.
            let mut env: HashMap<String, ExprId> = HashMap::new();
            let mut targets = Vec::new();
            collect_assigned_names(&body, &mut targets);
            for name in &targets {
                if let Some(DriverKind::Register { block: b }) = self.drivers.get(name) {
                    if *b != index {
                        return Err(VerilogError::MultipleDrivers { name: name.clone() });
                    }
                    let reg = self.registers[name];
                    env.insert(name.clone(), self.design.signal(reg));
                } else {
                    return Err(VerilogError::MultipleDrivers { name: name.clone() });
                }
            }
            self.execute_statement(&body, &mut env)?;
            for (name, next) in env {
                let reg = self.registers[&name];
                let shape = self.shape_of(&name, block.location)?;
                let coerced = self.coerce(next, shape.width)?;
                self.design.set_register_next(reg, coerced)?;
            }
        }
        // Registers that belong to clocked blocks whose body is entirely a
        // reset branch (degenerate but legal) keep their value.
        let holds: Vec<(String, SignalId)> = self
            .registers
            .iter()
            .filter(|(_, id)| self.design.signal_info(**id).driver().is_none())
            .map(|(n, id)| (n.clone(), *id))
            .collect();
        for (_, id) in holds {
            let hold = self.design.signal(id);
            self.design.set_register_next(id, hold)?;
        }
        Ok(())
    }

    /// Executes one statement symbolically, updating the current-value
    /// environment.
    fn execute_statement(
        &mut self,
        stmt: &Statement,
        env: &mut HashMap<String, ExprId>,
    ) -> Result<(), VerilogError> {
        match stmt {
            Statement::Empty => Ok(()),
            Statement::Block(stmts) => {
                for s in stmts {
                    self.execute_statement(s, env)?;
                }
                Ok(())
            }
            Statement::Assign { target, value, .. } => {
                let ctx = Some(self.lvalue_width(target)?);
                let rhs = self.expression(value, env, ctx)?;
                self.assign_lvalue(target, rhs, env)
            }
            Statement::If {
                condition,
                then_branch,
                else_branch,
            } => {
                let cond = self.boolean_expr(condition, env)?;
                let mut then_env = env.clone();
                self.execute_statement(then_branch, &mut then_env)?;
                let mut else_env = env.clone();
                if let Some(else_branch) = else_branch {
                    self.execute_statement(else_branch, &mut else_env)?;
                }
                self.merge_envs(cond, then_env, else_env, env)
            }
            Statement::Case { subject, arms } => {
                let subject_expr = self.expression(subject, env, None)?;
                // Build the if-else chain from the last arm backwards.
                let mut result_env = env.clone();
                let default_arm = arms.iter().find(|a| a.labels.is_empty());
                if let Some(default_arm) = default_arm {
                    self.execute_statement(&default_arm.body, &mut result_env)?;
                }
                for arm in arms.iter().rev() {
                    if arm.labels.is_empty() {
                        continue;
                    }
                    let mut arm_env = env.clone();
                    self.execute_statement(&arm.body, &mut arm_env)?;
                    let cond = self.case_match(subject_expr, &arm.labels, env)?;
                    let base_env = result_env.clone();
                    self.merge_envs(cond, arm_env, base_env, &mut result_env)?;
                }
                *env = result_env;
                Ok(())
            }
        }
    }

    fn case_match(
        &mut self,
        subject: ExprId,
        labels: &[Expression],
        env: &HashMap<String, ExprId>,
    ) -> Result<ExprId, VerilogError> {
        let subject_width = self.design.expr_width(subject);
        let mut cond: Option<ExprId> = None;
        for label in labels {
            let label_expr = self.expression(label, env, Some(subject_width))?;
            let (a, b) = self.same_width(subject, label_expr)?;
            let eq = self.design.cmp_eq(a, b)?;
            cond = Some(match cond {
                None => eq,
                Some(c) => self.design.or(c, eq)?,
            });
        }
        Ok(cond.expect("case arms have at least one label"))
    }

    fn merge_envs(
        &mut self,
        cond: ExprId,
        then_env: HashMap<String, ExprId>,
        else_env: HashMap<String, ExprId>,
        out: &mut HashMap<String, ExprId>,
    ) -> Result<(), VerilogError> {
        let mut names: HashSet<String> = HashSet::new();
        names.extend(then_env.keys().cloned());
        names.extend(else_env.keys().cloned());
        for name in names {
            let then_val = then_env.get(&name).copied();
            let else_val = else_env.get(&name).copied();
            let merged = match (then_val, else_val) {
                (Some(t), Some(e)) if t == e => t,
                (Some(t), Some(e)) => {
                    let (t, e) = self.same_width(t, e)?;
                    self.design.mux(cond, t, e)?
                }
                // Only one branch assigns the variable and there is no prior
                // value to fall back to (the environments are clones of the
                // pre-branch state, so a prior value would appear in both):
                // inside a clocked block this cannot happen, inside a
                // combinational block it is an inferred latch unless a later
                // unconditional assignment overwrites it — leave the variable
                // unassigned so the end-of-block check catches it.
                (Some(_), None) | (None, Some(_)) | (None, None) => continue,
            };
            out.insert(name, merged);
        }
        Ok(())
    }

    fn assign_lvalue(
        &mut self,
        target: &LValue,
        rhs: ExprId,
        env: &mut HashMap<String, ExprId>,
    ) -> Result<(), VerilogError> {
        match target {
            LValue::Identifier { name, location } => {
                let shape = self.shape_of(name, *location)?;
                let value = self.coerce(rhs, shape.width)?;
                if self.parameters.contains_key(name)
                    || matches!(self.drivers.get(name), Some(DriverKind::Input))
                {
                    return Err(VerilogError::InvalidAssignmentTarget {
                        name: name.clone(),
                        location: *location,
                    });
                }
                env.insert(name.clone(), value);
                Ok(())
            }
            LValue::Bit {
                name,
                index,
                location,
            } => {
                let bit = self.const_eval(index, "a procedural bit-select index")?;
                let bit = u32::try_from(bit).unwrap_or(u32::MAX);
                self.assign_slice(name, bit, bit, rhs, env, *location)
            }
            LValue::Part {
                name,
                msb,
                lsb,
                location,
            } => {
                let msb = u32::try_from(self.const_eval(msb, "a part-select bound")?).unwrap_or(0);
                let lsb = u32::try_from(self.const_eval(lsb, "a part-select bound")?).unwrap_or(0);
                self.assign_slice(name, msb, lsb, rhs, env, *location)
            }
            LValue::Concat { parts, location } => {
                // Assign slices of the RHS to each part, least significant
                // part last.
                let mut widths = Vec::new();
                for part in parts {
                    widths.push(self.lvalue_width(part)?);
                }
                let rhs_width = self.design.expr_width(rhs);
                let total: u32 = widths.iter().sum();
                let padded = self.coerce(rhs, total.max(rhs_width))?;
                let mut offset = total;
                for (part, width) in parts.iter().zip(widths) {
                    offset -= width;
                    let slice = self.design.slice(padded, offset + width - 1, offset)?;
                    self.assign_lvalue(part, slice, env)?;
                }
                let _ = location;
                Ok(())
            }
        }
    }

    fn assign_slice(
        &mut self,
        name: &str,
        msb: u32,
        lsb: u32,
        rhs: ExprId,
        env: &mut HashMap<String, ExprId>,
        location: SourceLocation,
    ) -> Result<(), VerilogError> {
        let shape = self.shape_of(name, location)?;
        let current = *env
            .get(name)
            .ok_or_else(|| VerilogError::InvalidAssignmentTarget {
                name: name.to_string(),
                location,
            })?;
        let hi = msb.saturating_sub(shape.lsb);
        let lo = lsb.saturating_sub(shape.lsb);
        let width = hi - lo + 1;
        let part = self.coerce(rhs, width)?;
        // Rebuild the word from (above | part | below).
        let mut pieces: Vec<ExprId> = Vec::new();
        if hi < shape.width - 1 {
            pieces.push(self.design.slice(current, shape.width - 1, hi + 1)?);
        }
        pieces.push(part);
        if lo > 0 {
            pieces.push(self.design.slice(current, lo - 1, 0)?);
        }
        let rebuilt = self.design.concat_all(&pieces)?;
        env.insert(name.to_string(), rebuilt);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Outputs and combinational resolution
    // ------------------------------------------------------------------

    fn elaborate_outputs(&mut self) -> Result<(), VerilogError> {
        for port in &self.module.ports.clone() {
            if self.directions.get(port) != Some(&PortDirection::Output) {
                continue;
            }
            let value = self.resolve(port, self.module.location)?;
            let shape = self.shape_of(port, self.module.location)?;
            let value = self.coerce(value, shape.width)?;
            self.design.add_output(port.clone(), value)?;
        }
        Ok(())
    }

    /// Resolves the value of a named signal (input, register, parameter or
    /// combinational net), elaborating combinational logic on demand.
    fn resolve(&mut self, name: &str, location: SourceLocation) -> Result<ExprId, VerilogError> {
        if let Some(&id) = self.inputs.get(name) {
            return Ok(self.design.signal(id));
        }
        if let Some(&id) = self.registers.get(name) {
            return Ok(self.design.signal(id));
        }
        if let Some(&value) = self.parameters.get(name) {
            let width = bits_needed(value).max(32);
            return Ok(self.design.constant(value, width)?);
        }
        if self.clock_signals.contains(name) {
            return Err(VerilogError::Unsupported {
                construct: format!("clock `{name}` used in an expression"),
                location,
            });
        }
        if let Some(&deasserted) = self.reset_signals.get(name) {
            // Resets are folded away; outside the reset branch they read as
            // deasserted.
            return Ok(self.design.constant(deasserted, 1)?);
        }
        if let Some(&cached) = self.comb_values.get(name) {
            return Ok(cached);
        }
        if !self.declared.contains(name) {
            return Err(VerilogError::UndeclaredIdentifier {
                name: name.to_string(),
                location,
            });
        }
        if self.in_progress.iter().any(|n| n == name) {
            return Err(VerilogError::CombinationalLoop {
                name: name.to_string(),
            });
        }
        self.in_progress.push(name.to_string());
        let result = self.resolve_combinational(name, location);
        self.in_progress.pop();
        let value = result?;
        self.comb_values.insert(name.to_string(), value);
        Ok(value)
    }

    fn resolve_combinational(
        &mut self,
        name: &str,
        location: SourceLocation,
    ) -> Result<ExprId, VerilogError> {
        let shape = self.shape_of(name, location)?;
        match self.drivers.get(name).cloned() {
            Some(DriverKind::Continuous) => {
                let drives = self.continuous.get(name).cloned().unwrap_or_default();
                let empty = HashMap::new();
                // Assemble the word from the partial drives (uncovered bits
                // read as zero).
                let mut word: Option<ExprId> = None;
                for drive in drives {
                    let value = self.expression(&drive.value, &empty, Some(drive.context_width))?;
                    let width = drive.msb - drive.lsb + 1;
                    let value = self.coerce(value, width)?;
                    let placed = if drive.lsb > shape.lsb {
                        let shift = drive.lsb - shape.lsb;
                        let wide = self.coerce(value, shape.width)?;
                        let amount = self.design.constant(u128::from(shift), shape.width)?;
                        self.design.shl(wide, amount)?
                    } else {
                        self.coerce(value, shape.width)?
                    };
                    word = Some(match word {
                        None => placed,
                        Some(w) => self.design.or(w, placed)?,
                    });
                }
                word.ok_or_else(|| VerilogError::Unsupported {
                    construct: format!("`{name}` is read but never driven"),
                    location,
                })
            }
            Some(DriverKind::Combinational { block }) => {
                let block = self.module.always_blocks[block].clone();
                let mut env: HashMap<String, ExprId> = HashMap::new();
                self.execute_statement(&block.body, &mut env)?;
                // Cache every variable the block fully assigns.
                let mut targets = Vec::new();
                collect_assigned_names(&block.body, &mut targets);
                for target in &targets {
                    match env.get(target) {
                        Some(&value) => {
                            let width = self.shape_of(target, block.location)?.width;
                            let value = self.coerce(value, width)?;
                            self.comb_values.insert(target.clone(), value);
                        }
                        None => {
                            return Err(VerilogError::InferredLatch {
                                name: target.clone(),
                            })
                        }
                    }
                }
                self.comb_values
                    .get(name)
                    .copied()
                    .ok_or_else(|| VerilogError::InferredLatch {
                        name: name.to_string(),
                    })
            }
            Some(DriverKind::Input) | Some(DriverKind::Register { .. }) | None => {
                Err(VerilogError::Unsupported {
                    construct: format!("`{name}` is read but never driven"),
                    location,
                })
            }
        }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    /// Elaborates an expression.  `env` supplies the in-flight procedural
    /// values of registers/variables inside an always block; names not in the
    /// environment fall back to [`Self::resolve`].
    ///
    /// `ctx` is the context width of the expression (the width of the
    /// assignment target it feeds), which Verilog propagates into arithmetic
    /// and bitwise operands so that e.g. `{carry, sum} = a + b` keeps the
    /// carry bit.
    fn expression(
        &mut self,
        expr: &Expression,
        env: &HashMap<String, ExprId>,
        ctx: Option<u32>,
    ) -> Result<ExprId, VerilogError> {
        match expr {
            Expression::Number { value, location: _ } => {
                let width = value
                    .width
                    .unwrap_or_else(|| bits_needed(value.value).max(32));
                Ok(self
                    .design
                    .constant(value.value & mask_bits(width), width)?)
            }
            Expression::Identifier { name, location } => self.read_name(name, env, *location),
            Expression::BitSelect {
                name,
                index,
                location,
            } => {
                let base = self.read_name(name, env, *location)?;
                let shape = self.shape_of_or_value(name, base, *location);
                match self.const_eval(index, "a bit-select index") {
                    Ok(i) => {
                        let i = u32::try_from(i).unwrap_or(u32::MAX);
                        let bit = i.saturating_sub(shape.lsb);
                        Ok(self.design.slice(base, bit, bit)?)
                    }
                    Err(_) => {
                        // Dynamic bit select: shift right then take bit 0.
                        let idx = self.expression(index, env, None)?;
                        let base_width = self.design.expr_width(base);
                        let idx = self.coerce(idx, base_width)?;
                        let idx = if shape.lsb > 0 {
                            let offset = self.design.constant(u128::from(shape.lsb), base_width)?;
                            self.design.sub(idx, offset)?
                        } else {
                            idx
                        };
                        let shifted = self.design.shr(base, idx)?;
                        Ok(self.design.slice(shifted, 0, 0)?)
                    }
                }
            }
            Expression::PartSelect {
                name,
                msb,
                lsb,
                location,
            } => {
                let base = self.read_name(name, env, *location)?;
                let shape = self.shape_of_or_value(name, base, *location);
                let msb = u32::try_from(self.const_eval(msb, "a part-select bound")?).unwrap_or(0);
                let lsb = u32::try_from(self.const_eval(lsb, "a part-select bound")?).unwrap_or(0);
                let hi = msb.saturating_sub(shape.lsb);
                let lo = lsb.saturating_sub(shape.lsb);
                Ok(self.design.slice(base, hi, lo)?)
            }
            Expression::Unary {
                op,
                operand,
                location: _,
            } => {
                let operand_ctx = match op {
                    UnaryOperator::BitNot | UnaryOperator::Negate => ctx,
                    _ => None,
                };
                let value = self.expression(operand, env, operand_ctx)?;
                let value = match op {
                    UnaryOperator::BitNot | UnaryOperator::Negate => {
                        let w = self.design.expr_width(value).max(ctx.unwrap_or(0));
                        self.coerce(value, w)?
                    }
                    _ => value,
                };
                Ok(match op {
                    UnaryOperator::BitNot => self.design.not(value),
                    UnaryOperator::Negate => self.design.neg(value),
                    UnaryOperator::LogicalNot => {
                        let b = self.design.red_or(value);
                        self.design.not(b)
                    }
                    UnaryOperator::ReduceAnd => self.design.red_and(value),
                    UnaryOperator::ReduceOr => self.design.red_or(value),
                    UnaryOperator::ReduceXor => self.design.red_xor(value),
                    UnaryOperator::ReduceNand => {
                        let r = self.design.red_and(value);
                        self.design.not(r)
                    }
                    UnaryOperator::ReduceNor => {
                        let r = self.design.red_or(value);
                        self.design.not(r)
                    }
                    UnaryOperator::ReduceXnor => {
                        let r = self.design.red_xor(value);
                        self.design.not(r)
                    }
                })
            }
            Expression::Binary {
                op,
                left,
                right,
                location: _,
            } => {
                use BinaryOperator as B;
                match op {
                    B::And | B::Or | B::Xor | B::Xnor | B::Add | B::Sub | B::Mul => {
                        let l = self.expression(left, env, ctx)?;
                        let r = self.expression(right, env, ctx)?;
                        let w = self
                            .design
                            .expr_width(l)
                            .max(self.design.expr_width(r))
                            .max(ctx.unwrap_or(0));
                        let l = self.coerce(l, w)?;
                        let r = self.coerce(r, w)?;
                        self.binary(*op, l, r)
                    }
                    B::ShiftLeft | B::ShiftRight => {
                        let l = self.expression(left, env, ctx)?;
                        let w = self.design.expr_width(l).max(ctx.unwrap_or(0));
                        let l = self.coerce(l, w)?;
                        let r = self.expression(right, env, None)?;
                        self.binary(*op, l, r)
                    }
                    _ => {
                        let l = self.expression(left, env, None)?;
                        let r = self.expression(right, env, None)?;
                        self.binary(*op, l, r)
                    }
                }
            }
            Expression::Conditional {
                condition,
                then_value,
                else_value,
                location: _,
            } => {
                let cond = self.boolean_expr(condition, env)?;
                let t = self.expression(then_value, env, ctx)?;
                let e = self.expression(else_value, env, ctx)?;
                let (t, e) = self.same_width(t, e)?;
                Ok(self.design.mux(cond, t, e)?)
            }
            Expression::Concat { parts, location: _ } => {
                let mut ids = Vec::new();
                for part in parts {
                    ids.push(self.expression(part, env, None)?);
                }
                Ok(self.design.concat_all(&ids)?)
            }
            Expression::Repeat {
                count,
                value,
                location,
            } => {
                let n = self.const_eval(count, "a replication count")?;
                if n == 0 || n > 128 {
                    return Err(VerilogError::NotConstant {
                        context: "a replication count in 1..=128".to_string(),
                        location: *location,
                    });
                }
                let v = self.expression(value, env, None)?;
                let copies: Vec<ExprId> = (0..n).map(|_| v).collect();
                Ok(self.design.concat_all(&copies)?)
            }
        }
    }

    fn read_name(
        &mut self,
        name: &str,
        env: &HashMap<String, ExprId>,
        location: SourceLocation,
    ) -> Result<ExprId, VerilogError> {
        if let Some(&value) = env.get(name) {
            return Ok(value);
        }
        // Inside clocked blocks, reads of registers assigned in *other*
        // blocks refer to their time-t value, which `resolve` provides.
        self.resolve(name, location)
    }

    fn binary(&mut self, op: BinaryOperator, l: ExprId, r: ExprId) -> Result<ExprId, VerilogError> {
        use BinaryOperator as B;
        Ok(match op {
            B::And => {
                let (l, r) = self.same_width(l, r)?;
                self.design.and(l, r)?
            }
            B::Or => {
                let (l, r) = self.same_width(l, r)?;
                self.design.or(l, r)?
            }
            B::Xor => {
                let (l, r) = self.same_width(l, r)?;
                self.design.xor(l, r)?
            }
            B::Xnor => {
                let (l, r) = self.same_width(l, r)?;
                let x = self.design.xor(l, r)?;
                self.design.not(x)
            }
            B::Add => {
                let (l, r) = self.same_width(l, r)?;
                self.design.add(l, r)?
            }
            B::Sub => {
                let (l, r) = self.same_width(l, r)?;
                self.design.sub(l, r)?
            }
            B::Mul => {
                let (l, r) = self.same_width(l, r)?;
                self.design.mul(l, r)?
            }
            B::ShiftLeft => {
                let width = self.design.expr_width(l);
                let amount = self.coerce(r, width)?;
                self.design.shl(l, amount)?
            }
            B::ShiftRight => {
                let width = self.design.expr_width(l);
                let amount = self.coerce(r, width)?;
                self.design.shr(l, amount)?
            }
            B::Equal => {
                let (l, r) = self.same_width(l, r)?;
                self.design.cmp_eq(l, r)?
            }
            B::NotEqual => {
                let (l, r) = self.same_width(l, r)?;
                self.design.cmp_ne(l, r)?
            }
            B::Less => {
                let (l, r) = self.same_width(l, r)?;
                self.design.cmp_ult(l, r)?
            }
            B::LessEqual => {
                let (l, r) = self.same_width(l, r)?;
                self.design.cmp_ule(l, r)?
            }
            B::Greater => {
                let (l, r) = self.same_width(l, r)?;
                self.design.cmp_ult(r, l)?
            }
            B::GreaterEqual => {
                let (l, r) = self.same_width(l, r)?;
                self.design.cmp_ule(r, l)?
            }
            B::LogicalAnd => {
                let lb = self.design.red_or(l);
                let rb = self.design.red_or(r);
                self.design.and(lb, rb)?
            }
            B::LogicalOr => {
                let lb = self.design.red_or(l);
                let rb = self.design.red_or(r);
                self.design.or(lb, rb)?
            }
        })
    }

    fn boolean_expr(
        &mut self,
        expr: &Expression,
        env: &HashMap<String, ExprId>,
    ) -> Result<ExprId, VerilogError> {
        let value = self.expression(expr, env, None)?;
        if self.design.expr_width(value) == 1 {
            Ok(value)
        } else {
            Ok(self.design.red_or(value))
        }
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    fn shape_of(&self, name: &str, location: SourceLocation) -> Result<VectorShape, VerilogError> {
        self.shapes
            .get(name)
            .copied()
            .ok_or_else(|| VerilogError::UndeclaredIdentifier {
                name: name.to_string(),
                location,
            })
    }

    fn shape_of_or_value(
        &self,
        name: &str,
        value: ExprId,
        location: SourceLocation,
    ) -> VectorShape {
        self.shape_of(name, location).unwrap_or(VectorShape {
            width: self.design.expr_width(value),
            lsb: 0,
        })
    }

    fn coerce(&mut self, expr: ExprId, width: u32) -> Result<ExprId, VerilogError> {
        let actual = self.design.expr_width(expr);
        Ok(if actual == width {
            expr
        } else if actual < width {
            self.design.zero_ext(expr, width)?
        } else {
            self.design.slice(expr, width - 1, 0)?
        })
    }

    fn same_width(&mut self, a: ExprId, b: ExprId) -> Result<(ExprId, ExprId), VerilogError> {
        let wa = self.design.expr_width(a);
        let wb = self.design.expr_width(b);
        let w = wa.max(wb);
        Ok((self.coerce(a, w)?, self.coerce(b, w)?))
    }

    /// Evaluates a compile-time constant expression over the parameter
    /// environment.
    fn const_eval(&self, expr: &Expression, context: &str) -> Result<u128, VerilogError> {
        let err = |location| VerilogError::NotConstant {
            context: context.to_string(),
            location,
        };
        match expr {
            Expression::Number { value, .. } => Ok(value.value),
            Expression::Identifier { name, location } => self
                .parameters
                .get(name)
                .copied()
                .ok_or_else(|| err(*location)),
            Expression::Unary {
                op,
                operand,
                location,
            } => {
                let v = self.const_eval(operand, context)?;
                Ok(match op {
                    UnaryOperator::BitNot => !v,
                    UnaryOperator::LogicalNot => u128::from(v == 0),
                    UnaryOperator::Negate => v.wrapping_neg(),
                    _ => return Err(err(*location)),
                })
            }
            Expression::Binary {
                op,
                left,
                right,
                location: _,
            } => {
                let l = self.const_eval(left, context)?;
                let r = self.const_eval(right, context)?;
                Ok(match op {
                    BinaryOperator::Add => l.wrapping_add(r),
                    BinaryOperator::Sub => l.wrapping_sub(r),
                    BinaryOperator::Mul => l.wrapping_mul(r),
                    BinaryOperator::And => l & r,
                    BinaryOperator::Or => l | r,
                    BinaryOperator::Xor => l ^ r,
                    BinaryOperator::Xnor => !(l ^ r),
                    BinaryOperator::ShiftLeft => l.checked_shl(r as u32).unwrap_or(0),
                    BinaryOperator::ShiftRight => l.checked_shr(r as u32).unwrap_or(0),
                    BinaryOperator::Equal => u128::from(l == r),
                    BinaryOperator::NotEqual => u128::from(l != r),
                    BinaryOperator::Less => u128::from(l < r),
                    BinaryOperator::LessEqual => u128::from(l <= r),
                    BinaryOperator::Greater => u128::from(l > r),
                    BinaryOperator::GreaterEqual => u128::from(l >= r),
                    BinaryOperator::LogicalAnd => u128::from(l != 0 && r != 0),
                    BinaryOperator::LogicalOr => u128::from(l != 0 || r != 0),
                })
            }
            Expression::Conditional {
                condition,
                then_value,
                else_value,
                ..
            } => {
                let c = self.const_eval(condition, context)?;
                if c != 0 {
                    self.const_eval(then_value, context)
                } else {
                    self.const_eval(else_value, context)
                }
            }
            other => Err(err(other.location())),
        }
    }
}

fn number(value: u128, location: SourceLocation) -> Expression {
    Expression::Number {
        value: crate::token::Number { width: None, value },
        location,
    }
}

fn mask_bits(width: u32) -> u128 {
    if width >= 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    }
}

fn bits_needed(value: u128) -> u32 {
    (128 - value.leading_zeros()).max(1)
}

/// Collects every identifier assigned anywhere in a statement.
fn collect_assigned_names(stmt: &Statement, out: &mut Vec<String>) {
    fn lvalue_names(lv: &LValue, out: &mut Vec<String>) {
        match lv {
            LValue::Identifier { name, .. }
            | LValue::Bit { name, .. }
            | LValue::Part { name, .. } => {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
            LValue::Concat { parts, .. } => {
                for p in parts {
                    lvalue_names(p, out);
                }
            }
        }
    }
    match stmt {
        Statement::Block(stmts) => {
            for s in stmts {
                collect_assigned_names(s, out);
            }
        }
        Statement::Assign { target, .. } => lvalue_names(target, out),
        Statement::If {
            then_branch,
            else_branch,
            ..
        } => {
            collect_assigned_names(then_branch, out);
            if let Some(e) = else_branch {
                collect_assigned_names(e, out);
            }
        }
        Statement::Case { arms, .. } => {
            for arm in arms {
                collect_assigned_names(&arm.body, out);
            }
        }
        Statement::Empty => {}
    }
}

/// What `analyze_reset` learnt about a clocked block's reset handling.
#[derive(Clone, Debug)]
struct ResetAnalysis {
    /// The tested reset signal.
    name: String,
    /// `true` for active-low resets (negedge sensitivity or a negated test).
    active_low: bool,
    /// `true` when the *then* branch of the outer `if` is the reset branch.
    reset_branch_is_then: bool,
}

/// Inspects a clocked `always` block for the canonical reset idiom: an outer
/// `if` whose condition tests a single signal.  Polarity comes from the
/// sensitivity list when the signal is edge-sensitive (async reset) and from
/// the shape of the condition otherwise (sync reset).
fn analyze_reset(block: &AlwaysBlock) -> Option<ResetAnalysis> {
    let Sensitivity::Edges(edges) = &block.sensitivity else {
        return None;
    };
    let stmt = unwrap_single_block(&block.body);
    let Statement::If { condition, .. } = stmt else {
        return None;
    };
    let (name, cond_true_means_high) = reset_condition(condition)?;
    let negedge = edges.iter().any(|e| e.signal == name && !e.posedge);
    let posedge = edges.iter().any(|e| e.signal == name && e.posedge);
    let asserted_high = if posedge {
        true
    } else if negedge {
        false
    } else {
        cond_true_means_high
    };
    Some(ResetAnalysis {
        name,
        active_low: !asserted_high,
        reset_branch_is_then: asserted_high == cond_true_means_high,
    })
}

/// Splits the (possibly block-wrapped) outer reset `if` into (reset branch,
/// functional branch) given which side holds the reset assignments.
fn split_reset_branches(
    stmt: &Statement,
    reset_branch_is_then: bool,
) -> (&Statement, Option<&Statement>) {
    let stmt = unwrap_single_block(stmt);
    let Statement::If {
        then_branch,
        else_branch,
        ..
    } = stmt
    else {
        return (stmt, None);
    };
    if reset_branch_is_then {
        (then_branch, else_branch.as_deref())
    } else {
        match else_branch {
            Some(e) => (e, Some(then_branch)),
            None => (then_branch, None),
        }
    }
}

fn unwrap_single_block(stmt: &Statement) -> &Statement {
    match stmt {
        Statement::Block(stmts) if stmts.len() == 1 => unwrap_single_block(&stmts[0]),
        other => other,
    }
}

/// Recognises `rst`, `!rst`, `~rst`, `rst == 1'b1`, `rst == 0` style reset
/// conditions; returns the tested name and whether the *then* branch is the
/// asserted-reset branch.
fn reset_condition(expr: &Expression) -> Option<(String, bool)> {
    match expr {
        Expression::Identifier { name, .. } => Some((name.clone(), true)),
        Expression::Unary {
            op: UnaryOperator::LogicalNot | UnaryOperator::BitNot,
            operand,
            ..
        } => match operand.as_ref() {
            Expression::Identifier { name, .. } => Some((name.clone(), false)),
            _ => None,
        },
        Expression::Binary {
            op, left, right, ..
        } => {
            let (name, value) = match (left.as_ref(), right.as_ref()) {
                (Expression::Identifier { name, .. }, Expression::Number { value, .. }) => {
                    (name.clone(), value.value)
                }
                (Expression::Number { value, .. }, Expression::Identifier { name, .. }) => {
                    (name.clone(), value.value)
                }
                _ => return None,
            };
            match op {
                BinaryOperator::Equal => Some((name, value != 0)),
                BinaryOperator::NotEqual => Some((name, value == 0)),
                _ => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_rtl::sim::Simulator;

    fn sim_step(sim: &mut Simulator<'_>, inputs: &[(&str, u128)]) {
        for (name, value) in inputs {
            sim.set_input_by_name(name, *value).unwrap();
        }
        sim.step().unwrap();
    }

    #[test]
    fn compiles_a_registered_adder_and_matches_simulation() {
        let design = compile(
            "module acc(input clk, input rst, input [7:0] d, output [7:0] q);
               reg [7:0] total;
               always @(posedge clk or posedge rst) begin
                 if (rst) total <= 8'd0;
                 else     total <= total + d;
               end
               assign q = total;
             endmodule",
        )
        .unwrap();
        let d = design.design();
        assert_eq!(d.inputs().len(), 1, "clk and rst are folded away");
        assert_eq!(d.registers().len(), 1);
        let mut sim = Simulator::new(&design);
        sim_step(&mut sim, &[("d", 5)]);
        sim_step(&mut sim, &[("d", 7)]);
        assert_eq!(sim.peek_by_name("total").unwrap(), 12);
    }

    #[test]
    fn reset_values_become_register_initial_values() {
        let design = compile(
            "module m(input clk, input rst_n, output [3:0] q);
               reg [3:0] counter;
               always @(posedge clk or negedge rst_n) begin
                 if (!rst_n) counter <= 4'd9;
                 else        counter <= counter + 4'd1;
               end
               assign q = counter;
             endmodule",
        )
        .unwrap();
        let mut sim = Simulator::new(&design);
        assert_eq!(sim.peek_by_name("counter").unwrap(), 9);
        sim.step().unwrap();
        assert_eq!(sim.peek_by_name("counter").unwrap(), 10);
    }

    #[test]
    fn output_regs_get_a_reg_suffix_and_keep_the_port_name() {
        let design = compile(
            "module m(input clk, input [3:0] d, output reg [3:0] q);
               always @(posedge clk) q <= d;
             endmodule",
        )
        .unwrap();
        let d = design.design();
        assert!(d.lookup("q_reg").is_some());
        assert!(d.outputs().iter().any(|&o| d.signal_name(o) == "q"));
    }

    #[test]
    fn case_statements_become_mux_trees() {
        let design = compile(
            "module alu(input clk, input [1:0] op, input [7:0] a, b, output [7:0] y);
               reg [7:0] r;
               always @(posedge clk) begin
                 case (op)
                   2'd0: r <= a + b;
                   2'd1: r <= a ^ b;
                   2'd2: r <= a & b;
                   default: r <= 8'd0;
                 endcase
               end
               assign y = r;
             endmodule",
        )
        .unwrap();
        let mut sim = Simulator::new(&design);
        sim_step(&mut sim, &[("op", 0), ("a", 3), ("b", 4)]);
        assert_eq!(sim.peek_by_name("r").unwrap(), 7);
        sim_step(&mut sim, &[("op", 1), ("a", 0xF0), ("b", 0x0F)]);
        assert_eq!(sim.peek_by_name("r").unwrap(), 0xFF);
        sim_step(&mut sim, &[("op", 3), ("a", 1), ("b", 1)]);
        assert_eq!(sim.peek_by_name("r").unwrap(), 0);
    }

    #[test]
    fn combinational_always_blocks_become_wires() {
        let design = compile(
            "module m(input [1:0] sel, input [3:0] a, b, output [3:0] y);
               reg [3:0] pick;
               always @(*) begin
                 pick = 4'd0;
                 if (sel == 2'd1) pick = a;
                 if (sel == 2'd2) pick = b;
               end
               assign y = pick;
             endmodule",
        )
        .unwrap();
        let d = design.design();
        assert!(d.registers().is_empty(), "pick is combinational, not state");
        let mut sim = Simulator::new(&design);
        sim.set_input_by_name("sel", 1).unwrap();
        sim.set_input_by_name("a", 11).unwrap();
        sim.set_input_by_name("b", 3).unwrap();
        assert_eq!(sim.peek_by_name("y").unwrap(), 11);
    }

    #[test]
    fn partial_and_concatenated_continuous_assigns_assemble_the_word() {
        let design = compile(
            "module m(input [3:0] a, input [3:0] b, output [7:0] y, output [4:0] s);
               assign y[7:4] = a;
               assign y[3:0] = b;
               assign {s[4], s[3:0]} = a + b;
             endmodule",
        )
        .unwrap();
        let mut sim = Simulator::new(&design);
        sim.set_input_by_name("a", 0xA).unwrap();
        sim.set_input_by_name("b", 0x9).unwrap();
        assert_eq!(sim.peek_by_name("y").unwrap(), 0xA9);
        assert_eq!(sim.peek_by_name("s").unwrap(), 0x13);
    }

    #[test]
    fn parameters_and_part_selects_follow_declared_ranges() {
        let design = compile(
            "module m #(parameter WIDTH = 8) (input [WIDTH-1:0] a, output [3:0] hi);
               assign hi = a[WIDTH-1:WIDTH-4];
             endmodule",
        )
        .unwrap();
        let mut sim = Simulator::new(&design);
        sim.set_input_by_name("a", 0xC5).unwrap();
        assert_eq!(sim.peek_by_name("hi").unwrap(), 0xC);
    }

    #[test]
    fn rejects_multiply_driven_nets() {
        let err = compile(
            "module m(input a, b, output y);
               assign y = a;
               assign y = b;
             endmodule",
        )
        .unwrap_err();
        assert!(matches!(err, VerilogError::MultipleDrivers { .. }));
    }

    #[test]
    fn rejects_combinational_loops() {
        let err = compile(
            "module m(input a, output y);
               wire u, v;
               assign u = v ^ a;
               assign v = u;
               assign y = v;
             endmodule",
        )
        .unwrap_err();
        assert!(matches!(err, VerilogError::CombinationalLoop { .. }));
    }

    #[test]
    fn rejects_incomplete_combinational_assignment_as_a_latch() {
        let err = compile(
            "module m(input c, input [3:0] a, output [3:0] y);
               reg [3:0] t;
               always @(*) begin
                 if (c) t = a;
               end
               assign y = t;
             endmodule",
        )
        .unwrap_err();
        assert!(matches!(err, VerilogError::InferredLatch { .. }));
    }

    #[test]
    fn rejects_undeclared_identifiers() {
        let err = compile("module m(input a, output y); assign y = ghost; endmodule").unwrap_err();
        assert!(matches!(err, VerilogError::UndeclaredIdentifier { .. }));
    }

    #[test]
    fn rejects_non_constant_reset_values() {
        let err = compile(
            "module m(input clk, input rst, input [3:0] d, output [3:0] q);
               reg [3:0] r;
               always @(posedge clk) begin
                 if (rst) r <= d;
                 else r <= r + 4'd1;
               end
               assign q = r;
             endmodule",
        )
        .unwrap_err();
        assert!(matches!(err, VerilogError::NonConstantReset { .. }));
    }

    #[test]
    fn selects_the_requested_top_module() {
        let source = "module a(input x, output y); assign y = x; endmodule
                      module b(input x, output y); assign y = ~x; endmodule";
        let unit = parse(source).unwrap();
        let opts = ElaborateOptions {
            top: Some("b".to_string()),
            ..ElaborateOptions::default()
        };
        let design = elaborate(&unit, &opts).unwrap();
        assert_eq!(design.design().name(), "b");
        let missing = ElaborateOptions {
            top: Some("zzz".to_string()),
            ..ElaborateOptions::default()
        };
        assert!(matches!(
            elaborate(&unit, &missing).unwrap_err(),
            VerilogError::UnknownModule { .. }
        ));
    }

    #[test]
    fn bit_selects_with_dynamic_indices_become_shifts() {
        let design = compile(
            "module m(input [7:0] a, input [2:0] i, output y);
               assign y = a[i];
             endmodule",
        )
        .unwrap();
        let mut sim = Simulator::new(&design);
        sim.set_input_by_name("a", 0b0100_0000).unwrap();
        sim.set_input_by_name("i", 6).unwrap();
        assert_eq!(sim.peek_by_name("y").unwrap(), 1);
        sim.set_input_by_name("i", 5).unwrap();
        assert_eq!(sim.peek_by_name("y").unwrap(), 0);
    }

    #[test]
    fn replication_and_reduction_operators_work() {
        let design = compile(
            "module m(input [3:0] a, output [7:0] dup, output all, output any, output odd);
               assign dup = {2{a}};
               assign all = &a;
               assign any = |a;
               assign odd = ^a;
             endmodule",
        )
        .unwrap();
        let mut sim = Simulator::new(&design);
        sim.set_input_by_name("a", 0b1011).unwrap();
        assert_eq!(sim.peek_by_name("dup").unwrap(), 0b1011_1011);
        assert_eq!(sim.peek_by_name("all").unwrap(), 0);
        assert_eq!(sim.peek_by_name("any").unwrap(), 1);
        assert_eq!(sim.peek_by_name("odd").unwrap(), 1);
    }
}
