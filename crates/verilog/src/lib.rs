//! # htd-verilog
//!
//! A front-end for a synthesizable subset of Verilog-2001 that lowers RTL
//! source text onto the word-level [`htd_rtl`] IR used by the golden-free
//! hardware-Trojan detection toolkit.
//!
//! The DATE'24 method operates on RTL designs such as the Trust-Hub
//! accelerator benchmarks, which are distributed as Verilog.  This crate
//! closes that gap for single-module, single-clock-domain designs:
//!
//! * `module` headers in ANSI or non-ANSI style, `parameter`/`localparam`,
//! * `wire`/`reg` vectors up to 128 bits, `assign` statements,
//! * clocked `always` blocks (sync or async reset, folded into register
//!   initial values) with `if`/`case` control flow and bit/part-select
//!   targets,
//! * combinational `always` blocks with blocking assignments,
//! * the usual unsigned operator set, concatenation, replication and
//!   part selects.
//!
//! Outside the subset (module hierarchies, memories, functions, tristates,
//! four-valued logic) the front-end fails with a located
//! [`VerilogError::Unsupported`] instead of mis-compiling.
//!
//! # Example
//!
//! Compile a small accumulator and hand it straight to the detection flow:
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = htd_verilog::compile(
//!     "module acc(input clk, input rst, input [7:0] d, output [7:0] q);
//!        reg [7:0] total;
//!        always @(posedge clk) begin
//!          if (rst) total <= 8'd0;
//!          else     total <= total + d;
//!        end
//!        assign q = total;
//!      endmodule",
//! )?;
//! assert_eq!(design.design().registers().len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod elaborate;
mod error;
mod parser;
mod token;

pub use elaborate::{compile, compile_with_options, elaborate, ElaborateOptions};
pub use error::{SourceLocation, VerilogError};
pub use parser::parse;
pub use token::{lex, Keyword, Number, Token, TokenKind};
