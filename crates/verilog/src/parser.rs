//! Recursive-descent parser for the supported Verilog subset.

use crate::ast::{
    AlwaysBlock, BinaryOperator, CaseArm, ContinuousAssign, EdgeEvent, Expression, LValue, Module,
    NetDecl, NetKind, ParameterDecl, PortDirection, Sensitivity, SourceUnit, Statement,
    UnaryOperator,
};
use crate::error::{SourceLocation, VerilogError};
use crate::token::{lex, Keyword, Token, TokenKind};

/// Parses Verilog source text into a [`SourceUnit`].
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered, with its source
/// location.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), htd_verilog::VerilogError> {
/// let unit = htd_verilog::parse(
///     "module inverter(input a, output y); assign y = ~a; endmodule",
/// )?;
/// assert_eq!(unit.modules.len(), 1);
/// assert_eq!(unit.modules[0].name, "inverter");
/// # Ok(())
/// # }
/// ```
pub fn parse(source: &str) -> Result<SourceUnit, VerilogError> {
    let tokens = lex(source)?;
    Parser::new(tokens).source_unit()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Direction, kind and optional range of the most recent ANSI port
/// declaration, inherited by following bare identifiers in the header.
type AnsiPortHeader = (PortDirection, NetKind, Option<(Expression, Expression)>);

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn location(&self) -> SourceLocation {
        self.peek().location
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek_kind() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, expected: &str) -> Result<Token, VerilogError> {
        if self.peek_kind() == kind {
            Ok(self.bump())
        } else {
            Err(self.unexpected(expected))
        }
    }

    fn expect_keyword(&mut self, kw: Keyword) -> Result<Token, VerilogError> {
        self.expect(&TokenKind::Keyword(kw), kw.as_str())
    }

    fn unexpected(&self, expected: &str) -> VerilogError {
        VerilogError::UnexpectedToken {
            found: self.peek_kind().to_string(),
            expected: expected.to_string(),
            location: self.location(),
        }
    }

    fn identifier(&mut self, expected: &str) -> Result<(String, SourceLocation), VerilogError> {
        let location = self.location();
        match self.peek_kind().clone() {
            TokenKind::Identifier(name) => {
                self.bump();
                Ok((name, location))
            }
            _ => Err(self.unexpected(expected)),
        }
    }

    // ------------------------------------------------------------------
    // Top level
    // ------------------------------------------------------------------

    fn source_unit(mut self) -> Result<SourceUnit, VerilogError> {
        let mut modules = Vec::new();
        while *self.peek_kind() != TokenKind::Eof {
            modules.push(self.module()?);
        }
        if modules.is_empty() {
            return Err(VerilogError::EmptySource);
        }
        Ok(SourceUnit { modules })
    }

    fn module(&mut self) -> Result<Module, VerilogError> {
        let start = self.location();
        self.expect_keyword(Keyword::Module)?;
        let (name, _) = self.identifier("a module name")?;

        let mut module = Module {
            name,
            ports: Vec::new(),
            parameters: Vec::new(),
            declarations: Vec::new(),
            assigns: Vec::new(),
            always_blocks: Vec::new(),
            location: start,
        };

        // Optional `#(parameter …)` header.
        if self.eat(&TokenKind::Hash) {
            self.expect(&TokenKind::LeftParen, "(")?;
            loop {
                if self.eat(&TokenKind::Keyword(Keyword::Parameter)) {
                    // fallthrough to the name below
                }
                let (pname, ploc) = self.identifier("a parameter name")?;
                self.expect(&TokenKind::Assign, "=")?;
                let value = self.expression()?;
                module.parameters.push(ParameterDecl {
                    name: pname,
                    value,
                    local: false,
                    location: ploc,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RightParen, ")")?;
        }

        // Port header: either a plain name list or ANSI-style declarations.
        if self.eat(&TokenKind::LeftParen) && !self.eat(&TokenKind::RightParen) {
            let mut last_ansi: Option<AnsiPortHeader> = None;
            loop {
                self.port_header_entry(&mut module, &mut last_ansi)?;
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RightParen, ")")?;
        }
        self.expect(&TokenKind::Semicolon, ";")?;

        // Module body.
        loop {
            match self.peek_kind().clone() {
                TokenKind::Keyword(Keyword::Endmodule) => {
                    self.bump();
                    break;
                }
                TokenKind::Keyword(Keyword::Input)
                | TokenKind::Keyword(Keyword::Output)
                | TokenKind::Keyword(Keyword::Inout)
                | TokenKind::Keyword(Keyword::Wire)
                | TokenKind::Keyword(Keyword::Reg)
                | TokenKind::Keyword(Keyword::Integer) => {
                    let decls = self.net_declaration()?;
                    module.declarations.extend(decls);
                }
                TokenKind::Keyword(Keyword::Parameter)
                | TokenKind::Keyword(Keyword::Localparam) => {
                    let params = self.parameter_declaration()?;
                    module.parameters.extend(params);
                }
                TokenKind::Keyword(Keyword::Assign) => {
                    let assigns = self.continuous_assign()?;
                    module.assigns.extend(assigns);
                }
                TokenKind::Keyword(Keyword::Always) => {
                    let block = self.always_block()?;
                    module.always_blocks.push(block);
                }
                TokenKind::Keyword(Keyword::Initial)
                | TokenKind::Keyword(Keyword::Function)
                | TokenKind::Keyword(Keyword::Generate)
                | TokenKind::Keyword(Keyword::For) => {
                    return Err(VerilogError::Unsupported {
                        construct: format!("`{}` blocks", self.peek_kind()),
                        location: self.location(),
                    });
                }
                TokenKind::Identifier(_) => {
                    return Err(VerilogError::Unsupported {
                        construct: "module instantiation (flatten the hierarchy first)".to_string(),
                        location: self.location(),
                    });
                }
                TokenKind::Eof => return Err(self.unexpected("`endmodule`")),
                _ => return Err(self.unexpected("a module item")),
            }
        }
        Ok(module)
    }

    /// One entry of an ANSI or non-ANSI port header.
    ///
    /// A bare identifier that follows an ANSI declaration (`input [7:0] a, b`)
    /// inherits that declaration's direction, kind and range via `last_ansi`;
    /// a bare identifier at the start of the header is a non-ANSI port whose
    /// declaration appears in the module body.
    fn port_header_entry(
        &mut self,
        module: &mut Module,
        last_ansi: &mut Option<AnsiPortHeader>,
    ) -> Result<(), VerilogError> {
        let direction = match self.peek_kind() {
            TokenKind::Keyword(Keyword::Input) => Some(PortDirection::Input),
            TokenKind::Keyword(Keyword::Output) => Some(PortDirection::Output),
            TokenKind::Keyword(Keyword::Inout) => Some(PortDirection::Inout),
            _ => None,
        };
        if let Some(direction) = direction {
            // ANSI-style declaration in the header.
            self.bump();
            let mut kind = NetKind::Wire;
            if self.eat(&TokenKind::Keyword(Keyword::Reg)) {
                kind = NetKind::Reg;
            } else {
                self.eat(&TokenKind::Keyword(Keyword::Wire));
            }
            self.eat(&TokenKind::Keyword(Keyword::Signed));
            let range = self.optional_range()?;
            let (name, location) = self.identifier("a port name")?;
            module.ports.push(name.clone());
            module.declarations.push(NetDecl {
                name,
                direction: Some(direction),
                kind,
                range: range.clone(),
                location,
            });
            *last_ansi = Some((direction, kind, range));
            Ok(())
        } else {
            let (name, location) = self.identifier("a port name or direction")?;
            module.ports.push(name.clone());
            if let Some((direction, kind, range)) = last_ansi {
                module.declarations.push(NetDecl {
                    name,
                    direction: Some(*direction),
                    kind: *kind,
                    range: range.clone(),
                    location,
                });
            }
            Ok(())
        }
    }

    /// `input|output|inout|wire|reg|integer [signed] [range] name {, name};`
    fn net_declaration(&mut self) -> Result<Vec<NetDecl>, VerilogError> {
        let mut direction = None;
        let mut kind = NetKind::Wire;
        match self.peek_kind() {
            TokenKind::Keyword(Keyword::Input) => {
                direction = Some(PortDirection::Input);
                self.bump();
            }
            TokenKind::Keyword(Keyword::Output) => {
                direction = Some(PortDirection::Output);
                self.bump();
            }
            TokenKind::Keyword(Keyword::Inout) => {
                direction = Some(PortDirection::Inout);
                self.bump();
            }
            _ => {}
        }
        match self.peek_kind() {
            TokenKind::Keyword(Keyword::Wire) => {
                self.bump();
            }
            TokenKind::Keyword(Keyword::Reg) => {
                kind = NetKind::Reg;
                self.bump();
            }
            TokenKind::Keyword(Keyword::Integer) => {
                kind = NetKind::Integer;
                self.bump();
            }
            _ => {}
        }
        self.eat(&TokenKind::Keyword(Keyword::Signed));
        let range = self.optional_range()?;

        let mut decls = Vec::new();
        loop {
            let (name, location) = self.identifier("a declared name")?;
            // Memories (`reg [7:0] mem [0:255]`) are outside the subset.
            if *self.peek_kind() == TokenKind::LeftBracket {
                return Err(VerilogError::Unsupported {
                    construct: format!("memory/array declaration of `{name}`"),
                    location: self.location(),
                });
            }
            // Declaration assignment `wire x = expr;` is desugared into a
            // declaration plus continuous assignment by the elaborator; keep
            // the expression around via a synthetic assign.
            decls.push(NetDecl {
                name,
                direction,
                kind,
                range: range.clone(),
                location,
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::Semicolon, ";")?;
        Ok(decls)
    }

    /// `parameter|localparam [range] name = expr {, name = expr};`
    fn parameter_declaration(&mut self) -> Result<Vec<ParameterDecl>, VerilogError> {
        let local = match self.peek_kind() {
            TokenKind::Keyword(Keyword::Localparam) => {
                self.bump();
                true
            }
            _ => {
                self.expect_keyword(Keyword::Parameter)?;
                false
            }
        };
        self.eat(&TokenKind::Keyword(Keyword::Signed));
        let _ = self.optional_range()?;
        let mut params = Vec::new();
        loop {
            let (name, location) = self.identifier("a parameter name")?;
            self.expect(&TokenKind::Assign, "=")?;
            let value = self.expression()?;
            params.push(ParameterDecl {
                name,
                value,
                local,
                location,
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::Semicolon, ";")?;
        Ok(params)
    }

    fn optional_range(&mut self) -> Result<Option<(Expression, Expression)>, VerilogError> {
        if !self.eat(&TokenKind::LeftBracket) {
            return Ok(None);
        }
        let msb = self.expression()?;
        self.expect(&TokenKind::Colon, ":")?;
        let lsb = self.expression()?;
        self.expect(&TokenKind::RightBracket, "]")?;
        Ok(Some((msb, lsb)))
    }

    /// `assign target = expr {, target = expr};`
    fn continuous_assign(&mut self) -> Result<Vec<ContinuousAssign>, VerilogError> {
        self.expect_keyword(Keyword::Assign)?;
        let mut assigns = Vec::new();
        loop {
            let location = self.location();
            let target = self.lvalue()?;
            self.expect(&TokenKind::Assign, "=")?;
            let value = self.expression()?;
            assigns.push(ContinuousAssign {
                target,
                value,
                location,
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::Semicolon, ";")?;
        Ok(assigns)
    }

    fn always_block(&mut self) -> Result<AlwaysBlock, VerilogError> {
        let location = self.location();
        self.expect_keyword(Keyword::Always)?;
        self.expect(&TokenKind::At, "@")?;
        let sensitivity = self.sensitivity()?;
        let body = self.statement()?;
        Ok(AlwaysBlock {
            sensitivity,
            body,
            location,
        })
    }

    fn sensitivity(&mut self) -> Result<Sensitivity, VerilogError> {
        // `@*` without parentheses.
        if self.eat(&TokenKind::Star) {
            return Ok(Sensitivity::Combinational);
        }
        self.expect(&TokenKind::LeftParen, "(")?;
        if self.eat(&TokenKind::Star) {
            self.expect(&TokenKind::RightParen, ")")?;
            return Ok(Sensitivity::Combinational);
        }
        let mut edges = Vec::new();
        let mut combinational = false;
        loop {
            match self.peek_kind().clone() {
                TokenKind::Keyword(Keyword::Posedge) => {
                    self.bump();
                    let (signal, _) = self.identifier("a signal name")?;
                    edges.push(EdgeEvent {
                        posedge: true,
                        signal,
                    });
                }
                TokenKind::Keyword(Keyword::Negedge) => {
                    self.bump();
                    let (signal, _) = self.identifier("a signal name")?;
                    edges.push(EdgeEvent {
                        posedge: false,
                        signal,
                    });
                }
                TokenKind::Identifier(_) => {
                    // A level-sensitive list (`@(a or b)`) is combinational.
                    self.bump();
                    combinational = true;
                }
                _ => return Err(self.unexpected("a sensitivity list entry")),
            }
            if self.eat(&TokenKind::Keyword(Keyword::Or)) || self.eat(&TokenKind::Comma) {
                continue;
            }
            break;
        }
        self.expect(&TokenKind::RightParen, ")")?;
        if combinational && edges.is_empty() {
            Ok(Sensitivity::Combinational)
        } else if !combinational {
            Ok(Sensitivity::Edges(edges))
        } else {
            Err(VerilogError::Unsupported {
                construct: "mixed edge- and level-sensitive sensitivity list".to_string(),
                location: self.location(),
            })
        }
    }

    fn statement(&mut self) -> Result<Statement, VerilogError> {
        match self.peek_kind().clone() {
            TokenKind::Keyword(Keyword::Begin) => {
                self.bump();
                // Optional block label `begin : name`.
                if self.eat(&TokenKind::Colon) {
                    let _ = self.identifier("a block label")?;
                }
                let mut body = Vec::new();
                while *self.peek_kind() != TokenKind::Keyword(Keyword::End) {
                    if *self.peek_kind() == TokenKind::Eof {
                        return Err(self.unexpected("`end`"));
                    }
                    body.push(self.statement()?);
                }
                self.bump();
                Ok(Statement::Block(body))
            }
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                self.expect(&TokenKind::LeftParen, "(")?;
                let condition = self.expression()?;
                self.expect(&TokenKind::RightParen, ")")?;
                let then_branch = Box::new(self.statement()?);
                let else_branch = if self.eat(&TokenKind::Keyword(Keyword::Else)) {
                    Some(Box::new(self.statement()?))
                } else {
                    None
                };
                Ok(Statement::If {
                    condition,
                    then_branch,
                    else_branch,
                })
            }
            TokenKind::Keyword(Keyword::Case) | TokenKind::Keyword(Keyword::Casez) => {
                self.bump();
                self.expect(&TokenKind::LeftParen, "(")?;
                let subject = self.expression()?;
                self.expect(&TokenKind::RightParen, ")")?;
                let mut arms = Vec::new();
                loop {
                    if self.eat(&TokenKind::Keyword(Keyword::Endcase)) {
                        break;
                    }
                    if *self.peek_kind() == TokenKind::Eof {
                        return Err(self.unexpected("`endcase`"));
                    }
                    if self.eat(&TokenKind::Keyword(Keyword::Default)) {
                        self.eat(&TokenKind::Colon);
                        let body = self.statement()?;
                        arms.push(CaseArm {
                            labels: Vec::new(),
                            body,
                        });
                        continue;
                    }
                    let mut labels = vec![self.expression()?];
                    while self.eat(&TokenKind::Comma) {
                        labels.push(self.expression()?);
                    }
                    self.expect(&TokenKind::Colon, ":")?;
                    let body = self.statement()?;
                    arms.push(CaseArm { labels, body });
                }
                Ok(Statement::Case { subject, arms })
            }
            TokenKind::Semicolon => {
                self.bump();
                Ok(Statement::Empty)
            }
            TokenKind::Identifier(_) | TokenKind::LeftBrace => {
                let location = self.location();
                let target = self.lvalue()?;
                let nonblocking = match self.peek_kind() {
                    TokenKind::LessEq => {
                        self.bump();
                        true
                    }
                    TokenKind::Assign => {
                        self.bump();
                        false
                    }
                    _ => return Err(self.unexpected("`=` or `<=`")),
                };
                // Optional intra-assignment delay `#n` is ignored.
                if self.eat(&TokenKind::Hash) {
                    let _ = self.bump();
                }
                let value = self.expression()?;
                self.expect(&TokenKind::Semicolon, ";")?;
                Ok(Statement::Assign {
                    target,
                    value,
                    nonblocking,
                    location,
                })
            }
            TokenKind::Hash => {
                // A delay statement `#10 stmt;` — the delay is ignored.
                self.bump();
                let _ = self.bump();
                self.statement()
            }
            _ => Err(self.unexpected("a statement")),
        }
    }

    fn lvalue(&mut self) -> Result<LValue, VerilogError> {
        let location = self.location();
        if self.eat(&TokenKind::LeftBrace) {
            let mut parts = Vec::new();
            loop {
                parts.push(self.lvalue()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RightBrace, "}")?;
            return Ok(LValue::Concat { parts, location });
        }
        let (name, location) = self.identifier("an assignment target")?;
        if self.eat(&TokenKind::LeftBracket) {
            let first = self.expression()?;
            if self.eat(&TokenKind::Colon) {
                let lsb = self.expression()?;
                self.expect(&TokenKind::RightBracket, "]")?;
                return Ok(LValue::Part {
                    name,
                    msb: first,
                    lsb,
                    location,
                });
            }
            self.expect(&TokenKind::RightBracket, "]")?;
            return Ok(LValue::Bit {
                name,
                index: first,
                location,
            });
        }
        Ok(LValue::Identifier { name, location })
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    fn expression(&mut self) -> Result<Expression, VerilogError> {
        self.conditional()
    }

    fn conditional(&mut self) -> Result<Expression, VerilogError> {
        let location = self.location();
        let condition = self.logical_or()?;
        if self.eat(&TokenKind::Question) {
            let then_value = self.expression()?;
            self.expect(&TokenKind::Colon, ":")?;
            let else_value = self.conditional()?;
            return Ok(Expression::Conditional {
                condition: Box::new(condition),
                then_value: Box::new(then_value),
                else_value: Box::new(else_value),
                location,
            });
        }
        Ok(condition)
    }

    fn logical_or(&mut self) -> Result<Expression, VerilogError> {
        let mut left = self.logical_and()?;
        while *self.peek_kind() == TokenKind::PipePipe {
            let location = self.location();
            self.bump();
            let right = self.logical_and()?;
            left = binary(BinaryOperator::LogicalOr, left, right, location);
        }
        Ok(left)
    }

    fn logical_and(&mut self) -> Result<Expression, VerilogError> {
        let mut left = self.bitwise_or()?;
        while *self.peek_kind() == TokenKind::AmpAmp {
            let location = self.location();
            self.bump();
            let right = self.bitwise_or()?;
            left = binary(BinaryOperator::LogicalAnd, left, right, location);
        }
        Ok(left)
    }

    fn bitwise_or(&mut self) -> Result<Expression, VerilogError> {
        let mut left = self.bitwise_xor()?;
        while *self.peek_kind() == TokenKind::Pipe {
            let location = self.location();
            self.bump();
            let right = self.bitwise_xor()?;
            left = binary(BinaryOperator::Or, left, right, location);
        }
        Ok(left)
    }

    fn bitwise_xor(&mut self) -> Result<Expression, VerilogError> {
        let mut left = self.bitwise_and()?;
        loop {
            let location = self.location();
            let op = match self.peek_kind() {
                TokenKind::Caret => BinaryOperator::Xor,
                TokenKind::Xnor => BinaryOperator::Xnor,
                _ => break,
            };
            self.bump();
            let right = self.bitwise_and()?;
            left = binary(op, left, right, location);
        }
        Ok(left)
    }

    fn bitwise_and(&mut self) -> Result<Expression, VerilogError> {
        let mut left = self.equality()?;
        while *self.peek_kind() == TokenKind::Amp {
            let location = self.location();
            self.bump();
            let right = self.equality()?;
            left = binary(BinaryOperator::And, left, right, location);
        }
        Ok(left)
    }

    fn equality(&mut self) -> Result<Expression, VerilogError> {
        let mut left = self.relational()?;
        loop {
            let location = self.location();
            let op = match self.peek_kind() {
                TokenKind::EqEq => BinaryOperator::Equal,
                TokenKind::NotEq => BinaryOperator::NotEqual,
                _ => break,
            };
            self.bump();
            let right = self.relational()?;
            left = binary(op, left, right, location);
        }
        Ok(left)
    }

    fn relational(&mut self) -> Result<Expression, VerilogError> {
        let mut left = self.shift()?;
        loop {
            let location = self.location();
            let op = match self.peek_kind() {
                TokenKind::Less => BinaryOperator::Less,
                TokenKind::LessEq => BinaryOperator::LessEqual,
                TokenKind::Greater => BinaryOperator::Greater,
                TokenKind::GreaterEq => BinaryOperator::GreaterEqual,
                _ => break,
            };
            self.bump();
            let right = self.shift()?;
            left = binary(op, left, right, location);
        }
        Ok(left)
    }

    fn shift(&mut self) -> Result<Expression, VerilogError> {
        let mut left = self.additive()?;
        loop {
            let location = self.location();
            let op = match self.peek_kind() {
                TokenKind::ShiftLeft => BinaryOperator::ShiftLeft,
                TokenKind::ShiftRight => BinaryOperator::ShiftRight,
                _ => break,
            };
            self.bump();
            let right = self.additive()?;
            left = binary(op, left, right, location);
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expression, VerilogError> {
        let mut left = self.multiplicative()?;
        loop {
            let location = self.location();
            let op = match self.peek_kind() {
                TokenKind::Plus => BinaryOperator::Add,
                TokenKind::Minus => BinaryOperator::Sub,
                _ => break,
            };
            self.bump();
            let right = self.multiplicative()?;
            left = binary(op, left, right, location);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expression, VerilogError> {
        let mut left = self.unary()?;
        loop {
            let location = self.location();
            match self.peek_kind() {
                TokenKind::Star => {
                    self.bump();
                    let right = self.unary()?;
                    left = binary(BinaryOperator::Mul, left, right, location);
                }
                TokenKind::Slash | TokenKind::Percent => {
                    return Err(VerilogError::Unsupported {
                        construct: "division / modulo operators".to_string(),
                        location,
                    });
                }
                _ => break,
            }
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expression, VerilogError> {
        let location = self.location();
        let op = match self.peek_kind() {
            TokenKind::Tilde => {
                self.bump();
                // `~&`, `~|`, `~^` reduction forms.
                match self.peek_kind() {
                    TokenKind::Amp => {
                        self.bump();
                        UnaryOperator::ReduceNand
                    }
                    TokenKind::Pipe => {
                        self.bump();
                        UnaryOperator::ReduceNor
                    }
                    _ => UnaryOperator::BitNot,
                }
            }
            TokenKind::Bang => {
                self.bump();
                UnaryOperator::LogicalNot
            }
            TokenKind::Minus => {
                self.bump();
                UnaryOperator::Negate
            }
            TokenKind::Plus => {
                self.bump();
                return self.unary();
            }
            TokenKind::Amp => {
                self.bump();
                UnaryOperator::ReduceAnd
            }
            TokenKind::Pipe => {
                self.bump();
                UnaryOperator::ReduceOr
            }
            TokenKind::Caret => {
                self.bump();
                UnaryOperator::ReduceXor
            }
            TokenKind::Xnor => {
                self.bump();
                UnaryOperator::ReduceXnor
            }
            _ => return self.primary(),
        };
        let operand = self.unary()?;
        Ok(Expression::Unary {
            op,
            operand: Box::new(operand),
            location,
        })
    }

    fn primary(&mut self) -> Result<Expression, VerilogError> {
        let location = self.location();
        match self.peek_kind().clone() {
            TokenKind::Number(value) => {
                self.bump();
                Ok(Expression::Number { value, location })
            }
            TokenKind::Identifier(name) => {
                self.bump();
                if self.eat(&TokenKind::LeftBracket) {
                    let first = self.expression()?;
                    if self.eat(&TokenKind::Colon) {
                        let lsb = self.expression()?;
                        self.expect(&TokenKind::RightBracket, "]")?;
                        return Ok(Expression::PartSelect {
                            name,
                            msb: Box::new(first),
                            lsb: Box::new(lsb),
                            location,
                        });
                    }
                    self.expect(&TokenKind::RightBracket, "]")?;
                    return Ok(Expression::BitSelect {
                        name,
                        index: Box::new(first),
                        location,
                    });
                }
                if *self.peek_kind() == TokenKind::LeftParen {
                    return Err(VerilogError::Unsupported {
                        construct: format!("function call `{name}(…)`"),
                        location,
                    });
                }
                Ok(Expression::Identifier { name, location })
            }
            TokenKind::LeftParen => {
                self.bump();
                let inner = self.expression()?;
                self.expect(&TokenKind::RightParen, ")")?;
                Ok(inner)
            }
            TokenKind::LeftBrace => {
                self.bump();
                let first = self.expression()?;
                // `{N{expr}}` replication: the first expression is followed by
                // another brace group.
                if *self.peek_kind() == TokenKind::LeftBrace {
                    self.bump();
                    let value = self.expression()?;
                    self.expect(&TokenKind::RightBrace, "}")?;
                    self.expect(&TokenKind::RightBrace, "}")?;
                    return Ok(Expression::Repeat {
                        count: Box::new(first),
                        value: Box::new(value),
                        location,
                    });
                }
                let mut parts = vec![first];
                while self.eat(&TokenKind::Comma) {
                    parts.push(self.expression()?);
                }
                self.expect(&TokenKind::RightBrace, "}")?;
                Ok(Expression::Concat { parts, location })
            }
            _ => Err(self.unexpected("an expression")),
        }
    }
}

fn binary(
    op: BinaryOperator,
    left: Expression,
    right: Expression,
    location: SourceLocation,
) -> Expression {
    Expression::Binary {
        op,
        left: Box::new(left),
        right: Box::new(right),
        location,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_module() {
        let unit = parse("module m(input a, output y); assign y = ~a; endmodule").unwrap();
        assert_eq!(unit.modules.len(), 1);
        let m = &unit.modules[0];
        assert_eq!(m.name, "m");
        assert_eq!(m.ports, vec!["a", "y"]);
        assert_eq!(m.declarations.len(), 2);
        assert_eq!(m.assigns.len(), 1);
    }

    #[test]
    fn parses_non_ansi_port_declarations() {
        let unit = parse(
            "module m(a, b, y);
               input  [7:0] a, b;
               output [7:0] y;
               assign y = a + b;
             endmodule",
        )
        .unwrap();
        let m = &unit.modules[0];
        assert_eq!(m.ports, vec!["a", "b", "y"]);
        assert_eq!(m.declarations.len(), 3);
        assert!(m.declarations.iter().all(|d| d.range.is_some()));
    }

    #[test]
    fn parses_clocked_always_with_if_else() {
        let unit = parse(
            "module m(input clk, input rst, input [3:0] d, output reg [3:0] q);
               always @(posedge clk or posedge rst) begin
                 if (rst) q <= 4'd0;
                 else q <= d;
               end
             endmodule",
        )
        .unwrap();
        let m = &unit.modules[0];
        assert_eq!(m.always_blocks.len(), 1);
        match &m.always_blocks[0].sensitivity {
            Sensitivity::Edges(edges) => {
                assert_eq!(edges.len(), 2);
                assert!(edges.iter().all(|e| e.posedge));
            }
            Sensitivity::Combinational => panic!("expected an edge-sensitive block"),
        }
    }

    #[test]
    fn parses_case_statements_and_concatenation() {
        let unit = parse(
            "module m(input [1:0] sel, input [3:0] a, b, output reg [7:0] y);
               always @(*) begin
                 case (sel)
                   2'd0: y = {a, b};
                   2'd1: y = {2{a}};
                   default: y = 8'h00;
                 endcase
               end
             endmodule",
        )
        .unwrap();
        let m = &unit.modules[0];
        match &m.always_blocks[0].body {
            Statement::Block(stmts) => match &stmts[0] {
                Statement::Case { arms, .. } => {
                    assert_eq!(arms.len(), 3);
                    assert!(arms[2].labels.is_empty());
                }
                other => panic!("expected a case statement, got {other:?}"),
            },
            other => panic!("expected a block, got {other:?}"),
        }
    }

    #[test]
    fn parses_parameters_and_part_selects() {
        let unit = parse(
            "module m #(parameter WIDTH = 8) (input [WIDTH-1:0] a, output [3:0] y);
               localparam HALF = WIDTH >> 1;
               assign y = a[HALF-1:0] ^ a[7:4];
             endmodule",
        )
        .unwrap();
        let m = &unit.modules[0];
        assert_eq!(m.parameters.len(), 2);
        assert!(m.parameters[1].local);
    }

    #[test]
    fn operator_precedence_binds_ternary_last() {
        let unit =
            parse("module m(input a, b, c, output y); assign y = a & b ? b | c : ~c; endmodule")
                .unwrap();
        let assign = &unit.modules[0].assigns[0];
        assert!(matches!(assign.value, Expression::Conditional { .. }));
    }

    #[test]
    fn rejects_module_instantiation_with_a_clear_message() {
        let err =
            parse("module top(input a, output y); sub u0(.a(a), .y(y)); endmodule").unwrap_err();
        match err {
            VerilogError::Unsupported { construct, .. } => {
                assert!(construct.contains("instantiation"));
            }
            other => panic!("expected an unsupported-construct error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_unexpected_tokens_with_location() {
        let err = parse("module m(input a); assign = a; endmodule").unwrap_err();
        match err {
            VerilogError::UnexpectedToken { location, .. } => {
                assert_eq!(location.line, 1);
            }
            other => panic!("expected a parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_empty_sources() {
        assert_eq!(
            parse("// nothing here\n").unwrap_err(),
            VerilogError::EmptySource
        );
    }

    #[test]
    fn parses_multiple_modules() {
        let unit = parse(
            "module a(input x, output y); assign y = x; endmodule
             module b(input x, output y); assign y = ~x; endmodule",
        )
        .unwrap();
        assert_eq!(unit.modules.len(), 2);
        assert_eq!(unit.modules[1].name, "b");
    }
}
