//! End-to-end: compile Verilog source with the front-end and run the
//! golden-free detection flow of `htd-core` on the result.
//!
//! This mirrors how the paper's method is meant to be used — the input is
//! the RTL of a (possibly infected) accelerator, no golden model and no
//! functional specification.

use htd_core::{DetectedBy, DetectionOutcome, SessionBuilder};
use htd_verilog::compile;

/// A toy streaming cipher: the "key add" stage xors the latched data word
/// with a key register, a second stage rotates it.  Non-interfering and
/// data-driven, like the accelerators the paper targets.
const CLEAN_CIPHER: &str = "
module toy_cipher(
  input clk,
  input rst,
  input  [15:0] din,
  input  [15:0] key,
  output [15:0] dout
);
  reg [15:0] stage1;
  reg [15:0] stage2;
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      stage1 <= 16'h0000;
      stage2 <= 16'h0000;
    end else begin
      stage1 <= din ^ key;
      stage2 <= {stage1[7:0], stage1[15:8]};
    end
  end
  assign dout = stage2;
endmodule
";

/// The same cipher with a sequential Trojan: a 2-state FSM armed by the magic
/// plaintext 16'hDEAD; once armed, the payload flips the LSB of stage 2
/// (an AES-T2500-style ciphertext corruption with an input-dependent
/// trigger).
const INFECTED_CIPHER: &str = "
module toy_cipher_t1(
  input clk,
  input rst,
  input  [15:0] din,
  input  [15:0] key,
  output [15:0] dout
);
  reg [15:0] stage1;
  reg [15:0] stage2;
  reg        armed;
  always @(posedge clk or posedge rst) begin
    if (rst) armed <= 1'b0;
    else if (din == 16'hDEAD) armed <= 1'b1;
  end
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      stage1 <= 16'h0000;
      stage2 <= 16'h0000;
    end else begin
      stage1 <= din ^ key;
      stage2 <= {stage1[7:0], stage1[15:8]} ^ {15'd0, armed};
    end
  end
  assign dout = stage2;
endmodule
";

/// A variant whose trigger is a free-running counter started by reset and
/// whose payload drives a side-channel shift register that never reaches the
/// outputs — the AES-T1900 situation, caught by the coverage check.
const COUNTER_TROJAN: &str = "
module toy_cipher_t2(
  input clk,
  input rst,
  input  [15:0] din,
  input  [15:0] key,
  output [15:0] dout
);
  reg [15:0] stage1;
  reg [15:0] stage2;
  reg [7:0]  heartbeat;
  reg [7:0]  leak_shift;
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      heartbeat  <= 8'd0;
      leak_shift <= 8'd0;
    end else begin
      heartbeat  <= heartbeat + 8'd1;
      leak_shift <= {leak_shift[6:0], heartbeat[7]};
    end
  end
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      stage1 <= 16'h0000;
      stage2 <= 16'h0000;
    end else begin
      stage1 <= din ^ key;
      stage2 <= {stage1[7:0], stage1[15:8]};
    end
  end
  assign dout = stage2;
endmodule
";

#[test]
fn clean_verilog_cipher_verifies_secure() {
    let design = compile(CLEAN_CIPHER).expect("clean cipher compiles");
    let report = SessionBuilder::new(design.clone())
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert!(report.outcome.is_secure(), "{report}");
    assert_eq!(report.spurious_resolved, 0);
}

#[test]
fn plaintext_triggered_trojan_in_verilog_is_detected() {
    let design = compile(INFECTED_CIPHER).expect("infected cipher compiles");
    let report = SessionBuilder::new(design.clone())
        .build()
        .unwrap()
        .run()
        .unwrap();
    match &report.outcome {
        DetectionOutcome::PropertyFailed {
            detected_by,
            counterexample,
        } => {
            // The trigger FSM watches the plaintext, so either the trigger
            // register itself (init property) or the payload divergence (a
            // fanout property) is reported; the counterexample must point at
            // Trojan state, not at the clean datapath.
            assert!(matches!(
                detected_by,
                DetectedBy::InitProperty | DetectedBy::FanoutProperty(_)
            ));
            let names = counterexample.diff_names();
            assert!(
                names
                    .iter()
                    .any(|n| n.contains("armed") || n.contains("stage2")),
                "unexpected counterexample signals: {names:?}"
            );
        }
        other => panic!("expected a property failure, got {other:?}"),
    }
}

#[test]
fn counter_triggered_side_channel_trojan_is_caught_by_coverage_check() {
    let design = compile(COUNTER_TROJAN).expect("counter trojan compiles");
    let report = SessionBuilder::new(design.clone())
        .build()
        .unwrap()
        .run()
        .unwrap();
    match &report.outcome {
        DetectionOutcome::UncoveredSignals { signals } => {
            assert!(signals.iter().any(|s| s.contains("heartbeat")));
            assert!(signals.iter().any(|s| s.contains("leak_shift")));
        }
        other => panic!("expected uncovered signals, got {other:?}"),
    }
}

#[test]
fn infected_and_clean_designs_differ_only_in_the_verdict() {
    // Compiling both and running the same flow is the golden-free promise:
    // no reference design was needed to tell them apart.
    let clean = compile(CLEAN_CIPHER).unwrap();
    let infected = compile(INFECTED_CIPHER).unwrap();
    let clean_report = SessionBuilder::new(clean.clone())
        .build()
        .unwrap()
        .run()
        .unwrap();
    let infected_report = SessionBuilder::new(infected.clone())
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert!(clean_report.outcome.is_secure());
    assert!(!infected_report.outcome.is_secure());
}

#[test]
fn combinational_uart_style_status_logic_compiles_and_verifies() {
    // A small UART-transmitter-like design with a case-based state machine
    // and combinational status outputs; exercises case statements, part
    // selects and comb always blocks through the whole stack.
    let source = "
module tx(
  input clk,
  input rst,
  input       start,
  input [7:0] data,
  output      busy,
  output      line
);
  reg [1:0] state;
  reg [7:0] shifter;
  reg [2:0] count;
  reg       busy_r;
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      state   <= 2'd0;
      shifter <= 8'd0;
      count   <= 3'd0;
      busy_r  <= 1'b0;
    end else begin
      case (state)
        2'd0: begin
          busy_r <= 1'b0;
          if (start) begin
            shifter <= data;
            count   <= 3'd7;
            state   <= 2'd1;
            busy_r  <= 1'b1;
          end
        end
        2'd1: begin
          shifter <= {1'b0, shifter[7:1]};
          count   <= count - 3'd1;
          if (count == 3'd0) state <= 2'd0;
        end
        default: state <= 2'd0;
      endcase
    end
  end
  assign busy = busy_r;
  assign line = shifter[0];
endmodule
";
    let design = compile(source).expect("uart-style module compiles");
    let d = design.design();
    assert_eq!(d.registers().len(), 4);
    // The design is interfering (the FSM state persists across frames), so
    // the plain flow may or may not raise spurious counterexamples — what
    // matters here is that the whole pipeline runs and produces a report.
    let report = SessionBuilder::new(design.clone())
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert!(report.properties_checked() >= 1);
}
