//! Word-level to bit-level lowering ("bit blasting").
//!
//! Every word-level RTL expression is lowered to a vector of AIG literals
//! (LSB first).  The lowering happens inside a [`BlastContext`], which caches
//! already-lowered signals and sub-expressions so shared logic is only built
//! once and structural hashing in the [`Aig`] can take full effect.

use crate::fxhash::FxHashMap;

use htd_rtl::{BinaryOp, Design, Expr, ExprId, SignalId, SignalKind, UnaryOp};

use crate::aig::{Aig, AigLit};

/// A word value as a vector of AIG literals, least-significant bit first.
pub type BitVec = Vec<AigLit>;

/// Converts a constant into a bit vector.
#[must_use]
pub fn const_bits(value: u128, width: u32) -> BitVec {
    (0..width)
        .map(|i| {
            if (value >> i) & 1 == 1 {
                AigLit::TRUE
            } else {
                AigLit::FALSE
            }
        })
        .collect()
}

/// Recovers the numeric value of a bit vector if every bit is constant.
#[must_use]
pub fn bits_to_const(bits: &[AigLit]) -> Option<u128> {
    let mut value = 0u128;
    for (i, &b) in bits.iter().enumerate() {
        if b == AigLit::TRUE {
            value |= 1 << i;
        } else if b != AigLit::FALSE {
            return None;
        }
    }
    Some(value)
}

/// One lowering context: an environment binding signals to bit vectors plus
/// memoisation tables.
///
/// A context corresponds to one (instance, time-point) pair in the property
/// encodings: the checker binds the registers and inputs of that instance at
/// that time and then lowers the expressions it needs.
///
/// # Example
///
/// ```
/// use htd_ipc::aig::Aig;
/// use htd_ipc::bitblast::{BlastContext, const_bits, bits_to_const};
/// use htd_rtl::Design;
///
/// # fn main() -> Result<(), htd_rtl::DesignError> {
/// let mut d = Design::new("adder");
/// let a = d.add_input("a", 4)?;
/// let b = d.add_input("b", 4)?;
/// let sum = d.add(d.signal(a), d.signal(b))?;
/// d.add_output("sum", sum)?;
/// let design = d.validated()?;
///
/// let mut aig = Aig::new();
/// let mut ctx = BlastContext::new();
/// // Bind both inputs to constants and fold the adder away.
/// ctx.bind(a, const_bits(3, 4));
/// ctx.bind(b, const_bits(4, 4));
/// let bits = ctx.expr(design.design(), &mut aig, sum);
/// assert_eq!(bits_to_const(&bits), Some(7));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct BlastContext {
    signal_values: FxHashMap<SignalId, BitVec>,
    expr_cache: FxHashMap<ExprId, BitVec>,
}

impl BlastContext {
    /// Creates an empty context with no signals bound.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds a signal (an input or register) to a bit vector.
    ///
    /// # Panics
    ///
    /// Panics if the signal was already bound to a *different* value; a
    /// context represents a single consistent valuation.
    pub fn bind(&mut self, signal: SignalId, bits: BitVec) {
        if let Some(existing) = self.signal_values.get(&signal) {
            assert_eq!(existing, &bits, "signal bound twice with different values");
            return;
        }
        self.signal_values.insert(signal, bits);
    }

    /// The binding of a signal, if any.
    #[must_use]
    pub fn binding(&self, signal: SignalId) -> Option<&BitVec> {
        self.signal_values.get(&signal)
    }

    /// Lowers a signal: bound signals return their binding, wires and outputs
    /// are lowered through their driving expression (and memoised).
    ///
    /// # Panics
    ///
    /// Panics if an unbound input or register is referenced — the checker
    /// must bind the full state before lowering.
    pub fn signal(&mut self, design: &Design, aig: &mut Aig, signal: SignalId) -> BitVec {
        if let Some(bits) = self.signal_values.get(&signal) {
            return bits.clone();
        }
        let info = design.signal_info(signal);
        match info.kind() {
            SignalKind::Input | SignalKind::Register { .. } => {
                panic!(
                    "signal `{}` must be bound before lowering (inputs and registers are free \
                     variables of the property encoding)",
                    info.name()
                );
            }
            SignalKind::Wire | SignalKind::Output => {
                let driver = info.driver().expect("validated design");
                let bits = self.expr(design, aig, driver);
                self.signal_values.insert(signal, bits.clone());
                bits
            }
        }
    }

    /// Lowers an expression to a bit vector.
    pub fn expr(&mut self, design: &Design, aig: &mut Aig, expr: ExprId) -> BitVec {
        if let Some(bits) = self.expr_cache.get(&expr) {
            return bits.clone();
        }
        let bits = match design.expr(expr).clone() {
            Expr::Const { value, width } => const_bits(value, width),
            Expr::Signal(s) => self.signal(design, aig, s),
            Expr::Unary { op, a } => {
                let va = self.expr(design, aig, a);
                lower_unary(aig, op, &va)
            }
            Expr::Binary { op, a, b } => {
                let va = self.expr(design, aig, a);
                let vb = self.expr(design, aig, b);
                lower_binary(aig, op, &va, &vb)
            }
            Expr::Mux {
                cond,
                then_e,
                else_e,
            } => {
                let vc = self.expr(design, aig, cond);
                let vt = self.expr(design, aig, then_e);
                let ve = self.expr(design, aig, else_e);
                lower_mux(aig, vc[0], &vt, &ve)
            }
            Expr::Slice { a, hi, lo } => {
                let va = self.expr(design, aig, a);
                va[lo as usize..=hi as usize].to_vec()
            }
            Expr::Concat { hi, lo } => {
                let vhi = self.expr(design, aig, hi);
                let mut bits = self.expr(design, aig, lo);
                bits.extend(vhi);
                bits
            }
            Expr::Rom {
                table,
                index,
                width,
            } => {
                let vi = self.expr(design, aig, index);
                lower_rom(aig, &table, &vi, width)
            }
        };
        self.expr_cache.insert(expr, bits.clone());
        bits
    }
}

fn lower_unary(aig: &mut Aig, op: UnaryOp, a: &[AigLit]) -> BitVec {
    match op {
        UnaryOp::Not => a.iter().map(|l| l.invert()).collect(),
        UnaryOp::Neg => {
            let inverted: BitVec = a.iter().map(|l| l.invert()).collect();
            let one = const_bits(1, a.len() as u32);
            ripple_add(aig, &inverted, &one, AigLit::FALSE).0
        }
        UnaryOp::RedAnd => vec![aig.and_all(a)],
        UnaryOp::RedOr => vec![aig.or_all(a)],
        UnaryOp::RedXor => {
            let mut acc = AigLit::FALSE;
            for &bit in a {
                acc = aig.xor(acc, bit);
            }
            vec![acc]
        }
    }
}

fn lower_binary(aig: &mut Aig, op: BinaryOp, a: &[AigLit], b: &[AigLit]) -> BitVec {
    match op {
        BinaryOp::And => a.iter().zip(b).map(|(&x, &y)| aig.and(x, y)).collect(),
        BinaryOp::Or => a.iter().zip(b).map(|(&x, &y)| aig.or(x, y)).collect(),
        BinaryOp::Xor => a.iter().zip(b).map(|(&x, &y)| aig.xor(x, y)).collect(),
        BinaryOp::Add => ripple_add(aig, a, b, AigLit::FALSE).0,
        BinaryOp::Sub => {
            let nb: BitVec = b.iter().map(|l| l.invert()).collect();
            ripple_add(aig, a, &nb, AigLit::TRUE).0
        }
        BinaryOp::Mul => lower_mul(aig, a, b),
        BinaryOp::Eq => vec![equality(aig, a, b)],
        BinaryOp::Ne => vec![equality(aig, a, b).invert()],
        BinaryOp::Ult => vec![unsigned_less_than(aig, a, b)],
        BinaryOp::Ule => vec![unsigned_less_than(aig, b, a).invert()],
        BinaryOp::Shl => lower_shift(aig, a, b, true),
        BinaryOp::Shr => lower_shift(aig, a, b, false),
    }
}

fn lower_mux(aig: &mut Aig, cond: AigLit, t: &[AigLit], e: &[AigLit]) -> BitVec {
    t.iter()
        .zip(e)
        .map(|(&x, &y)| aig.mux(cond, x, y))
        .collect()
}

/// Ripple-carry addition; returns `(sum, carry_out)`.
fn ripple_add(aig: &mut Aig, a: &[AigLit], b: &[AigLit], cin: AigLit) -> (BitVec, AigLit) {
    debug_assert_eq!(a.len(), b.len());
    let mut carry = cin;
    let mut sum = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(b) {
        let (s, c) = aig.full_adder(x, y, carry);
        sum.push(s);
        carry = c;
    }
    (sum, carry)
}

/// Shift-and-add multiplier, wrapping at the operand width.
fn lower_mul(aig: &mut Aig, a: &[AigLit], b: &[AigLit]) -> BitVec {
    let width = a.len();
    let mut acc = const_bits(0, width as u32);
    for (i, &bbit) in b.iter().enumerate() {
        if i >= width {
            break;
        }
        // addend = (a << i) gated by b[i]
        let mut addend = const_bits(0, width as u32);
        for j in 0..(width - i) {
            addend[i + j] = aig.and(a[j], bbit);
        }
        acc = ripple_add(aig, &acc, &addend, AigLit::FALSE).0;
    }
    acc
}

/// A single literal that is true iff the two bit vectors are equal.
///
/// Exposed for the property checker, which uses it both for the equality
/// assumptions of the antecedent and for the equality commitments of the
/// consequent.
#[must_use]
pub fn equal(aig: &mut Aig, a: &[AigLit], b: &[AigLit]) -> AigLit {
    debug_assert_eq!(a.len(), b.len());
    let xnors: Vec<AigLit> = a.iter().zip(b).map(|(&x, &y)| aig.xnor(x, y)).collect();
    aig.and_all(&xnors)
}

fn equality(aig: &mut Aig, a: &[AigLit], b: &[AigLit]) -> AigLit {
    equal(aig, a, b)
}

/// `a < b` (unsigned) via the carry-out of `a + !b + 1`.
fn unsigned_less_than(aig: &mut Aig, a: &[AigLit], b: &[AigLit]) -> AigLit {
    let nb: BitVec = b.iter().map(|l| l.invert()).collect();
    let (_, carry) = ripple_add(aig, a, &nb, AigLit::TRUE);
    carry.invert()
}

/// Barrel shifter; `left` selects the direction.  Shift amounts greater or
/// equal to the width produce zero (matching the RTL semantics).
fn lower_shift(aig: &mut Aig, a: &[AigLit], amount: &[AigLit], left: bool) -> BitVec {
    let width = a.len();
    let mut current: BitVec = a.to_vec();
    for (stage, &abit) in amount.iter().enumerate() {
        let shift = 1u128 << stage.min(127);
        let mut shifted = const_bits(0, width as u32);
        if shift < width as u128 {
            let s = shift as usize;
            for (i, bit) in shifted.iter_mut().enumerate() {
                let src = if left {
                    i.checked_sub(s)
                } else {
                    i.checked_add(s).filter(|&x| x < width)
                };
                if let Some(src) = src {
                    *bit = current[src];
                }
            }
        }
        current = lower_mux(aig, abit, &shifted, &current);
    }
    current
}

/// Balanced mux tree over the ROM contents, selecting on the index bits.
fn lower_rom(aig: &mut Aig, table: &[u128], index: &[AigLit], width: u32) -> BitVec {
    fn select(aig: &mut Aig, table: &[u128], index: &[AigLit], width: u32) -> BitVec {
        if table.len() == 1 {
            return const_bits(table[0], width);
        }
        let half = table.len() / 2;
        let msb = index[index.len() - 1];
        let lo = select(aig, &table[..half], &index[..index.len() - 1], width);
        let hi = select(aig, &table[half..], &index[..index.len() - 1], width);
        lower_mux(aig, msb, &hi, &lo)
    }
    select(aig, table, index, width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_rtl::Design;
    use std::collections::HashMap as StdHashMap;

    /// Binds a design input to fresh AIG variables and remembers the mapping
    /// so concrete values can be plugged in for evaluation.
    struct Harness {
        aig: Aig,
        ctx: BlastContext,
        input_nodes: StdHashMap<SignalId, Vec<u32>>,
    }

    impl Harness {
        fn new(design: &Design) -> Self {
            let mut aig = Aig::new();
            let mut ctx = BlastContext::new();
            let mut input_nodes = StdHashMap::new();
            for id in design.inputs() {
                let width = design.signal_width(id);
                let bits: BitVec = (0..width).map(|_| aig.new_input()).collect();
                input_nodes.insert(id, bits.iter().map(|l| l.node()).collect());
                ctx.bind(id, bits);
            }
            Harness {
                aig,
                ctx,
                input_nodes,
            }
        }

        fn eval(&mut self, design: &Design, expr: ExprId, inputs: &[(SignalId, u128)]) -> u128 {
            let bits = self.ctx.expr(design, &mut self.aig, expr);
            let mut env: StdHashMap<u32, bool> = StdHashMap::new();
            for (sig, value) in inputs {
                for (i, &node) in self.input_nodes[sig].iter().enumerate() {
                    env.insert(node, (value >> i) & 1 == 1);
                }
            }
            let mut out = 0u128;
            for (i, &bit) in bits.iter().enumerate() {
                if self.aig.eval(bit, &env) {
                    out |= 1 << i;
                }
            }
            out
        }
    }

    fn mask(width: u32) -> u128 {
        if width >= 128 {
            u128::MAX
        } else {
            (1 << width) - 1
        }
    }

    #[test]
    fn constants_fold_without_creating_gates() {
        let mut aig = Aig::new();
        let bits = const_bits(0b1010, 4);
        assert_eq!(bits_to_const(&bits), Some(0b1010));
        assert_eq!(aig.num_ands(), 0);
        let x = aig.new_input();
        assert_eq!(bits_to_const(&[x]), None);
    }

    #[test]
    fn word_operators_match_reference_semantics() {
        let mut d = Design::new("ops");
        let a = d.add_input("a", 8).unwrap();
        let b = d.add_input("b", 8).unwrap();
        let sa = d.signal(a);
        let sb = d.signal(b);
        let exprs = vec![
            ("and", d.and(sa, sb).unwrap()),
            ("or", d.or(sa, sb).unwrap()),
            ("xor", d.xor(sa, sb).unwrap()),
            ("add", d.add(sa, sb).unwrap()),
            ("sub", d.sub(sa, sb).unwrap()),
            ("mul", d.mul(sa, sb).unwrap()),
            ("eq", d.cmp_eq(sa, sb).unwrap()),
            ("ne", d.cmp_ne(sa, sb).unwrap()),
            ("ult", d.cmp_ult(sa, sb).unwrap()),
            ("ule", d.cmp_ule(sa, sb).unwrap()),
            ("shl", d.shl(sa, sb).unwrap()),
            ("shr", d.shr(sa, sb).unwrap()),
            ("not", d.not(sa)),
            ("neg", d.neg(sa)),
            ("redand", d.red_and(sa)),
            ("redor", d.red_or(sa)),
            ("redxor", d.red_xor(sa)),
        ];
        let mut harness = Harness::new(&d);
        let samples = [
            (0u128, 0u128),
            (1, 2),
            (255, 1),
            (170, 85),
            (200, 200),
            (13, 3),
            (3, 13),
        ];
        for &(va, vb) in &samples {
            for (name, e) in &exprs {
                let got = harness.eval(&d, *e, &[(a, va), (b, vb)]);
                let expected = match *name {
                    "and" => va & vb,
                    "or" => va | vb,
                    "xor" => va ^ vb,
                    "add" => (va + vb) & mask(8),
                    "sub" => va.wrapping_sub(vb) & mask(8),
                    "mul" => (va * vb) & mask(8),
                    "eq" => u128::from(va == vb),
                    "ne" => u128::from(va != vb),
                    "ult" => u128::from(va < vb),
                    "ule" => u128::from(va <= vb),
                    "shl" => {
                        if vb >= 8 {
                            0
                        } else {
                            (va << vb) & mask(8)
                        }
                    }
                    "shr" => {
                        if vb >= 8 {
                            0
                        } else {
                            va >> vb
                        }
                    }
                    "not" => !va & mask(8),
                    "neg" => va.wrapping_neg() & mask(8),
                    "redand" => u128::from(va == 0xff),
                    "redor" => u128::from(va != 0),
                    "redxor" => u128::from(va.count_ones() % 2 == 1),
                    _ => unreachable!(),
                };
                assert_eq!(got, expected, "{name}({va}, {vb})");
            }
        }
    }

    #[test]
    fn mux_slice_concat_and_rom() {
        let mut d = Design::new("misc");
        let a = d.add_input("a", 8).unwrap();
        let c = d.add_input("c", 1).unwrap();
        let hi = d.slice(d.signal(a), 7, 4).unwrap();
        let lo = d.slice(d.signal(a), 3, 0).unwrap();
        let swapped = d.concat(lo, hi).unwrap();
        let muxed = d.mux(d.signal(c), swapped, d.signal(a)).unwrap();
        let table: Vec<u128> = (0..16).map(|i| (i * 7 + 3) & 0xf).collect();
        let nib = d.slice(d.signal(a), 3, 0).unwrap();
        let looked = d.rom(table.clone(), nib, 4).unwrap();
        let mut harness = Harness::new(&d);
        for &(va, vc) in &[(0xABu128, 0u128), (0xAB, 1), (0x5C, 1), (0x00, 0)] {
            let got_mux = harness.eval(&d, muxed, &[(a, va), (c, vc)]);
            let expected_mux = if vc == 1 {
                ((va & 0xf) << 4) | (va >> 4)
            } else {
                va
            };
            assert_eq!(got_mux, expected_mux);
            let got_rom = harness.eval(&d, looked, &[(a, va), (c, vc)]);
            assert_eq!(got_rom, table[(va & 0xf) as usize]);
        }
    }

    #[test]
    fn wires_are_lowered_through_their_drivers() {
        let mut d = Design::new("wires");
        let a = d.add_input("a", 4).unwrap();
        let inc = {
            let one = d.constant(1, 4).unwrap();
            d.add(d.signal(a), one).unwrap()
        };
        let w = d.add_wire("w", inc).unwrap();
        let doubled = d.add(d.signal(w), d.signal(w)).unwrap();
        let mut harness = Harness::new(&d);
        assert_eq!(harness.eval(&d, doubled, &[(a, 3)]), 8);
    }

    #[test]
    fn sharing_identical_cones_creates_no_new_nodes() {
        let mut d = Design::new("share");
        let a = d.add_input("a", 8).unwrap();
        let b = d.add_input("b", 8).unwrap();
        let x = d.xor(d.signal(a), d.signal(b)).unwrap();
        let y = d.xor(d.signal(a), d.signal(b)).unwrap();
        let mut harness = Harness::new(&d);
        let bits_x = harness.ctx.expr(&d, &mut harness.aig, x);
        let nodes_after_x = harness.aig.num_nodes();
        let bits_y = harness.ctx.expr(&d, &mut harness.aig, y);
        assert_eq!(bits_x, bits_y);
        assert_eq!(harness.aig.num_nodes(), nodes_after_x);
    }

    #[test]
    #[should_panic(expected = "must be bound")]
    fn unbound_register_panics() {
        let mut d = Design::new("unbound");
        let r = d.add_register("r", 4, 0).unwrap();
        let expr = d.signal(r);
        let mut aig = Aig::new();
        let mut ctx = BlastContext::new();
        let _ = ctx.expr(&d, &mut aig, expr);
    }

    #[test]
    fn wide_arithmetic_128_bits() {
        let mut d = Design::new("wide");
        let a = d.add_input("a", 128).unwrap();
        let b = d.add_input("b", 128).unwrap();
        let sum = d.add(d.signal(a), d.signal(b)).unwrap();
        let mut harness = Harness::new(&d);
        let va = u128::MAX - 5;
        let vb = 7u128;
        assert_eq!(
            harness.eval(&d, sum, &[(a, va), (b, vb)]),
            va.wrapping_add(vb)
        );
    }
}
