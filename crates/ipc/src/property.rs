//! Interval-property and counterexample data types.

use std::fmt;
use std::time::Duration;

use htd_rtl::SignalId;
use htd_sat::SolverStats;

/// A single-cycle 2-safety interval property over a design.
///
/// The property reads (cf. Figs. 4 and 5 of the paper):
///
/// ```text
/// assume:
///   at t:     inputs_instance1      = inputs_instance2          (always)
///   at t:     assume_equal_instance1 = assume_equal_instance2
/// prove:
///   at t + 1: prove_equal_instance1 = prove_equal_instance2
/// ```
///
/// The primary inputs are fed identically to both instances at every time
/// point (that is the miter of Fig. 2); `assume_equal` lists the additional
/// state/output signals assumed equal at time `t`, and `prove_equal` the
/// signals whose equality at `t + 1` is to be proven.  The *init property*
/// has an empty `assume_equal` set; *fanout property k* assumes
/// `fanouts_CCk` and proves `fanouts_CCk+1`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IntervalProperty {
    /// Human-readable property name (e.g. `init_property`,
    /// `fanout_property_3`).
    pub name: String,
    /// State/output signals assumed equal between the instances at time `t`.
    pub assume_equal: Vec<SignalId>,
    /// State/output signals to prove equal between the instances at `t + 1`.
    pub prove_equal: Vec<SignalId>,
}

impl IntervalProperty {
    /// Creates a property with the given name and signal sets.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        assume_equal: Vec<SignalId>,
        prove_equal: Vec<SignalId>,
    ) -> Self {
        IntervalProperty {
            name: name.into(),
            assume_equal,
            prove_equal,
        }
    }

    /// Returns a copy of this property with additional equality assumptions —
    /// the mechanism used to discharge spurious counterexamples (Sec. V-B of
    /// the paper).
    #[must_use]
    pub fn with_extra_assumptions(&self, extra: &[SignalId]) -> Self {
        let mut assume = self.assume_equal.clone();
        for &sig in extra {
            if !assume.contains(&sig) {
                assume.push(sig);
            }
        }
        IntervalProperty {
            name: self.name.clone(),
            assume_equal: assume,
            prove_equal: self.prove_equal.clone(),
        }
    }
}

/// The two instances' values of one signal in a counterexample.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignalValuePair {
    /// The signal.
    pub signal: SignalId,
    /// Its name (copied out of the design for convenient reporting).
    pub name: String,
    /// Width in bits.
    pub width: u32,
    /// Value in instance 1.
    pub instance1: u128,
    /// Value in instance 2.
    pub instance2: u128,
}

impl SignalValuePair {
    /// `true` if the two instances disagree on this signal.
    #[must_use]
    pub fn differs(&self) -> bool {
        self.instance1 != self.instance2
    }
}

impl fmt::Display for SignalValuePair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:#x} (instance 1) vs {:#x} (instance 2)",
            self.name, self.instance1, self.instance2
        )
    }
}

/// A counterexample to an interval property: a symbolic starting state (plus
/// input values) under which the two instances diverge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counterexample {
    /// Name of the failing property.
    pub property: String,
    /// Time frame (relative to `t`) at which the divergence is observed; `1`
    /// for single-cycle properties, `k` for the aggregate trojan property.
    pub frame: usize,
    /// The prove-signals that differ at the failing frame.
    pub diffs: Vec<SignalValuePair>,
    /// The starting state (all registers) of both instances at time `t`.
    pub starting_state: Vec<SignalValuePair>,
    /// The shared input values per time frame (frame 0 is time `t`).
    pub inputs: Vec<Vec<(String, u128)>>,
}

impl Counterexample {
    /// Names of the diverging signals.
    #[must_use]
    pub fn diff_names(&self) -> Vec<&str> {
        self.diffs.iter().map(|d| d.name.as_str()).collect()
    }

    /// The registers whose starting-state values differ between the two
    /// instances — the candidates for trigger state inspected during
    /// counterexample analysis.
    #[must_use]
    pub fn differing_state(&self) -> Vec<&SignalValuePair> {
        self.starting_state.iter().filter(|s| s.differs()).collect()
    }
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "counterexample for {} at t+{}:",
            self.property, self.frame
        )?;
        for d in &self.diffs {
            writeln!(f, "  differs  {d}")?;
        }
        for s in self.differing_state() {
            writeln!(f, "  state@t  {s}")?;
        }
        Ok(())
    }
}

/// Outcome of checking one interval property.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckOutcome {
    /// The property holds for every starting state and input sequence.
    Holds,
    /// The property fails; a counterexample is attached.
    Fails(Box<Counterexample>),
}

impl CheckOutcome {
    /// `true` if the property holds.
    #[must_use]
    pub fn holds(&self) -> bool {
        matches!(self, CheckOutcome::Holds)
    }

    /// The counterexample, if the property failed.
    #[must_use]
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            CheckOutcome::Holds => None,
            CheckOutcome::Fails(cex) => Some(cex),
        }
    }
}

/// Work metrics for a single property check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Total AIG nodes built for the encoding.
    pub aig_nodes: usize,
    /// AND gates among them.
    pub aig_ands: usize,
    /// Structural-hash hits while building the AIG (a measure of how much of
    /// the two instances collapsed onto shared logic).
    pub strash_hits: u64,
    /// CNF variables handed to the SAT solver.
    pub cnf_vars: usize,
    /// CNF clauses handed to the SAT solver.
    pub cnf_clauses: usize,
    /// SAT solver work counters.
    pub solver: SolverStats,
    /// Wall-clock time for encoding plus solving.
    pub duration: Duration,
}

/// The result of one property check: outcome plus statistics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PropertyReport {
    /// Name of the checked property.
    pub property: String,
    /// Whether it holds, or the counterexample.
    pub outcome: CheckOutcome,
    /// Work metrics.
    pub stats: CheckStats,
}

impl PropertyReport {
    /// `true` if the property holds.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.outcome.holds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(i: u32) -> SignalId {
        // SignalId's field is crate-private in htd-rtl; build via a design.
        let mut d = htd_rtl::Design::new("ids");
        let mut last = None;
        for k in 0..=i {
            last = Some(d.add_input(format!("s{k}"), 1).unwrap());
        }
        last.unwrap()
    }

    #[test]
    fn extra_assumptions_are_deduplicated() {
        let a = sig(0);
        let b = sig(1);
        let p = IntervalProperty::new("p", vec![a], vec![b]);
        let q = p.with_extra_assumptions(&[a, b, b]);
        assert_eq!(q.assume_equal, vec![a, b]);
        assert_eq!(q.prove_equal, vec![b]);
        assert_eq!(q.name, "p");
    }

    #[test]
    fn signal_value_pair_reports_difference() {
        let s = sig(0);
        let same = SignalValuePair {
            signal: s,
            name: "x".into(),
            width: 8,
            instance1: 3,
            instance2: 3,
        };
        let diff = SignalValuePair {
            signal: s,
            name: "x".into(),
            width: 8,
            instance1: 3,
            instance2: 4,
        };
        assert!(!same.differs());
        assert!(diff.differs());
        assert!(diff.to_string().contains("0x3"));
    }

    #[test]
    fn counterexample_accessors() {
        let s0 = sig(0);
        let s1 = sig(1);
        let cex = Counterexample {
            property: "init_property".into(),
            frame: 1,
            diffs: vec![SignalValuePair {
                signal: s1,
                name: "leak_reg".into(),
                width: 8,
                instance1: 0,
                instance2: 0xff,
            }],
            starting_state: vec![
                SignalValuePair {
                    signal: s0,
                    name: "trigger".into(),
                    width: 1,
                    instance1: 1,
                    instance2: 0,
                },
                SignalValuePair {
                    signal: s1,
                    name: "leak_reg".into(),
                    width: 8,
                    instance1: 5,
                    instance2: 5,
                },
            ],
            inputs: vec![vec![("pt".into(), 0x42)]],
        };
        assert_eq!(cex.diff_names(), vec!["leak_reg"]);
        assert_eq!(cex.differing_state().len(), 1);
        assert_eq!(cex.differing_state()[0].name, "trigger");
        let text = cex.to_string();
        assert!(text.contains("init_property"));
        assert!(text.contains("leak_reg"));
    }

    #[test]
    fn outcome_helpers() {
        assert!(CheckOutcome::Holds.holds());
        assert!(CheckOutcome::Holds.counterexample().is_none());
    }
}
