//! The incremental miter session: one bit-blast, many property queries.
//!
//! The legacy [`PropertyChecker`](crate::PropertyChecker) rebuilds the AIG,
//! the CNF and the SAT solver for every single property.  The detection flow,
//! however, checks a *sequence* of closely related properties over the same
//! miter — init, one fanout property per structural level, plus
//! re-verification rounds — and [`MiterSession`] exploits that:
//!
//! * **One AIG, one backend.**  The session allocates the symbolic starting
//!   state and the shared input words once, lowers each property's cones into
//!   the same structurally-hashed AIG, and mirrors only the *new* nodes into
//!   one live [`SatBackend`] through the
//!   [`IncrementalEncoder`](crate::cnf::IncrementalEncoder).  Cones whose
//!   bindings repeat across properties strash onto existing nodes and cost no
//!   new clauses, and the solver's learnt clauses persist across the whole
//!   flow.
//! * **Antecedents as assumptions.**  Equality assumptions on combinational
//!   signals become solver *assumptions* instead of baked-in unit clauses, so
//!   the same encoding serves every antecedent the flow tries.
//! * **Per-property miters behind activation literals.**  Each property's
//!   "some proved signal differs" disjunction is guarded by a fresh
//!   activation literal; once the property is decided the literal is retired
//!   with a unit clause, permanently simplifying the clause away.
//!
//! Register starting-state variables follow the same sharing discipline as
//! the legacy checker (see
//! [`CheckerOptions::share_assumed_equal`](crate::CheckerOptions)): registers
//! assumed equal by the property under check are bound to one canonical
//! shared word in both instances, which lets structural hashing collapse the
//! identical cones — the property-checking cliff documented in the
//! `ablation_hashing` benchmark applies unchanged to the incremental path.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use htd_rtl::{SignalId, SignalKind, ValidatedDesign};
use htd_sat::{BackendError, Lit, SatBackend, SolveResult, Var};

use crate::aig::{Aig, AigLit};
use crate::bitblast::{equal, BitVec, BlastContext};
use crate::checker::CheckerOptions;
use crate::cnf::IncrementalEncoder;
use crate::property::{CheckOutcome, CheckStats, Counterexample, IntervalProperty, PropertyReport};

/// Counters describing a whole [`MiterSession`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Number of miter encodings built from scratch.  A session builds its
    /// encoding exactly once, at construction — this counter existing (and
    /// staying at 1) is the point of the session API, and the equivalence
    /// tests assert it.
    pub bit_blasts: u64,
    /// Properties checked so far.
    pub properties_checked: u64,
    /// AIG nodes mirrored into the backend so far (cumulative over all
    /// properties; nodes shared between properties are counted once).
    pub nodes_encoded: u64,
    /// SAT queries issued (trivially decided properties issue none).
    pub queries: u64,
    /// Prove signals discharged by the structural fast path: their cone
    /// reduced to shared variables, so equality held by construction with no
    /// lowering and no solver work.
    pub structurally_proved: u64,
}

/// An incremental property-checking session over one design's 2-safety miter.
///
/// Construct it with a design, checker options and a boxed [`SatBackend`];
/// then call [`check`](Self::check) for every property of the flow.  All
/// queries share one encoding; see the [module docs](self) for how.
///
/// # Example
///
/// ```
/// use htd_ipc::{IntervalProperty, MiterSession};
/// use htd_rtl::Design;
/// use htd_sat::Solver;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut d = Design::new("latch");
/// let input = d.add_input("in", 8)?;
/// let r = d.add_register("r", 8, 0)?;
/// d.set_register_next(r, d.signal(input))?;
/// d.add_output("out", d.signal(r))?;
/// let design = d.validated()?;
///
/// let mut session = MiterSession::new(&design, Box::new(Solver::new()));
/// let init = IntervalProperty::new("init_property", vec![], vec![r]);
/// assert!(session.check(&design, &init)?.holds());
/// assert_eq!(session.stats().bit_blasts, 1);
/// # Ok(())
/// # }
/// ```
pub struct MiterSession {
    aig: Aig,
    backend: Box<dyn SatBackend>,
    encoder: IncrementalEncoder,
    options: CheckerOptions,
    design_name: String,
    /// Shared input words for frames `t` and `t + 1`.
    inputs: Vec<HashMap<SignalId, BitVec>>,
    /// Per-instance starting-state words (used while a register is *not*
    /// assumed equal).
    split_regs: [HashMap<SignalId, BitVec>; 2],
    /// Canonical shared starting-state words (used by both instances while a
    /// register *is* assumed equal), allocated lazily.
    shared_regs: HashMap<SignalId, BitVec>,
    /// Variables currently eligible for branching: the cone of the most
    /// recent query.  Everything else in the backend belongs to retired
    /// queries and is purely definitional — masking it keeps the search
    /// inside the live cone.
    active_vars: HashSet<Var>,
    /// Register-only combinational support of each signal's driver, computed
    /// lazily and kept for the whole session (the structure never changes).
    support_cache: HashMap<SignalId, Vec<SignalId>>,
    stats: SessionStats,
}

impl std::fmt::Debug for MiterSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MiterSession")
            .field("design", &self.design_name)
            .field("backend", &self.backend.name())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl MiterSession {
    /// Creates a session with default checker options.
    #[must_use]
    pub fn new(design: &ValidatedDesign, backend: Box<dyn SatBackend>) -> Self {
        Self::with_options(design, CheckerOptions::default(), backend)
    }

    /// Creates a session with explicit checker options.
    ///
    /// This is the session's single bit-blast: the shared input words and the
    /// per-instance starting-state words are allocated here, once.
    #[must_use]
    pub fn with_options(
        design: &ValidatedDesign,
        options: CheckerOptions,
        backend: Box<dyn SatBackend>,
    ) -> Self {
        let d = design.design();
        let mut aig = Aig::new();
        let inputs: Vec<HashMap<SignalId, BitVec>> = (0..2)
            .map(|_| {
                d.inputs()
                    .into_iter()
                    .map(|s| (s, fresh_word(&mut aig, d.signal_width(s))))
                    .collect()
            })
            .collect();
        let mut split_regs: [HashMap<SignalId, BitVec>; 2] = [HashMap::new(), HashMap::new()];
        for r in d.registers() {
            let width = d.signal_width(r);
            split_regs[0].insert(r, fresh_word(&mut aig, width));
            split_regs[1].insert(r, fresh_word(&mut aig, width));
        }
        MiterSession {
            aig,
            backend,
            encoder: IncrementalEncoder::new(),
            options,
            design_name: d.name().to_string(),
            inputs,
            split_regs,
            shared_regs: HashMap::new(),
            active_vars: HashSet::new(),
            support_cache: HashMap::new(),
            stats: SessionStats {
                bit_blasts: 1,
                ..SessionStats::default()
            },
        }
    }

    /// The options in effect.
    #[must_use]
    pub fn options(&self) -> CheckerOptions {
        self.options
    }

    /// The backend's report name (`builtin-cdcl`, `dimacs:…`).
    #[must_use]
    pub fn backend_name(&self) -> String {
        self.backend.name()
    }

    /// Session-level counters.
    #[must_use]
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            queries: self.backend.stats().queries,
            ..self.stats
        }
    }

    /// Checks a single-cycle interval property against the live miter.
    ///
    /// Must be called with the same design the session was built from.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError`] if the backend infrastructure fails (only
    /// possible for process backends).
    ///
    /// # Panics
    ///
    /// Panics if `design` is not the session's design.
    pub fn check(
        &mut self,
        design: &ValidatedDesign,
        property: &IntervalProperty,
    ) -> Result<PropertyReport, BackendError> {
        let start = Instant::now();
        let d = design.design();
        assert_eq!(d.name(), self.design_name, "session is bound to one design");
        self.stats.properties_checked += 1;
        // Snapshots so the per-property report carries deltas, not
        // session-cumulative totals.
        let aig_nodes_before = self.aig.num_nodes();
        let aig_ands_before = self.aig.num_ands();
        let strash_before = self.aig.strash_hits();
        let backend_before = self.backend.stats();

        let share = self.options.share_assumed_equal;
        let assume_regs: HashSet<SignalId> = property
            .assume_equal
            .iter()
            .copied()
            .filter(|s| d.signal_info(*s).kind().is_register())
            .collect();

        // Frame-0 contexts with the property's sharing discipline.
        let mut ctx_t: [BlastContext; 2] = [BlastContext::new(), BlastContext::new()];
        for ctx in &mut ctx_t {
            for (s, bits) in &self.inputs[0] {
                ctx.bind(*s, bits.clone());
            }
        }
        let mut regs: [HashMap<SignalId, BitVec>; 2] = [HashMap::new(), HashMap::new()];
        for r in d.registers() {
            if share && assume_regs.contains(&r) {
                let width = d.signal_width(r);
                let bits = self
                    .shared_regs
                    .entry(r)
                    .or_insert_with(|| (0..width).map(|_| self.aig.new_input()).collect())
                    .clone();
                for inst in 0..2 {
                    ctx_t[inst].bind(r, bits.clone());
                    regs[inst].insert(r, bits.clone());
                }
            } else {
                for inst in 0..2 {
                    let bits = self.split_regs[inst][&r].clone();
                    ctx_t[inst].bind(r, bits.clone());
                    regs[inst].insert(r, bits);
                }
            }
        }

        // Antecedent: equality assumptions not discharged by variable
        // sharing, expressed as solver assumptions.
        let mut assumption_aig: Vec<AigLit> = Vec::new();
        for &sig in &property.assume_equal {
            let kind = d.signal_info(sig).kind();
            let merged = kind.is_register() && share;
            if merged || kind == SignalKind::Input {
                continue;
            }
            // A wire/output whose cone reduces to shared variables is equal
            // by construction; lowering it would only produce a constant.
            if share && self.driver_is_merged(design, sig, &assume_regs) {
                continue;
            }
            let b1 = ctx_t[0].signal(d, &mut self.aig, sig);
            let b2 = ctx_t[1].signal(d, &mut self.aig, sig);
            assumption_aig.push(equal(&mut self.aig, &b1, &b2));
        }

        // Consequent: values of the proved signals at time t+1 per instance.
        let mut ctx_t1: [Option<BlastContext>; 2] = [None, None];
        let mut prove_values: Vec<(SignalId, BitVec, BitVec)> = Vec::new();
        for &sig in &property.prove_equal {
            // Structural fast path: once the antecedent registers are merged,
            // a prove signal whose whole cone reduces to shared variables is
            // equal in every model — it contributes no miter input, no AIG
            // nodes and no solver work.  This is where the incremental
            // session beats the re-encode path: proven levels make the next
            // level's equality structural.
            if share && self.structurally_equal_next(design, sig, &assume_regs) {
                self.stats.structurally_proved += 1;
                continue;
            }
            let info = d.signal_info(sig);
            match info.kind() {
                SignalKind::Register { .. } => {
                    let next = info.driver().expect("validated design");
                    let b1 = ctx_t[0].expr(d, &mut self.aig, next);
                    let b2 = ctx_t[1].expr(d, &mut self.aig, next);
                    prove_values.push((sig, b1, b2));
                }
                SignalKind::Output | SignalKind::Wire => {
                    for inst in 0..2 {
                        if ctx_t1[inst].is_none() {
                            let mut next_ctx = BlastContext::new();
                            for (s, bits) in &self.inputs[1] {
                                next_ctx.bind(*s, bits.clone());
                            }
                            for r in d.registers() {
                                let next = d.signal_info(r).driver().expect("validated design");
                                let bits = ctx_t[inst].expr(d, &mut self.aig, next);
                                next_ctx.bind(r, bits);
                            }
                            ctx_t1[inst] = Some(next_ctx);
                        }
                    }
                    let b1 = ctx_t1[0]
                        .as_mut()
                        .expect("built above")
                        .signal(d, &mut self.aig, sig);
                    let b2 = ctx_t1[1]
                        .as_mut()
                        .expect("built above")
                        .signal(d, &mut self.aig, sig);
                    prove_values.push((sig, b1, b2));
                }
                SignalKind::Input => {
                    // Inputs are shared by construction; nothing to prove.
                }
            }
        }

        // Miter: some proved signal differs.
        let mut diff_lits: Vec<AigLit> = Vec::new();
        for (_, b1, b2) in &prove_values {
            diff_lits.push(equal(&mut self.aig, b1, b2).invert());
        }
        let miter = self.aig.or_all(&diff_lits);

        // Mirror the new cones into the backend.
        let mut roots: Vec<AigLit> = assumption_aig.clone();
        roots.push(miter);
        let fresh = self
            .encoder
            .encode(self.backend.as_mut(), &self.aig, &roots);
        self.stats.nodes_encoded += fresh as u64;

        let mut assumptions: Vec<Lit> = Vec::new();
        let mut vacuous = false;
        for &a in &assumption_aig {
            if a == AigLit::TRUE {
                continue;
            }
            if a == AigLit::FALSE {
                // The antecedent is structurally unsatisfiable; the property
                // holds vacuously.
                vacuous = true;
                break;
            }
            assumptions.push(self.encoder.lit(a));
        }

        let result = if vacuous || miter == AigLit::FALSE {
            // No query needed — but any cones this property *did* encode must
            // still leave the decision-eligible set, or later searches could
            // wander into them.
            if fresh > 0 {
                self.focus_search(&roots, None);
            }
            SolveResult::Unsat
        } else if miter == AigLit::TRUE {
            // Some proved signal differs structurally for every assignment;
            // a query is still needed to find a model of the antecedent.
            self.focus_search(&roots, None);
            self.backend.solve_under(&assumptions)?
        } else {
            let act = self.backend.new_var();
            self.focus_search(&roots, Some(act));
            let miter_lit = self.encoder.lit(miter);
            self.backend.add_clause(&[Lit::neg(act), miter_lit]);
            assumptions.push(Lit::pos(act));
            let result = self.backend.solve_under(&assumptions)?;
            // Retire the activation literal: the property's miter clause is
            // permanently disabled and can never pollute later queries.
            self.backend.add_clause(&[Lit::neg(act)]);
            result
        };

        let outcome = match result {
            SolveResult::Unsat => CheckOutcome::Holds,
            SolveResult::Sat => CheckOutcome::Fails(Box::new(self.reconstruct(
                d,
                &property.name,
                &prove_values,
                &regs,
            ))),
        };

        // Report deltas against the start-of-check snapshots: `CheckStats`
        // describes one property check, not the whole session.
        let backend_after = self.backend.stats();
        let solver_delta = htd_sat::SolverStats {
            decisions: backend_after.solver.decisions - backend_before.solver.decisions,
            propagations: backend_after.solver.propagations - backend_before.solver.propagations,
            conflicts: backend_after.solver.conflicts - backend_before.solver.conflicts,
            restarts: backend_after.solver.restarts - backend_before.solver.restarts,
            learnt_clauses: backend_after.solver.learnt_clauses,
            removed_clauses: backend_after.solver.removed_clauses
                - backend_before.solver.removed_clauses,
            solves: backend_after.solver.solves - backend_before.solver.solves,
        };
        let stats = CheckStats {
            aig_nodes: self.aig.num_nodes() - aig_nodes_before,
            aig_ands: self.aig.num_ands() - aig_ands_before,
            strash_hits: self.aig.strash_hits() - strash_before,
            cnf_vars: backend_after.vars - backend_before.vars,
            cnf_clauses: backend_after.clauses.saturating_sub(backend_before.clauses),
            solver: solver_delta,
            duration: start.elapsed(),
        };
        Ok(PropertyReport {
            property: property.name.clone(),
            outcome,
            stats,
        })
    }

    /// The registers in the combinational support of `sig`'s driver
    /// (transitively through wires), cached for the session's lifetime.
    fn driver_reg_support(&mut self, design: &ValidatedDesign, sig: SignalId) -> Vec<SignalId> {
        if let Some(cached) = self.support_cache.get(&sig) {
            return cached.clone();
        }
        let d = design.design();
        let driver = d.signal_info(sig).driver().expect("validated design");
        let regs: Vec<SignalId> = htd_rtl::structural::combinational_support(design, driver)
            .into_iter()
            .filter(|s| d.signal_info(*s).kind().is_register())
            .collect();
        self.support_cache.insert(sig, regs.clone());
        regs
    }

    /// `true` if the *next* value of register (or the *current* value of
    /// wire/output) `sig` is the same function of shared variables in both
    /// instances: every register its driver reads is bound to a shared word.
    fn driver_is_merged(
        &mut self,
        design: &ValidatedDesign,
        sig: SignalId,
        assume_regs: &HashSet<SignalId>,
    ) -> bool {
        self.driver_reg_support(design, sig)
            .iter()
            .all(|r| assume_regs.contains(r))
    }

    /// `true` if `sig`'s value one cycle after `t` is provably identical in
    /// both instances *by construction* under the current sharing: the whole
    /// cone reduces to shared variables, so no lowering and no SAT query is
    /// needed — the incremental flow's structural fast path.
    fn structurally_equal_next(
        &mut self,
        design: &ValidatedDesign,
        sig: SignalId,
        assume_regs: &HashSet<SignalId>,
    ) -> bool {
        let d = design.design();
        match d.signal_info(sig).kind() {
            SignalKind::Register { .. } => self.driver_is_merged(design, sig, assume_regs),
            SignalKind::Output | SignalKind::Wire => {
                // Value at t+1 = comb function of inputs@t+1 (shared) and the
                // next-state of the registers the driver reads.
                self.driver_reg_support(design, sig)
                    .iter()
                    .all(|&r| self.driver_is_merged(design, r, assume_regs))
            }
            SignalKind::Input => true,
        }
    }

    /// Points the backend's search at the current query: resets the decision
    /// heuristics (activities and phases tuned for the previous property's
    /// conflict structure routinely mislead the next query) and confines
    /// branching to the cone of `roots` plus the activation literal.
    /// Variables of retired queries are purely definitional, so masking them
    /// is sound — see [`htd_sat::Solver::set_decision_var`].
    fn focus_search(&mut self, roots: &[AigLit], act: Option<Var>) {
        self.backend.begin_new_query();
        let mut cone = self.encoder.cone_vars(&self.aig, roots);
        cone.extend(act);
        for &var in self.active_vars.difference(&cone) {
            self.backend.set_decision_var(var, false);
        }
        for &var in cone.difference(&self.active_vars) {
            self.backend.set_decision_var(var, true);
        }
        self.active_vars = cone;
    }

    /// Rebuilds a concrete counterexample from the backend's model via the
    /// reconstruction shared with the one-shot checker.
    fn reconstruct(
        &self,
        d: &htd_rtl::Design,
        name: &str,
        prove_values: &[(SignalId, BitVec, BitVec)],
        regs: &[HashMap<SignalId, BitVec>; 2],
    ) -> Counterexample {
        let mut env: HashMap<u32, bool> = HashMap::new();
        for (&node, &var) in self.encoder.node_vars() {
            if self.aig.is_input(AigLit::positive(node)) {
                env.insert(node, self.backend.model_value(var).unwrap_or(false));
            }
        }
        crate::checker::reconstruct_counterexample(
            d,
            &self.aig,
            &env,
            name,
            &[prove_values.to_vec()],
            &self.inputs,
            regs,
        )
    }
}

/// Allocates fresh AIG variables for one word.
fn fresh_word(aig: &mut Aig, width: u32) -> BitVec {
    (0..width).map(|_| aig.new_input()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PropertyChecker;
    use htd_rtl::Design;
    use htd_sat::Solver;

    fn trojan_design() -> ValidatedDesign {
        let mut d = Design::new("tiny_trojan");
        let input = d.add_input("in", 1).unwrap();
        let trigger = d.add_register("trigger", 1, 0).unwrap();
        let data = d.add_register("data", 1, 0).unwrap();
        let trig_next = d.or(d.signal(trigger), d.signal(input)).unwrap();
        d.set_register_next(trigger, trig_next).unwrap();
        let payload = d.xor(d.signal(input), d.signal(trigger)).unwrap();
        d.set_register_next(data, payload).unwrap();
        d.add_output("out", d.signal(data)).unwrap();
        d.validated().unwrap()
    }

    fn pipeline() -> ValidatedDesign {
        let mut d = Design::new("pipeline");
        let input = d.add_input("in", 8).unwrap();
        let s1 = d.add_register("s1", 8, 0).unwrap();
        let s2 = d.add_register("s2", 8, 0).unwrap();
        d.set_register_next(s1, d.signal(input)).unwrap();
        d.set_register_next(s2, d.signal(s1)).unwrap();
        d.add_output("out", d.signal(s2)).unwrap();
        d.validated().unwrap()
    }

    #[test]
    fn session_and_legacy_checker_agree_on_a_trojan() {
        let design = trojan_design();
        let d = design.design();
        let data = d.require("data").unwrap();
        let property = IntervalProperty::new("init_property", vec![], vec![data]);

        let legacy = PropertyChecker::new(&design).check(&property);
        let mut session = MiterSession::new(&design, Box::new(Solver::new()));
        let incremental = session.check(&design, &property).unwrap();

        assert!(!legacy.holds());
        assert!(!incremental.holds());
        let cex = incremental.outcome.counterexample().unwrap();
        assert_eq!(cex.diff_names(), vec!["data"]);
    }

    #[test]
    fn session_checks_a_whole_flow_with_one_bit_blast() {
        let design = pipeline();
        let d = design.design();
        let s1 = d.require("s1").unwrap();
        let s2 = d.require("s2").unwrap();
        let out = d.require("out").unwrap();

        let mut session = MiterSession::new(&design, Box::new(Solver::new()));
        let properties = [
            IntervalProperty::new("init_property", vec![], vec![s1]),
            IntervalProperty::new("fanout_property_1", vec![s1], vec![s2]),
            IntervalProperty::new("fanout_property_2", vec![s1, s2], vec![out]),
        ];
        for property in &properties {
            let report = session.check(&design, property).unwrap();
            assert!(report.holds(), "{} should hold", property.name);
        }
        let stats = session.stats();
        assert_eq!(stats.bit_blasts, 1);
        assert_eq!(stats.properties_checked, 3);
    }

    #[test]
    fn re_checking_the_same_property_encodes_nothing_new() {
        let design = pipeline();
        let d = design.design();
        let s1 = d.require("s1").unwrap();
        let property = IntervalProperty::new("init_property", vec![], vec![s1]);

        let mut session = MiterSession::new(&design, Box::new(Solver::new()));
        session.check(&design, &property).unwrap();
        let encoded_once = session.stats().nodes_encoded;
        session.check(&design, &property).unwrap();
        assert_eq!(session.stats().nodes_encoded, encoded_once);
    }

    #[test]
    fn unshared_options_still_give_the_same_verdicts() {
        let design = trojan_design();
        let d = design.design();
        let trigger = d.require("trigger").unwrap();
        let data = d.require("data").unwrap();
        for share in [true, false] {
            let options = CheckerOptions {
                share_assumed_equal: share,
            };
            let mut session = MiterSession::with_options(&design, options, Box::new(Solver::new()));
            let failing = IntervalProperty::new("init_property", vec![], vec![data]);
            assert!(!session.check(&design, &failing).unwrap().holds());
            // Assuming the trigger state equal discharges the divergence.
            let resolved = IntervalProperty::new("resolved", vec![trigger], vec![data]);
            assert!(session.check(&design, &resolved).unwrap().holds());
        }
    }
}
