//! The incremental miter session: one bit-blast, many property queries.
//!
//! The legacy [`PropertyChecker`](crate::PropertyChecker) rebuilds the AIG,
//! the CNF and the SAT solver for every single property.  The detection flow,
//! however, checks a *sequence* of closely related properties over the same
//! miter — init, one fanout property per structural level, plus
//! re-verification rounds — and [`MiterSession`] exploits that:
//!
//! * **One AIG, one backend.**  The session allocates the symbolic starting
//!   state and the shared input words once, lowers each property's cones into
//!   the same structurally-hashed AIG, and mirrors only the *new* nodes into
//!   one live [`SatBackend`] through the
//!   [`IncrementalEncoder`](crate::cnf::IncrementalEncoder).  Cones whose
//!   bindings repeat across properties strash onto existing nodes and cost no
//!   new clauses, and the solver's learnt clauses persist across the whole
//!   flow.
//! * **Antecedents as assumptions.**  Equality assumptions on combinational
//!   signals become solver *assumptions* instead of baked-in unit clauses, so
//!   the same encoding serves every antecedent the flow tries.
//! * **Per-property miters behind activation literals.**  Each property's
//!   "some proved signal differs" disjunction is guarded by a fresh
//!   activation literal; once the property is decided the literal is retired
//!   with a unit clause, permanently simplifying the clause away.
//!
//! Register starting-state variables follow the same sharing discipline as
//! the legacy checker (see
//! [`CheckerOptions::share_assumed_equal`](crate::CheckerOptions)): registers
//! assumed equal by the property under check are bound to one canonical
//! shared word in both instances, which lets structural hashing collapse the
//! identical cones — the property-checking cliff documented in the
//! `ablation_hashing` benchmark applies unchanged to the incremental path.

use crate::fxhash::{FxHashMap, FxHashSet};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use htd_rtl::{SignalId, SignalKind, ValidatedDesign};
use htd_sat::{BackendError, Lit, SatBackend, SolveResult, SolverStats, Var};

use crate::aig::{Aig, AigLit};
use crate::bitblast::{equal, BitVec, BlastContext};
use crate::checker::CheckerOptions;
use crate::cnf::IncrementalEncoder;
use crate::property::{CheckOutcome, CheckStats, Counterexample, IntervalProperty, PropertyReport};

/// Counters describing a whole [`MiterSession`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Number of miter encodings built from scratch.  A session builds its
    /// encoding exactly once, at construction — this counter existing (and
    /// staying at 1) is the point of the session API, and the equivalence
    /// tests assert it.
    pub bit_blasts: u64,
    /// Properties checked so far.
    pub properties_checked: u64,
    /// AIG nodes mirrored into the backend so far (cumulative over all
    /// properties; nodes shared between properties are counted once).
    pub nodes_encoded: u64,
    /// SAT queries issued (trivially decided properties issue none).
    pub queries: u64,
    /// Prove signals discharged by the structural fast path: their cone
    /// reduced to shared variables, so equality held by construction with no
    /// lowering and no solver work.
    pub structurally_proved: u64,
    /// Number of binding epochs built: a new epoch starts whenever a property
    /// arrives with a different set of merged (assumed-equal) registers.
    /// Properties within one epoch share their lowering contexts, so word-
    /// level nodes common to several properties are bit-blasted once per
    /// epoch instead of once per property.
    pub epoch_rebinds: u64,
    /// Per-signal solve tasks whose generation was merged into a verdict
    /// (speculatively prepared generations that are discarded after an
    /// earlier failure do not count).
    pub parallel_tasks: u64,
    /// Tasks skipped because an earlier (lower-id) task had already produced
    /// the level's counterexample.
    pub tasks_skipped: u64,
    /// Frozen generation snapshots forked off the master by
    /// [`MiterSession::prepare_level`].  Unlike the per-task fork counters in
    /// flow reports, this counts the *master-side* clones, which depend on
    /// the schedule (inline schedules skip them entirely).
    pub snapshot_forks: u64,
    /// Bytes copied by those master-side snapshot forks — the arena-backed
    /// cost model: each clone is proportional to the master's live database
    /// size at the prepare boundary, not to its clause count.
    pub snapshot_bytes_cloned: u64,
}

/// An incremental property-checking session over one design's 2-safety miter.
///
/// Construct it with a design, checker options and a boxed [`SatBackend`];
/// then call [`check`](Self::check) for every property of the flow.  All
/// queries share one encoding; see the [module docs](self) for how.
///
/// # Example
///
/// ```
/// use htd_ipc::{IntervalProperty, MiterSession};
/// use htd_rtl::Design;
/// use htd_sat::Solver;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut d = Design::new("latch");
/// let input = d.add_input("in", 8)?;
/// let r = d.add_register("r", 8, 0)?;
/// d.set_register_next(r, d.signal(input))?;
/// d.add_output("out", d.signal(r))?;
/// let design = d.validated()?;
///
/// let mut session = MiterSession::new(&design, Box::new(Solver::new()));
/// let init = IntervalProperty::new("init_property", vec![], vec![r]);
/// assert!(session.check(&design, &init)?.holds());
/// assert_eq!(session.stats().bit_blasts, 1);
/// # Ok(())
/// # }
/// ```
pub struct MiterSession {
    aig: Aig,
    backend: Box<dyn SatBackend>,
    encoder: IncrementalEncoder,
    options: CheckerOptions,
    design_name: String,
    /// Shared input words for frames `t` and `t + 1`.
    inputs: Vec<FxHashMap<SignalId, BitVec>>,
    /// Per-instance starting-state words (used while a register is *not*
    /// assumed equal).
    split_regs: [FxHashMap<SignalId, BitVec>; 2],
    /// Canonical shared starting-state words (used by both instances while a
    /// register *is* assumed equal), allocated lazily.
    shared_regs: FxHashMap<SignalId, BitVec>,
    /// Variables currently eligible for branching: the cone of the most
    /// recent query.  Everything else in the backend belongs to retired
    /// queries and is purely definitional — masking it keeps the search
    /// inside the live cone.
    active_vars: FxHashSet<Var>,
    /// Register-only combinational support of each signal's driver, computed
    /// lazily and kept for the whole session (the structure never changes).
    support_cache: FxHashMap<SignalId, Vec<SignalId>>,
    /// The cross-property lowering cache: the bound contexts of the current
    /// binding epoch (keyed by the merged-register set).  Checks whose
    /// antecedent merges the same registers reuse these contexts, so shared
    /// word-level cones are lowered once per epoch, not once per property.
    epoch: Option<EpochCtx>,
    /// Activation literals of the most recently prepared generation, retired
    /// (as permanent unit clauses) when the *next* generation is prepared.
    /// Deferring the retirement keeps the master mutation stream a pure
    /// function of the prepare order, so pipelined and non-pipelined flows
    /// see byte-identical master states at every snapshot.
    pending_acts: Vec<Var>,
    stats: SessionStats,
}

/// One per-signal sub-property of a level check: prove that `sig`'s
/// next-cycle value is equal in both instances under the level's antecedent.
struct LevelTask {
    sig: SignalId,
    b1: BitVec,
    b2: BitVec,
    /// Activation literal guarding this sub-property's miter clause (`None`
    /// when the miter is structurally true and no guard clause exists).
    act: Option<Var>,
    /// Base antecedent assumptions plus this task's activation literal.
    assumptions: Vec<Lit>,
    /// Decision-eligible variables: the cone of the antecedent and the miter.
    cone: Vec<Var>,
}

/// A generation's frozen fork source.
enum Snapshot {
    /// No snapshot: taskless generation, non-forkable backend, or an inline
    /// schedule that forks the unmutated master at solve time.
    None,
    /// Single-task generations: the sole task takes the snapshot and solves
    /// on it directly (no second clone).
    Exclusive(Mutex<Option<Box<dyn SatBackend>>>),
    /// Multi-task generations: workers clone an `Arc` handle under a brief
    /// lock and fork outside it, so snapshot clones do not serialise; the
    /// coordinator releases the handle once the generation merges, freeing
    /// the clause database as soon as the last in-flight task drops its
    /// reference.
    Shared(Mutex<Option<Arc<dyn SatBackend>>>),
}

impl Snapshot {
    fn is_some(&self) -> bool {
        match self {
            Snapshot::None => false,
            Snapshot::Exclusive(slot) => slot.lock().expect("no poisoned locks").is_some(),
            Snapshot::Shared(slot) => slot.lock().expect("no poisoned locks").is_some(),
        }
    }

    fn release(&self) {
        match self {
            Snapshot::None => {}
            Snapshot::Exclusive(slot) => drop(slot.lock().expect("no poisoned locks").take()),
            Snapshot::Shared(slot) => drop(slot.lock().expect("no poisoned locks").take()),
        }
    }
}

/// What one solve task produced, recorded by whichever worker ran it.
enum TaskResult {
    /// The sub-property holds; per-task solver work and query count.
    Unsat(SolverStats, u64),
    /// A counterexample was found on a forked shard (the shard is kept alive
    /// so its model can be read during reconstruction).
    Sat(SolverStats, u64, Box<dyn SatBackend>),
    /// A counterexample was found on the master (non-forkable fallback); the
    /// model is read from the master itself during reconstruction.
    MasterSat(SolverStats, u64),
    /// Cancelled: a lower-id task had already failed, or the whole flow was
    /// cancelled behind an earlier generation's verdict.
    Skipped,
    /// The backend infrastructure failed.
    Error(BackendError),
}

/// The opaque outcome of one sub-property solve: produced by
/// [`PreparedLevel::solve_task`] (or the session's non-forkable master
/// fallback) and consumed by [`MiterSession::merge_level`].
pub struct TaskOutcome(TaskResult);

impl TaskOutcome {
    /// `true` if this outcome ends its level (a counterexample or an
    /// infrastructure error): sequential drivers stop dispatching the
    /// remaining sub-properties of the generation.
    #[must_use]
    pub fn ends_level(&self) -> bool {
        matches!(
            self.0,
            TaskResult::Sat(..) | TaskResult::MasterSat(..) | TaskResult::Error(..)
        )
    }

    fn skipped() -> Self {
        TaskOutcome(TaskResult::Skipped)
    }

    /// An infrastructure-failure outcome carrying `message`.  Exposed so
    /// executors outside this crate (the parallel scheduler's panic
    /// isolation) can settle a task slot whose solve never returned — the
    /// merge then surfaces the message as a [`BackendError`] instead of
    /// deadlocking on a forever-missing result.
    #[must_use]
    pub fn internal_error(message: impl Into<String>) -> Self {
        TaskOutcome(TaskResult::Error(BackendError {
            message: message.into(),
        }))
    }
}

impl std::fmt::Debug for TaskOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match &self.0 {
            TaskResult::Unsat(..) => "TaskOutcome::Unsat",
            TaskResult::Sat(..) => "TaskOutcome::Sat",
            TaskResult::MasterSat(..) => "TaskOutcome::MasterSat",
            TaskResult::Skipped => "TaskOutcome::Skipped",
            TaskResult::Error(..) => "TaskOutcome::Error",
        })
    }
}

/// One prepared (lowered, Tseitin-encoded and snapshot-frozen) generation of
/// the flow graph: a fanout level's property — or one of its resolution
/// rounds — split into per-signal sub-property tasks.
///
/// A `PreparedLevel` is created on the master session by
/// [`MiterSession::prepare_level`], after which the master is free to encode
/// *later* generations: every task solves against the generation's own
/// frozen snapshot, so levels encode and solve pipelined.  Results are
/// position-keyed and merged deterministically by
/// [`MiterSession::merge_level`].
pub struct PreparedLevel {
    property_name: String,
    tasks: Vec<LevelTask>,
    /// The frozen master snapshot tasks fork from (`None` when the backend
    /// cannot fork or the generation has no tasks).  Single-task generations
    /// hold it exclusively and solve on it directly instead of paying for a
    /// second clone; multi-task generations share it so workers fork
    /// *outside* any lock.
    snapshot: Snapshot,
    /// This generation's epoch starting-state words, kept for counterexample
    /// reconstruction at merge time (the session's live epoch may already
    /// belong to a later generation).
    regs: [FxHashMap<SignalId, BitVec>; 2],
    start: Instant,
    structurally_proved: u64,
    /// Bytes the generation's frozen snapshot clone copied off the master
    /// (0 when no snapshot was taken: taskless generations, inline
    /// schedules, non-forkable backends).
    snapshot_bytes: u64,
    /// Master-side work bracketed over this generation's prepare: AIG and
    /// CNF growth plus any clause-GC the master ran before the snapshot.
    aig_nodes: usize,
    aig_ands: usize,
    strash_hits: u64,
    cnf_vars: usize,
    cnf_clauses: usize,
    master_solver: SolverStats,
}

impl std::fmt::Debug for PreparedLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedLevel")
            .field("property", &self.property_name)
            .field("tasks", &self.tasks.len())
            .finish_non_exhaustive()
    }
}

impl PreparedLevel {
    /// The name of the property this generation checks.
    #[must_use]
    pub fn property_name(&self) -> &str {
        &self.property_name
    }

    /// Number of per-signal solve tasks (0 when the level discharged
    /// structurally or vacuously).
    #[must_use]
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// `true` if the generation carries a frozen snapshot, i.e. its tasks can
    /// be solved concurrently (and concurrently with other generations).
    #[must_use]
    pub fn has_snapshot(&self) -> bool {
        self.snapshot.is_some()
    }

    /// Bytes the generation's frozen snapshot clone copied off the master —
    /// the O(bytes) cost of freezing this generation (0 when no snapshot was
    /// taken).  Schedulers aggregate this into their pipeline counters.
    #[must_use]
    pub fn snapshot_bytes(&self) -> u64 {
        self.snapshot_bytes
    }

    /// Releases the generation's snapshot once its results are merged: the
    /// clause-database clone is freed as soon as no in-flight task still
    /// references it.  Idempotent.
    pub fn release_snapshot(&self) {
        self.snapshot.release();
    }

    /// Solves sub-property `index` on a fork of the generation's snapshot.
    ///
    /// `doomed` is the generation's shared lowest-failed-task id (initialise
    /// to `usize::MAX`): a task behind a lower-id failure is skipped, or
    /// cancelled mid-solve, because the deterministic merge can never consume
    /// its result.  `cancelled` aborts speculative work when an *earlier
    /// generation's* verdict has already ended the flow.
    ///
    /// Any worker thread may call this for any index; results are
    /// deterministic because every task solves from the same frozen snapshot.
    #[must_use]
    pub fn solve_task(
        &self,
        index: usize,
        doomed: &Arc<AtomicUsize>,
        cancelled: &Arc<AtomicBool>,
    ) -> TaskOutcome {
        if doomed.load(Ordering::SeqCst) < index || cancelled.load(Ordering::SeqCst) {
            return TaskOutcome::skipped();
        }
        let shard = match &self.snapshot {
            Snapshot::None => None,
            // Sole task of the generation: solve on the snapshot itself
            // instead of paying for a second clone.
            Snapshot::Exclusive(slot) => slot.lock().expect("no poisoned locks").take(),
            Snapshot::Shared(slot) => {
                // Clone the handle under the lock, fork outside it: clause
                // database clones never serialise the workers.
                let handle = slot.lock().expect("no poisoned locks").clone();
                handle.and_then(|master| master.fork())
            }
        };
        self.solve_on(shard, index, doomed, cancelled)
    }

    /// The shared solving core: masks, focuses and solves one task on an
    /// already-acquired shard.
    fn solve_on(
        &self,
        shard: Option<Box<dyn SatBackend>>,
        index: usize,
        doomed: &Arc<AtomicUsize>,
        cancelled: &Arc<AtomicBool>,
    ) -> TaskOutcome {
        let task = &self.tasks[index];
        let Some(mut shard) = shard else {
            doomed.fetch_min(index, Ordering::SeqCst);
            return TaskOutcome(TaskResult::Error(BackendError {
                message: "generation snapshot unavailable (backend advertised can_fork but \
                          fork() returned None)"
                    .to_string(),
            }));
        };
        // The byte cost of the fork that produced this shard.  It is folded
        // into the consumed task's work delta below — and it is schedule-
        // invariant: whether the shard forked off the frozen snapshot or
        // (on an inline schedule) straight off the unmutated master, the
        // cloned content is byte-identical, so reports stay identical across
        // the whole jobs x pipelining matrix.
        let fork_bytes = shard.snapshot_bytes();
        let fork_watcher_bytes = shard.watcher_bytes();
        shard.mask_all_decisions();
        for &v in &task.cone {
            shard.set_decision_var(v, true);
        }
        // Cancel mid-solve once a lower-id task has failed (or the flow
        // moved on): this task's result can no longer be consumed by the
        // deterministic merge.
        let doomed_check = Arc::clone(doomed);
        let cancelled_check = Arc::clone(cancelled);
        shard.set_interrupt(Arc::new(move || {
            doomed_check.load(Ordering::SeqCst) < index || cancelled_check.load(Ordering::SeqCst)
        }));
        let before = shard.stats();
        match shard.solve_under(&task.assumptions) {
            Err(e) => {
                doomed.fetch_min(index, Ordering::SeqCst);
                TaskOutcome(TaskResult::Error(e))
            }
            Ok(SolveResult::Interrupted) => TaskOutcome::skipped(),
            Ok(SolveResult::Unsat) => {
                let after = shard.stats();
                let mut delta = after.solver.delta_since(&before.solver);
                delta.fork_count += 1;
                delta.bytes_cloned += fork_bytes;
                delta.watcher_bytes_cloned += fork_watcher_bytes;
                TaskOutcome(TaskResult::Unsat(delta, after.queries - before.queries))
            }
            Ok(SolveResult::Sat) => {
                doomed.fetch_min(index, Ordering::SeqCst);
                let after = shard.stats();
                let mut delta = after.solver.delta_since(&before.solver);
                delta.fork_count += 1;
                delta.bytes_cloned += fork_bytes;
                delta.watcher_bytes_cloned += fork_watcher_bytes;
                TaskOutcome(TaskResult::Sat(
                    delta,
                    after.queries - before.queries,
                    shard,
                ))
            }
        }
    }
}

/// Solves every task of a prepared generation with up to `jobs` worker
/// threads pulling from a shared queue, honouring the PR-2 cancellation
/// semantics (tasks behind a lower-id failure are skipped or interrupted).
/// The building block of [`MiterSession::check_level`]; the flow-graph
/// executor in `htd-core` drives [`PreparedLevel::solve_task`] directly so
/// one worker pool can interleave tasks of *different* generations.
#[must_use]
pub fn solve_prepared(prepared: &PreparedLevel, jobs: NonZeroUsize) -> Vec<Option<TaskOutcome>> {
    let n = prepared.num_tasks();
    let next = AtomicUsize::new(0);
    let doomed = Arc::new(AtomicUsize::new(usize::MAX));
    let cancelled = Arc::new(AtomicBool::new(false));
    let results: Vec<OnceLock<TaskOutcome>> = (0..n).map(|_| OnceLock::new()).collect();
    let worker = || loop {
        let i = next.fetch_add(1, Ordering::SeqCst);
        if i >= n {
            break;
        }
        let _ = results[i].set(prepared.solve_task(i, &doomed, &cancelled));
    };
    // CPU-bound solver shards gain nothing from oversubscription: cap the
    // thread count at the machine's parallelism (results are
    // worker-count-independent either way).
    let hardware = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    let workers = jobs.get().min(n).min(hardware);
    if workers <= 1 {
        worker();
    } else {
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(worker);
            }
        });
    }
    results.into_iter().map(OnceLock::into_inner).collect()
}

/// The lowering contexts of one binding epoch (one merged-register set).
#[derive(Clone)]
struct EpochCtx {
    /// Sorted merged-register set this epoch was built for.
    key: Vec<SignalId>,
    /// Frame-`t` contexts of the two instances.
    ctx_t: [BlastContext; 2],
    /// Frame-`t+1` contexts, built lazily when a wire/output is proved.
    ctx_t1: [Option<BlastContext>; 2],
    /// Per-instance starting-state words under this epoch's sharing.
    regs: [FxHashMap<SignalId, BitVec>; 2],
}

impl std::fmt::Debug for MiterSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MiterSession")
            .field("design", &self.design_name)
            .field("backend", &self.backend.name())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl MiterSession {
    /// Creates a session with default checker options.
    #[must_use]
    pub fn new(design: &ValidatedDesign, backend: Box<dyn SatBackend>) -> Self {
        Self::with_options(design, CheckerOptions::default(), backend)
    }

    /// Creates a session with explicit checker options.
    ///
    /// This is the session's single bit-blast: the shared input words and the
    /// per-instance starting-state words are allocated here, once.
    #[must_use]
    pub fn with_options(
        design: &ValidatedDesign,
        options: CheckerOptions,
        mut backend: Box<dyn SatBackend>,
    ) -> Self {
        backend.set_gc_thresholds(
            f64::from(options.gc_dead_pct) / 100.0,
            options.gc_min_clauses,
        );
        let d = design.design();
        let mut aig = Aig::new();
        let inputs: Vec<FxHashMap<SignalId, BitVec>> = (0..2)
            .map(|_| {
                d.inputs()
                    .into_iter()
                    .map(|s| (s, fresh_word(&mut aig, d.signal_width(s))))
                    .collect()
            })
            .collect();
        let mut split_regs: [FxHashMap<SignalId, BitVec>; 2] =
            [FxHashMap::default(), FxHashMap::default()];
        for r in d.registers() {
            let width = d.signal_width(r);
            split_regs[0].insert(r, fresh_word(&mut aig, width));
            split_regs[1].insert(r, fresh_word(&mut aig, width));
        }
        MiterSession {
            aig,
            backend,
            encoder: IncrementalEncoder::new(),
            options,
            design_name: d.name().to_string(),
            inputs,
            split_regs,
            shared_regs: FxHashMap::default(),
            active_vars: FxHashSet::default(),
            support_cache: FxHashMap::default(),
            epoch: None,
            pending_acts: Vec::new(),
            stats: SessionStats {
                bit_blasts: 1,
                ..SessionStats::default()
            },
        }
    }

    /// The options in effect.
    #[must_use]
    pub fn options(&self) -> CheckerOptions {
        self.options
    }

    /// The backend's report name (`builtin-cdcl`, `dimacs:…`).
    #[must_use]
    pub fn backend_name(&self) -> String {
        self.backend.name()
    }

    /// The name of the design the session is bound to.
    #[must_use]
    pub fn design_name(&self) -> &str {
        &self.design_name
    }

    /// Bytes a fork of the session's master backend would copy — the
    /// O(bytes) cost model of the arena-backed clause store, used both for
    /// the per-generation snapshot accounting and as the eviction cost of a
    /// design-keyed session cache (0 for backends that cannot fork).
    #[must_use]
    pub fn snapshot_bytes(&self) -> u64 {
        self.backend.snapshot_bytes()
    }

    /// Estimated resident size of the whole session: the AIG footprint plus
    /// the backend's forkable snapshot bytes.  This is the honest eviction
    /// cost of a design-keyed **frozen master** cache: a pristine master has
    /// issued no queries, so [`snapshot_bytes`](Self::snapshot_bytes) alone
    /// reads near zero while the bit-blast product (the AIG and its
    /// structural hash) dominates its footprint.
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        self.aig.resident_bytes() + self.backend.snapshot_bytes()
    }

    /// Forks the whole session: an O(bytes) clone of the encoding state (AIG,
    /// encoder maps, epoch contexts) plus a [`SatBackend::fork`] of the
    /// master solver.  Returns `None` when the backend cannot fork (process
    /// backends).
    ///
    /// The fork is a fully independent session over the same design: checks
    /// run on it never touch the parent.  The intended use is a **frozen
    /// master** cache — build a session (one bit-blast), never run it, and
    /// fork it once per request — so a returning design costs one arena copy
    /// instead of a re-encode.  Forking a session that has already run
    /// properties is also sound, but its learnt clauses and retired
    /// activation literals carry over, so reports from such a fork are not
    /// byte-identical to a fresh session's; fork pristine masters when
    /// report-identity matters.
    #[must_use]
    pub fn try_fork(&self) -> Option<MiterSession> {
        let backend = self.backend.fork()?;
        Some(MiterSession {
            aig: self.aig.clone(),
            backend,
            encoder: self.encoder.clone(),
            options: self.options,
            design_name: self.design_name.clone(),
            inputs: self.inputs.clone(),
            split_regs: self.split_regs.clone(),
            shared_regs: self.shared_regs.clone(),
            active_vars: self.active_vars.clone(),
            support_cache: self.support_cache.clone(),
            epoch: self.epoch.clone(),
            pending_acts: self.pending_acts.clone(),
            stats: self.stats,
        })
    }

    /// Session-level counters.
    #[must_use]
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            // Queries solved on the master backend plus queries solved on
            // forked per-task solvers (accumulated in `self.stats.queries`).
            queries: self.backend.stats().queries + self.stats.queries,
            ..self.stats
        }
    }

    /// Checks a single-cycle interval property against the live miter.
    ///
    /// Must be called with the same design the session was built from.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError`] if the backend infrastructure fails (only
    /// possible for process backends).
    ///
    /// # Panics
    ///
    /// Panics if `design` is not the session's design.
    pub fn check(
        &mut self,
        design: &ValidatedDesign,
        property: &IntervalProperty,
    ) -> Result<PropertyReport, BackendError> {
        // htd-lint: allow(determinism): feeds PropertyReport.duration only, zeroed by the normalized rendering
        let start = Instant::now();
        let d = design.design();
        assert_eq!(d.name(), self.design_name, "session is bound to one design");
        self.stats.properties_checked += 1;
        // A session mixing the level API with `check` must not leave stale
        // activation literals armed.
        self.flush_retired();
        // Snapshots so the per-property report carries deltas, not
        // session-cumulative totals.
        let aig_nodes_before = self.aig.num_nodes();
        let aig_ands_before = self.aig.num_ands();
        let strash_before = self.aig.strash_hits();
        let backend_before = self.backend.stats();

        let share = self.options.share_assumed_equal;
        let assume_regs: FxHashSet<SignalId> = property
            .assume_equal
            .iter()
            .copied()
            .filter(|s| d.signal_info(*s).kind().is_register())
            .collect();

        // Reuse (or build) the lowering contexts of this binding epoch.
        let mut epoch = self.take_epoch(design, &assume_regs);

        // Antecedent: equality assumptions not discharged by variable
        // sharing, expressed as solver assumptions.
        let assumption_aig = self.lower_assumptions(design, property, &assume_regs, &mut epoch);

        // Consequent: values of the proved signals at time t+1 per instance.
        let mut prove_values: Vec<(SignalId, BitVec, BitVec)> = Vec::new();
        for &sig in &property.prove_equal {
            // Structural fast path: once the antecedent registers are merged,
            // a prove signal whose whole cone reduces to shared variables is
            // equal in every model — it contributes no miter input, no AIG
            // nodes and no solver work.  This is where the incremental
            // session beats the re-encode path: proven levels make the next
            // level's equality structural.
            if share && self.structurally_equal_next(design, sig, &assume_regs) {
                self.stats.structurally_proved += 1;
                continue;
            }
            if let Some((b1, b2)) = self.lower_prove_signal(design, &mut epoch, sig) {
                prove_values.push((sig, b1, b2));
            }
        }

        // Miter: some proved signal differs.
        let mut diff_lits: Vec<AigLit> = Vec::new();
        for (_, b1, b2) in &prove_values {
            diff_lits.push(equal(&mut self.aig, b1, b2).invert());
        }
        let miter = self.aig.or_all(&diff_lits);

        // Mirror the new cones into the backend.
        let mut roots: Vec<AigLit> = assumption_aig.clone();
        roots.push(miter);
        let fresh = self
            .encoder
            .encode(self.backend.as_mut(), &self.aig, &roots);
        self.stats.nodes_encoded += fresh as u64;

        let mut assumptions: Vec<Lit> = Vec::new();
        let mut vacuous = false;
        for &a in &assumption_aig {
            if a == AigLit::TRUE {
                continue;
            }
            if a == AigLit::FALSE {
                // The antecedent is structurally unsatisfiable; the property
                // holds vacuously.
                vacuous = true;
                break;
            }
            assumptions.push(self.encoder.lit(a));
        }

        let result = if vacuous || miter == AigLit::FALSE {
            // No query needed — but any cones this property *did* encode must
            // still leave the decision-eligible set, or later searches could
            // wander into them.
            if fresh > 0 {
                self.focus_search(&roots, None);
            }
            SolveResult::Unsat
        } else if miter == AigLit::TRUE {
            // Some proved signal differs structurally for every assignment;
            // a query is still needed to find a model of the antecedent.
            self.focus_search(&roots, None);
            self.backend.solve_under(&assumptions)?
        } else {
            let act = self.backend.new_var();
            self.focus_search(&roots, Some(act));
            let miter_lit = self.encoder.lit(miter);
            self.backend.add_clause(&[Lit::neg(act), miter_lit]);
            assumptions.push(Lit::pos(act));
            let result = self.backend.solve_under(&assumptions)?;
            // Retire the activation literal: the property's miter clause is
            // permanently disabled and can never pollute later queries.  Let
            // the backend compact once enough retired cones and stale learnt
            // clauses have piled up.
            self.backend.add_clause(&[Lit::neg(act)]);
            let _ = self.backend.collect_garbage();
            result
        };

        let outcome = match result {
            SolveResult::Interrupted => {
                // Only a tripped budget (or a cancel flag folded into the
                // backend's interrupt seam) abandons a master query; surface
                // it as a structured error so the session layer can map it
                // to the job-level cause.
                return Err(BackendError {
                    message: "master query interrupted (budget exhausted or cancelled)".to_owned(),
                });
            }
            SolveResult::Unsat => CheckOutcome::Holds,
            SolveResult::Sat => CheckOutcome::Fails(Box::new(self.reconstruct_with(
                self.backend.as_ref(),
                d,
                &property.name,
                &prove_values,
                &epoch.regs,
            ))),
        };
        self.epoch = Some(epoch);

        // Report deltas against the start-of-check snapshots: `CheckStats`
        // describes one property check, not the whole session.
        let backend_after = self.backend.stats();
        let solver_delta = SolverStats {
            // The learnt-clause gauge reports the database size, not a delta.
            learnt_clauses: backend_after.solver.learnt_clauses,
            ..backend_after.solver.delta_since(&backend_before.solver)
        };
        let stats = CheckStats {
            aig_nodes: self.aig.num_nodes() - aig_nodes_before,
            aig_ands: self.aig.num_ands() - aig_ands_before,
            strash_hits: self.aig.strash_hits() - strash_before,
            cnf_vars: backend_after.vars - backend_before.vars,
            cnf_clauses: backend_after.clauses.saturating_sub(backend_before.clauses),
            solver: solver_delta,
            duration: start.elapsed(),
        };
        Ok(PropertyReport {
            property: property.name.clone(),
            outcome,
            stats,
        })
    }

    /// Lowers and encodes one generation of the flow graph — a fanout level's
    /// property (or a resolution round of one) — on the master backend and
    /// freezes it behind a forked snapshot.
    ///
    /// This is the master half of the pipelined level check: the prove
    /// consequent is partitioned into per-signal sub-properties ("one pending
    /// property per prove signal"), each guarded by its own activation
    /// literal, and the whole generation's cones are mirrored into the master
    /// once (sharing the binding epoch).  The returned [`PreparedLevel`] is
    /// self-contained: its tasks solve against the generation's frozen
    /// snapshot on any thread while the master moves on to encode *later*
    /// generations (epoch-scoped incremental re-lowering).
    ///
    /// Master hygiene runs at the prepare boundary, in a fixed order that is
    /// a pure function of the prepare sequence: first the previous
    /// generation's activation literals are retired (their miter clauses are
    /// permanently disabled), then the clause database is opportunistically
    /// compacted *before* the snapshot is taken, so worker shards clone an
    /// already-GC'd database (see [`CheckerOptions::gc_dead_pct`]).
    ///
    /// `freeze: false` skips the snapshot clone: the caller promises to
    /// solve this generation's tasks (via
    /// [`solve_task_inline`](Self::solve_task_inline)) before the master
    /// mutates again, which makes a master fork at solve time byte-identical
    /// to a fork of the omitted snapshot.  Sequential schedules use this to
    /// avoid paying for a clone nobody shares.
    ///
    /// # Panics
    ///
    /// Panics if `design` is not the session's design.
    pub fn prepare_level(
        &mut self,
        design: &ValidatedDesign,
        property: &IntervalProperty,
        freeze: bool,
    ) -> PreparedLevel {
        // htd-lint: allow(determinism): feeds PropertyReport.duration only, zeroed by the normalized rendering
        let start = Instant::now();
        let d = design.design();
        assert_eq!(d.name(), self.design_name, "session is bound to one design");
        let aig_nodes_before = self.aig.num_nodes();
        let aig_ands_before = self.aig.num_ands();
        let strash_before = self.aig.strash_hits();
        let backend_before = self.backend.stats();

        // Retire the previous generation's activation literals: deferred to
        // this point so the master mutation stream is deterministic whether
        // or not earlier generations have finished solving.
        let retired = self.flush_retired();

        let share = self.options.share_assumed_equal;
        let assume_regs: FxHashSet<SignalId> = property
            .assume_equal
            .iter()
            .copied()
            .filter(|s| d.signal_info(*s).kind().is_register())
            .collect();
        let mut epoch = self.take_epoch(design, &assume_regs);
        let assumption_aig = self.lower_assumptions(design, property, &assume_regs, &mut epoch);

        // Per-signal proof obligations in prove-list order — the sub-property
        // id order of the deterministic merge.
        let mut structurally_proved = 0u64;
        let mut specs: Vec<(SignalId, BitVec, BitVec, AigLit)> = Vec::new();
        for &sig in &property.prove_equal {
            if share && self.structurally_equal_next(design, sig, &assume_regs) {
                structurally_proved += 1;
                continue;
            }
            let Some((b1, b2)) = self.lower_prove_signal(design, &mut epoch, sig) else {
                continue;
            };
            let diff = equal(&mut self.aig, &b1, &b2).invert();
            if diff == AigLit::FALSE {
                // Equal by construction under this epoch's sharing.
                continue;
            }
            specs.push((sig, b1, b2, diff));
        }

        // A structurally unsatisfiable antecedent makes the whole level hold
        // vacuously; no signal to check makes it hold trivially.  Either way
        // the generation carries no tasks.
        let mut tasks: Vec<LevelTask> = Vec::new();
        if !assumption_aig.contains(&AigLit::FALSE) && !specs.is_empty() {
            // Mirror every cone this generation needs into the master, then
            // guard each sub-property's miter behind its own activation
            // literal.
            let mut roots: Vec<AigLit> = assumption_aig.clone();
            roots.extend(specs.iter().map(|s| s.3));
            let fresh = self
                .encoder
                .encode(self.backend.as_mut(), &self.aig, &roots);
            self.stats.nodes_encoded += fresh as u64;

            let base_assumptions: Vec<Lit> = assumption_aig
                .iter()
                .filter(|&&a| a != AigLit::TRUE)
                .map(|&a| self.encoder.lit(a))
                .collect();
            let assumption_roots: Vec<AigLit> = assumption_aig
                .iter()
                .copied()
                .filter(|a| !a.is_const())
                .collect();

            tasks.reserve(specs.len());
            for (sig, b1, b2, diff) in specs {
                let mut assumptions = base_assumptions.clone();
                let mut cone_roots = assumption_roots.clone();
                let act = if diff == AigLit::TRUE {
                    // The miter holds structurally for every assignment; the
                    // query only needs a model of the antecedent.
                    None
                } else {
                    cone_roots.push(diff);
                    let act = self.backend.new_var();
                    let miter_lit = self.encoder.lit(diff);
                    self.backend.add_clause(&[Lit::neg(act), miter_lit]);
                    assumptions.push(Lit::pos(act));
                    Some(act)
                };
                let mut cone: Vec<Var> = self
                    .encoder
                    .cone_vars(&self.aig, &cone_roots)
                    .into_iter()
                    .collect();
                cone.extend(act);
                tasks.push(LevelTask {
                    sig,
                    b1,
                    b2,
                    act,
                    assumptions,
                    cone,
                });
            }
        }

        if retired {
            // Something died since the last compaction: compact the master
            // before any freeze, so shards clone an already-GC'd clause
            // database.
            let _ = self.backend.collect_garbage();
        }
        let snapshot = if tasks.is_empty() || !freeze {
            // Taskless generation, or the caller promises to solve inline
            // before the master mutates again (tasks then fork straight off
            // the master via `solve_task_inline`, saving the snapshot clone).
            Snapshot::None
        } else if tasks.len() == 1 {
            match self.backend.fork() {
                Some(fork) => Snapshot::Exclusive(Mutex::new(Some(fork))),
                None => Snapshot::None,
            }
        } else {
            match self.backend.fork() {
                Some(fork) => Snapshot::Shared(Mutex::new(Some(Arc::from(fork)))),
                None => Snapshot::None,
            }
        };
        // Master-side fork accounting: with the arena-backed clause store a
        // snapshot clone costs O(bytes of live database), and these counters
        // make that visible per generation.  They stay out of the flow
        // report (which counts the schedule-invariant per-task forks
        // instead) because inline schedules legitimately skip the clone.
        // The byte computation itself only runs when a snapshot was taken —
        // for process backends it scans the clause list.
        let snapshot_bytes = if snapshot.is_some() {
            let bytes = self.backend.snapshot_bytes();
            self.stats.snapshot_forks += 1;
            self.stats.snapshot_bytes_cloned += bytes;
            bytes
        } else {
            0
        };
        self.pending_acts.extend(tasks.iter().filter_map(|t| t.act));

        let backend_after = self.backend.stats();
        let prepared = PreparedLevel {
            property_name: property.name.clone(),
            tasks,
            snapshot,
            regs: epoch.regs.clone(),
            start,
            structurally_proved,
            snapshot_bytes,
            aig_nodes: self.aig.num_nodes() - aig_nodes_before,
            aig_ands: self.aig.num_ands() - aig_ands_before,
            strash_hits: self.aig.strash_hits() - strash_before,
            cnf_vars: backend_after.vars - backend_before.vars,
            cnf_clauses: backend_after.clauses.saturating_sub(backend_before.clauses),
            master_solver: backend_after.solver.delta_since(&backend_before.solver),
        };
        self.epoch = Some(epoch);
        prepared
    }

    /// Solves sub-property `index` of a prepared generation on the master
    /// backend — the fallback for backends that cannot fork.  The caller must
    /// drive tasks in id order and stop after the first outcome for which
    /// [`TaskOutcome::ends_level`] is true, which preserves the merge
    /// semantics of the forked path (deterministic, never parallel).
    #[must_use]
    pub fn solve_task_on_master(&mut self, prepared: &PreparedLevel, index: usize) -> TaskOutcome {
        let task = &prepared.tasks[index];
        self.backend.begin_new_query();
        let cone: FxHashSet<Var> = task.cone.iter().copied().collect();
        for &var in self.active_vars.difference(&cone) {
            self.backend.set_decision_var(var, false);
        }
        for &var in cone.difference(&self.active_vars) {
            self.backend.set_decision_var(var, true);
        }
        self.active_vars = cone;
        // The master's own query counter already counts this solve (the
        // session reports backend queries plus fork queries), so the outcome
        // carries a zero query count — but the solver-work deltas must flow
        // through the outcome, because the generation's master bracket closed
        // at the end of prepare.
        let before = self.backend.stats();
        match self.backend.solve_under(&task.assumptions) {
            Err(e) => TaskOutcome(TaskResult::Error(e)),
            Ok(SolveResult::Interrupted) => TaskOutcome(TaskResult::Error(BackendError {
                // A tripped budget (or cancel) on the sequential fallback
                // path; the session layer maps it to the job-level cause.
                message: "master query interrupted (budget exhausted or cancelled)".to_owned(),
            })),
            Ok(SolveResult::Unsat) => {
                let after = self.backend.stats();
                TaskOutcome(TaskResult::Unsat(
                    after.solver.delta_since(&before.solver),
                    0,
                ))
            }
            Ok(SolveResult::Sat) => {
                let after = self.backend.stats();
                TaskOutcome(TaskResult::MasterSat(
                    after.solver.delta_since(&before.solver),
                    0,
                ))
            }
        }
    }

    /// Solves sub-property `index` of a generation prepared with
    /// `freeze: false` on a fork taken straight off the master.  Sound only
    /// while the master has not mutated since that generation's
    /// [`prepare_level`](Self::prepare_level) — the fork then has exactly the
    /// content its frozen snapshot would have had, so results (and reports)
    /// are byte-identical to the frozen path.
    #[must_use]
    pub fn solve_task_inline(
        &self,
        prepared: &PreparedLevel,
        index: usize,
        doomed: &Arc<AtomicUsize>,
        cancelled: &Arc<AtomicBool>,
    ) -> TaskOutcome {
        if doomed.load(Ordering::SeqCst) < index || cancelled.load(Ordering::SeqCst) {
            return TaskOutcome::skipped();
        }
        prepared.solve_on(self.backend.fork(), index, doomed, cancelled)
    }

    /// Deterministically merges the outcomes of one prepared generation into
    /// its [`PropertyReport`]: scan in sub-property id order, first
    /// counterexample wins, and only the consumed prefix contributes
    /// statistics — the invariant that keeps flow reports identical for any
    /// worker count, pipelined or not.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError`] if a consumed task reported an infrastructure
    /// failure (or produced no result at all).
    ///
    /// # Panics
    ///
    /// Panics if `design` is not the session's design.
    pub fn merge_level(
        &mut self,
        design: &ValidatedDesign,
        prepared: &PreparedLevel,
        outcomes: Vec<Option<TaskOutcome>>,
    ) -> Result<PropertyReport, BackendError> {
        let d = design.design();
        assert_eq!(d.name(), self.design_name, "session is bound to one design");
        self.stats.properties_checked += 1;
        self.stats.structurally_proved += prepared.structurally_proved;
        self.stats.parallel_tasks += prepared.tasks.len() as u64;
        if prepared.tasks.is_empty() {
            return Ok(self.prepared_report(prepared, CheckOutcome::Holds, SolverStats::default()));
        }

        let mut level_delta = SolverStats::default();
        let mut fork_queries = 0u64;
        let mut winner: Option<(usize, Option<Box<dyn SatBackend>>)> = None;
        let mut first_error: Option<BackendError> = None;
        let mut skipped = 0u64;
        for (i, outcome) in outcomes.into_iter().enumerate() {
            if winner.is_some() || first_error.is_some() {
                skipped += 1;
                continue;
            }
            match outcome.map(|o| o.0) {
                Some(TaskResult::Unsat(delta, queries)) => {
                    level_delta.accumulate(&delta);
                    fork_queries += queries;
                }
                Some(TaskResult::Sat(delta, queries, shard)) => {
                    level_delta.accumulate(&delta);
                    fork_queries += queries;
                    winner = Some((i, Some(shard)));
                }
                Some(TaskResult::MasterSat(delta, queries)) => {
                    level_delta.accumulate(&delta);
                    fork_queries += queries;
                    winner = Some((i, None));
                }
                Some(TaskResult::Error(e)) => first_error = Some(e),
                Some(TaskResult::Skipped) | None => {
                    // A skipped task before any failure cannot happen (tasks
                    // are only skipped behind a lower-id failure); treat a
                    // lost result as an infrastructure error.
                    first_error = Some(BackendError {
                        message: format!("level sub-property {i} produced no result"),
                    });
                }
            }
        }
        self.stats.tasks_skipped += skipped;
        self.stats.queries += fork_queries;
        if let Some(e) = first_error {
            return Err(e);
        }

        // Reconstruct the counterexample (if any) from the model of the
        // winning task's solver.
        let outcome = match &winner {
            None => CheckOutcome::Holds,
            Some((i, shard)) => {
                let task = &prepared.tasks[*i];
                let model_source: &dyn SatBackend = match shard {
                    Some(shard) => shard.as_ref(),
                    None => self.backend.as_ref(),
                };
                let prove_values = vec![(task.sig, task.b1.clone(), task.b2.clone())];
                CheckOutcome::Fails(Box::new(self.reconstruct_with(
                    model_source,
                    d,
                    &prepared.property_name,
                    &prove_values,
                    &prepared.regs,
                )))
            }
        };
        Ok(self.prepared_report(prepared, outcome, level_delta))
    }

    /// Assembles the [`PropertyReport`] of one generation from its prepare
    /// bracket plus the accumulated per-task solver work.
    fn prepared_report(
        &self,
        prepared: &PreparedLevel,
        outcome: CheckOutcome,
        task_delta: SolverStats,
    ) -> PropertyReport {
        let mut solver = prepared.master_solver;
        solver.accumulate(&task_delta);
        PropertyReport {
            property: prepared.property_name.clone(),
            outcome,
            stats: CheckStats {
                aig_nodes: prepared.aig_nodes,
                aig_ands: prepared.aig_ands,
                strash_hits: prepared.strash_hits,
                cnf_vars: prepared.cnf_vars,
                cnf_clauses: prepared.cnf_clauses,
                solver,
                duration: prepared.start.elapsed(),
            },
        }
    }

    /// Retires the pending activation literals of the previously prepared
    /// generation: permanent unit clauses disable their miter clauses, which
    /// the next [`collect_garbage`](SatBackend::collect_garbage) can then
    /// physically drop.
    /// Returns `true` if any literal was retired (i.e. clauses may have
    /// died since the last garbage collection).
    fn flush_retired(&mut self) -> bool {
        let retired = !self.pending_acts.is_empty();
        for act in std::mem::take(&mut self.pending_acts) {
            self.backend.add_clause(&[Lit::neg(act)]);
        }
        retired
    }

    /// `true` if the backend can fork frozen snapshots — the prerequisite for
    /// the pipelined flow-graph executor.
    #[must_use]
    pub fn backend_can_fork(&self) -> bool {
        self.backend.can_fork()
    }

    /// The master backend's cumulative counters (variables, clauses, queries
    /// and solver work including clause-GC).
    #[must_use]
    pub fn backend_stats(&self) -> htd_sat::BackendStats {
        self.backend.stats()
    }

    /// Attaches (or detaches, with `None`) a shared resource budget on the
    /// master backend.  Forks taken afterwards — the per-task shards of the
    /// pipelined executor — inherit the tracker, so the whole job charges
    /// one budget.  Install it on a run fork, never on a cached pristine
    /// master.
    pub fn set_budget(&mut self, budget: Option<std::sync::Arc<htd_sat::BudgetTracker>>) {
        self.backend.set_budget(budget);
    }

    /// Ends a level-flow: retires the final generation's activation literals
    /// and lets the backend compact the clauses that just died, so a reused
    /// session starts its next run with a clean database.  Returns the
    /// master's solver-work delta (clause-GC counters); callers must NOT
    /// fold it into a flow report — which literals are still pending depends
    /// on how far ahead the executor speculated, and reports are
    /// schedule-invariant.  Inspect [`backend_stats`](Self::backend_stats)
    /// for the cumulative picture instead.
    pub fn finish_level_flow(&mut self) -> SolverStats {
        let before = self.backend.stats();
        if self.flush_retired() {
            let _ = self.backend.collect_garbage();
        }
        self.backend.stats().solver.delta_since(&before.solver)
    }

    /// Checks one property by partitioning it into per-signal sub-properties
    /// solved on sharded solvers: [`prepare_level`](Self::prepare_level), a
    /// worker pool over [`PreparedLevel::solve_task`] (or the sequential
    /// master fallback for non-forkable backends), then the deterministic
    /// [`merge_level`](Self::merge_level).  The flow-graph executor in
    /// `htd-core` drives the same three stages with one pool across *all*
    /// generations, which is what pipelines property checking across levels.
    ///
    /// **Determinism**: every fork starts from the same frozen snapshot, so a
    /// task's result does not depend on which worker ran it or on how many
    /// workers there are.  Results merge in sub-property id order (the prove-
    /// list order) and the first counterexample wins; tasks after a known
    /// failure are cancelled, and the merged [`CheckStats`] sum only the
    /// consumed tasks.  `check_level(p, 1)` and `check_level(p, n)` therefore
    /// return identical reports (up to wall-clock durations).
    ///
    /// # Errors
    ///
    /// Returns [`BackendError`] if the backend infrastructure fails.
    ///
    /// # Panics
    ///
    /// Panics if `design` is not the session's design.
    pub fn check_level(
        &mut self,
        design: &ValidatedDesign,
        property: &IntervalProperty,
        jobs: NonZeroUsize,
    ) -> Result<PropertyReport, BackendError> {
        let freeze = jobs.get() > 1 && self.backend.can_fork();
        let prepared = self.prepare_level(design, property, freeze);
        let outcomes = if prepared.tasks.is_empty() {
            Vec::new()
        } else if prepared.has_snapshot() {
            solve_prepared(&prepared, jobs)
        } else if self.backend.can_fork() {
            // Single-worker schedule: fork each task straight off the
            // unmutated master (identical content to the omitted snapshot).
            let doomed = Arc::new(AtomicUsize::new(usize::MAX));
            let cancelled = Arc::new(AtomicBool::new(false));
            (0..prepared.tasks.len())
                .map(|i| Some(self.solve_task_inline(&prepared, i, &doomed, &cancelled)))
                .collect()
        } else {
            // Non-forkable backend: solve in id order on the master, stopping
            // at the first counterexample (identical merge semantics, never
            // parallel).
            let mut outcomes: Vec<Option<TaskOutcome>> = Vec::with_capacity(prepared.tasks.len());
            let mut stop = false;
            for index in 0..prepared.tasks.len() {
                if stop {
                    outcomes.push(Some(TaskOutcome::skipped()));
                    continue;
                }
                let outcome = self.solve_task_on_master(&prepared, index);
                stop = outcome.ends_level();
                outcomes.push(Some(outcome));
            }
            outcomes
        };
        self.merge_level(design, &prepared, outcomes)
    }

    /// The registers in the combinational support of `sig`'s driver
    /// (transitively through wires), cached for the session's lifetime.
    fn driver_reg_support(&mut self, design: &ValidatedDesign, sig: SignalId) -> Vec<SignalId> {
        if let Some(cached) = self.support_cache.get(&sig) {
            return cached.clone();
        }
        let d = design.design();
        let driver = d.signal_info(sig).driver().expect("validated design");
        let regs: Vec<SignalId> = htd_rtl::structural::combinational_support(design, driver)
            .into_iter()
            .filter(|s| d.signal_info(*s).kind().is_register())
            .collect();
        self.support_cache.insert(sig, regs.clone());
        regs
    }

    /// `true` if the *next* value of register (or the *current* value of
    /// wire/output) `sig` is the same function of shared variables in both
    /// instances: every register its driver reads is bound to a shared word.
    fn driver_is_merged(
        &mut self,
        design: &ValidatedDesign,
        sig: SignalId,
        assume_regs: &FxHashSet<SignalId>,
    ) -> bool {
        self.driver_reg_support(design, sig)
            .iter()
            .all(|r| assume_regs.contains(r))
    }

    /// `true` if `sig`'s value one cycle after `t` is provably identical in
    /// both instances *by construction* under the current sharing: the whole
    /// cone reduces to shared variables, so no lowering and no SAT query is
    /// needed — the incremental flow's structural fast path.
    fn structurally_equal_next(
        &mut self,
        design: &ValidatedDesign,
        sig: SignalId,
        assume_regs: &FxHashSet<SignalId>,
    ) -> bool {
        let d = design.design();
        match d.signal_info(sig).kind() {
            SignalKind::Register { .. } => self.driver_is_merged(design, sig, assume_regs),
            SignalKind::Output | SignalKind::Wire => {
                // Value at t+1 = comb function of inputs@t+1 (shared) and the
                // next-state of the registers the driver reads.
                self.driver_reg_support(design, sig)
                    .iter()
                    .all(|&r| self.driver_is_merged(design, r, assume_regs))
            }
            SignalKind::Input => true,
        }
    }

    /// Returns the lowering contexts for the given merged-register set,
    /// reusing the cached epoch when the key matches (the cross-property
    /// lowering cache) and rebinding otherwise.
    fn take_epoch(
        &mut self,
        design: &ValidatedDesign,
        assume_regs: &FxHashSet<SignalId>,
    ) -> EpochCtx {
        let share = self.options.share_assumed_equal;
        let mut key: Vec<SignalId> = if share {
            assume_regs.iter().copied().collect()
        } else {
            Vec::new()
        };
        key.sort_unstable();
        if let Some(epoch) = self.epoch.take() {
            if epoch.key == key {
                return epoch;
            }
        }
        self.stats.epoch_rebinds += 1;
        let d = design.design();
        let mut ctx_t: [BlastContext; 2] = [BlastContext::new(), BlastContext::new()];
        for ctx in &mut ctx_t {
            for (s, bits) in &self.inputs[0] {
                ctx.bind(*s, bits.clone());
            }
        }
        let mut regs: [FxHashMap<SignalId, BitVec>; 2] =
            [FxHashMap::default(), FxHashMap::default()];
        for r in d.registers() {
            if share && assume_regs.contains(&r) {
                let width = d.signal_width(r);
                let aig = &mut self.aig;
                let bits = self
                    .shared_regs
                    .entry(r)
                    .or_insert_with(|| (0..width).map(|_| aig.new_input()).collect())
                    .clone();
                for inst in 0..2 {
                    ctx_t[inst].bind(r, bits.clone());
                    regs[inst].insert(r, bits.clone());
                }
            } else {
                for inst in 0..2 {
                    let bits = self.split_regs[inst][&r].clone();
                    ctx_t[inst].bind(r, bits.clone());
                    regs[inst].insert(r, bits);
                }
            }
        }
        EpochCtx {
            key,
            ctx_t,
            ctx_t1: [None, None],
            regs,
        }
    }

    /// Lowers the antecedent equalities not already discharged by variable
    /// sharing into AIG literals (one per assumed signal).
    fn lower_assumptions(
        &mut self,
        design: &ValidatedDesign,
        property: &IntervalProperty,
        assume_regs: &FxHashSet<SignalId>,
        epoch: &mut EpochCtx,
    ) -> Vec<AigLit> {
        let d = design.design();
        let share = self.options.share_assumed_equal;
        let mut assumption_aig: Vec<AigLit> = Vec::new();
        for &sig in &property.assume_equal {
            let kind = d.signal_info(sig).kind();
            let merged = kind.is_register() && share;
            if merged || kind == SignalKind::Input {
                continue;
            }
            // A wire/output whose cone reduces to shared variables is equal
            // by construction; lowering it would only produce a constant.
            if share && self.driver_is_merged(design, sig, assume_regs) {
                continue;
            }
            let b1 = epoch.ctx_t[0].signal(d, &mut self.aig, sig);
            let b2 = epoch.ctx_t[1].signal(d, &mut self.aig, sig);
            assumption_aig.push(equal(&mut self.aig, &b1, &b2));
        }
        assumption_aig
    }

    /// Lowers one prove signal's next-cycle value in both instances.
    /// Registers are proved through their drivers at `t`; wires and outputs
    /// through the (lazily built) frame-`t+1` contexts.  Inputs are shared by
    /// construction — nothing to prove, `None`.
    fn lower_prove_signal(
        &mut self,
        design: &ValidatedDesign,
        epoch: &mut EpochCtx,
        sig: SignalId,
    ) -> Option<(BitVec, BitVec)> {
        let d = design.design();
        let info = d.signal_info(sig);
        match info.kind() {
            SignalKind::Register { .. } => {
                let next = info.driver().expect("validated design");
                let b1 = epoch.ctx_t[0].expr(d, &mut self.aig, next);
                let b2 = epoch.ctx_t[1].expr(d, &mut self.aig, next);
                Some((b1, b2))
            }
            SignalKind::Output | SignalKind::Wire => {
                for inst in 0..2 {
                    if epoch.ctx_t1[inst].is_none() {
                        let mut next_ctx = BlastContext::new();
                        for (s, bits) in &self.inputs[1] {
                            next_ctx.bind(*s, bits.clone());
                        }
                        for r in d.registers() {
                            let next = d.signal_info(r).driver().expect("validated design");
                            let bits = epoch.ctx_t[inst].expr(d, &mut self.aig, next);
                            next_ctx.bind(r, bits);
                        }
                        epoch.ctx_t1[inst] = Some(next_ctx);
                    }
                }
                let b1 =
                    epoch.ctx_t1[0]
                        .as_mut()
                        .expect("built above")
                        .signal(d, &mut self.aig, sig);
                let b2 =
                    epoch.ctx_t1[1]
                        .as_mut()
                        .expect("built above")
                        .signal(d, &mut self.aig, sig);
                Some((b1, b2))
            }
            SignalKind::Input => None,
        }
    }

    /// Points the backend's search at the current query: resets the decision
    /// heuristics (activities and phases tuned for the previous property's
    /// conflict structure routinely mislead the next query) and confines
    /// branching to the cone of `roots` plus the activation literal.
    /// Variables of retired queries are purely definitional, so masking them
    /// is sound — see [`htd_sat::Solver::set_decision_var`].
    fn focus_search(&mut self, roots: &[AigLit], act: Option<Var>) {
        self.backend.begin_new_query();
        let mut cone = self.encoder.cone_vars(&self.aig, roots);
        cone.extend(act);
        for &var in self.active_vars.difference(&cone) {
            self.backend.set_decision_var(var, false);
        }
        for &var in cone.difference(&self.active_vars) {
            self.backend.set_decision_var(var, true);
        }
        self.active_vars = cone;
    }

    /// Rebuilds a concrete counterexample from the given backend's model via
    /// the reconstruction shared with the one-shot checker.  The model source
    /// is a parameter because a parallel level check reads it from the forked
    /// per-task solver that found the counterexample.
    fn reconstruct_with(
        &self,
        model_source: &dyn SatBackend,
        d: &htd_rtl::Design,
        name: &str,
        prove_values: &[(SignalId, BitVec, BitVec)],
        regs: &[FxHashMap<SignalId, BitVec>; 2],
    ) -> Counterexample {
        let mut env: FxHashMap<u32, bool> = FxHashMap::default();
        for (&node, &var) in self.encoder.node_vars() {
            if self.aig.is_input(AigLit::positive(node)) {
                env.insert(node, model_source.model_value(var).unwrap_or(false));
            }
        }
        crate::checker::reconstruct_counterexample(
            d,
            &self.aig,
            &env,
            name,
            &[prove_values.to_vec()],
            &self.inputs,
            regs,
        )
    }
}

/// Allocates fresh AIG variables for one word.
fn fresh_word(aig: &mut Aig, width: u32) -> BitVec {
    (0..width).map(|_| aig.new_input()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PropertyChecker;
    use htd_rtl::Design;
    use htd_sat::Solver;

    fn trojan_design() -> ValidatedDesign {
        let mut d = Design::new("tiny_trojan");
        let input = d.add_input("in", 1).unwrap();
        let trigger = d.add_register("trigger", 1, 0).unwrap();
        let data = d.add_register("data", 1, 0).unwrap();
        let trig_next = d.or(d.signal(trigger), d.signal(input)).unwrap();
        d.set_register_next(trigger, trig_next).unwrap();
        let payload = d.xor(d.signal(input), d.signal(trigger)).unwrap();
        d.set_register_next(data, payload).unwrap();
        d.add_output("out", d.signal(data)).unwrap();
        d.validated().unwrap()
    }

    fn pipeline() -> ValidatedDesign {
        let mut d = Design::new("pipeline");
        let input = d.add_input("in", 8).unwrap();
        let s1 = d.add_register("s1", 8, 0).unwrap();
        let s2 = d.add_register("s2", 8, 0).unwrap();
        d.set_register_next(s1, d.signal(input)).unwrap();
        d.set_register_next(s2, d.signal(s1)).unwrap();
        d.add_output("out", d.signal(s2)).unwrap();
        d.validated().unwrap()
    }

    #[test]
    fn session_and_legacy_checker_agree_on_a_trojan() {
        let design = trojan_design();
        let d = design.design();
        let data = d.require("data").unwrap();
        let property = IntervalProperty::new("init_property", vec![], vec![data]);

        let legacy = PropertyChecker::new(&design).check(&property);
        let mut session = MiterSession::new(&design, Box::new(Solver::new()));
        let incremental = session.check(&design, &property).unwrap();

        assert!(!legacy.holds());
        assert!(!incremental.holds());
        let cex = incremental.outcome.counterexample().unwrap();
        assert_eq!(cex.diff_names(), vec!["data"]);
    }

    #[test]
    fn session_checks_a_whole_flow_with_one_bit_blast() {
        let design = pipeline();
        let d = design.design();
        let s1 = d.require("s1").unwrap();
        let s2 = d.require("s2").unwrap();
        let out = d.require("out").unwrap();

        let mut session = MiterSession::new(&design, Box::new(Solver::new()));
        let properties = [
            IntervalProperty::new("init_property", vec![], vec![s1]),
            IntervalProperty::new("fanout_property_1", vec![s1], vec![s2]),
            IntervalProperty::new("fanout_property_2", vec![s1, s2], vec![out]),
        ];
        for property in &properties {
            let report = session.check(&design, property).unwrap();
            assert!(report.holds(), "{} should hold", property.name);
        }
        let stats = session.stats();
        assert_eq!(stats.bit_blasts, 1);
        assert_eq!(stats.properties_checked, 3);
    }

    #[test]
    fn re_checking_the_same_property_encodes_nothing_new() {
        let design = pipeline();
        let d = design.design();
        let s1 = d.require("s1").unwrap();
        let property = IntervalProperty::new("init_property", vec![], vec![s1]);

        let mut session = MiterSession::new(&design, Box::new(Solver::new()));
        session.check(&design, &property).unwrap();
        let encoded_once = session.stats().nodes_encoded;
        session.check(&design, &property).unwrap();
        assert_eq!(session.stats().nodes_encoded, encoded_once);
    }

    #[test]
    fn check_level_matches_check_on_holding_and_failing_properties() {
        let jobs = NonZeroUsize::new(2).unwrap();
        // Failing property on the trojan design.
        let design = trojan_design();
        let d = design.design();
        let data = d.require("data").unwrap();
        let trigger = d.require("trigger").unwrap();
        let failing = IntervalProperty::new("init_property", vec![], vec![trigger, data]);
        let mut plain = MiterSession::new(&design, Box::new(Solver::new()));
        let mut sharded = MiterSession::new(&design, Box::new(Solver::new()));
        let plain_report = plain.check(&design, &failing).unwrap();
        let sharded_report = sharded.check_level(&design, &failing, jobs).unwrap();
        assert!(!plain_report.holds());
        assert!(!sharded_report.holds());
        // First-counterexample-wins: the lowest-id failing prove signal.
        let cex = sharded_report.outcome.counterexample().unwrap();
        assert_eq!(cex.diff_names(), vec!["trigger"]);

        // Holding properties on the clean pipeline.
        let design = pipeline();
        let d = design.design();
        let s1 = d.require("s1").unwrap();
        let s2 = d.require("s2").unwrap();
        let out = d.require("out").unwrap();
        let mut session = MiterSession::new(&design, Box::new(Solver::new()));
        for property in [
            IntervalProperty::new("init_property", vec![], vec![s1]),
            IntervalProperty::new("fanout_property_1", vec![s1], vec![s2, out]),
        ] {
            let report = session.check_level(&design, &property, jobs).unwrap();
            assert!(report.holds(), "{} should hold", property.name);
        }
        assert_eq!(session.stats().bit_blasts, 1);
    }

    /// A fork of a pristine (never-run) master behaves exactly like a fresh
    /// session — same verdicts, same solver-work deltas, one inherited
    /// bit-blast — and runs independently of its parent.
    #[test]
    fn a_pristine_fork_checks_like_a_fresh_session() {
        let design = trojan_design();
        let d = design.design();
        let data = d.require("data").unwrap();
        let property = IntervalProperty::new("init_property", vec![], vec![data]);

        let master = MiterSession::new(&design, Box::new(Solver::new()));
        let mut forked = master.try_fork().expect("builtin backend forks");
        let mut fresh = MiterSession::new(&design, Box::new(Solver::new()));

        let mut from_fork = forked.check(&design, &property).unwrap();
        let mut from_fresh = fresh.check(&design, &property).unwrap();
        from_fork.stats.duration = std::time::Duration::ZERO;
        from_fresh.stats.duration = std::time::Duration::ZERO;
        assert_eq!(from_fork, from_fresh);

        // The fork inherits the master's single bit-blast and never triggers
        // another; the master itself stayed pristine.
        assert_eq!(forked.stats().bit_blasts, 1);
        assert_eq!(master.stats().properties_checked, 0);

        // A second, later fork of the same untouched master is unaffected by
        // the first fork's run.
        let mut second = master.try_fork().expect("builtin backend forks");
        let mut again = second.check(&design, &property).unwrap();
        again.stats.duration = std::time::Duration::ZERO;
        assert_eq!(again, from_fresh);
    }

    #[test]
    fn check_level_is_worker_count_invariant() {
        let design = trojan_design();
        let d = design.design();
        let trigger = d.require("trigger").unwrap();
        let data = d.require("data").unwrap();
        let property = IntervalProperty::new("init_property", vec![], vec![trigger, data]);
        let mut reports = Vec::new();
        for jobs in [1usize, 2, 4] {
            let mut session = MiterSession::new(&design, Box::new(Solver::new()));
            let mut report = session
                .check_level(&design, &property, NonZeroUsize::new(jobs).unwrap())
                .unwrap();
            report.stats.duration = std::time::Duration::ZERO;
            reports.push(report);
        }
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[0], reports[2]);
    }

    #[test]
    fn properties_sharing_an_antecedent_share_one_binding_epoch() {
        let design = pipeline();
        let d = design.design();
        let s1 = d.require("s1").unwrap();
        let s2 = d.require("s2").unwrap();
        let out = d.require("out").unwrap();
        let jobs = NonZeroUsize::MIN;
        let mut session = MiterSession::new(&design, Box::new(Solver::new()));
        // Same antecedent twice: one epoch.
        let p1 = IntervalProperty::new("a", vec![s1], vec![s2]);
        let p2 = IntervalProperty::new("b", vec![s1], vec![out]);
        session.check_level(&design, &p1, jobs).unwrap();
        session.check_level(&design, &p2, jobs).unwrap();
        assert_eq!(session.stats().epoch_rebinds, 1);
        // A different antecedent rebinds.
        let p3 = IntervalProperty::new("c", vec![s1, s2], vec![out]);
        session.check_level(&design, &p3, jobs).unwrap();
        assert_eq!(session.stats().epoch_rebinds, 2);
    }

    #[test]
    fn unshared_options_still_give_the_same_verdicts() {
        let design = trojan_design();
        let d = design.design();
        let trigger = d.require("trigger").unwrap();
        let data = d.require("data").unwrap();
        for share in [true, false] {
            let options = CheckerOptions {
                share_assumed_equal: share,
                ..CheckerOptions::default()
            };
            let mut session = MiterSession::with_options(&design, options, Box::new(Solver::new()));
            let failing = IntervalProperty::new("init_property", vec![], vec![data]);
            assert!(!session.check(&design, &failing).unwrap().holds());
            // Assuming the trigger state equal discharges the divergence.
            let resolved = IntervalProperty::new("resolved", vec![trigger], vec![data]);
            assert!(session.check(&design, &resolved).unwrap().holds());
        }
    }
}
