//! And-Inverter Graph (AIG) with structural hashing.
//!
//! The bit-blaster lowers word-level RTL expressions to an AIG; structural
//! hashing merges syntactically identical cones.  This is what makes the
//! 2-safety miter cheap to solve: when the two design instances share their
//! input variables (and the variables of any registers assumed equal), the
//! identical parts of the two instances collapse onto the very same AIG nodes
//! and the equality checks of the property become constant-true before the
//! SAT solver even runs.  Only logic that genuinely depends on *unshared*
//! state — which is exactly where a sequential Trojan's trigger or payload
//! must live — survives into the CNF.

use std::collections::HashMap;
use std::hash::BuildHasher;

use crate::fxhash::FxHashMap;
use std::fmt;

/// A literal in the AIG: a node index plus an inversion flag.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AigLit(u32);

impl AigLit {
    /// The constant-false literal.
    pub const FALSE: AigLit = AigLit(0);
    /// The constant-true literal.
    pub const TRUE: AigLit = AigLit(1);

    fn new(node: u32, inverted: bool) -> Self {
        AigLit(node << 1 | u32::from(inverted))
    }

    /// Index of the underlying node.
    #[must_use]
    pub const fn node(self) -> u32 {
        self.0 >> 1
    }

    /// `true` if the literal is the complement of its node.
    #[must_use]
    pub const fn is_inverted(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complemented literal.
    #[must_use]
    pub const fn invert(self) -> Self {
        AigLit(self.0 ^ 1)
    }

    /// The positive (non-inverted) literal of a node index.
    ///
    /// Mainly useful for tooling that walks the graph by node id (e.g. the
    /// CNF encoder and counterexample extraction in the property checker).
    #[must_use]
    pub const fn positive(node: u32) -> Self {
        AigLit(node << 1)
    }

    /// `true` if this literal is one of the two constants.
    #[must_use]
    pub const fn is_const(self) -> bool {
        self.node() == 0
    }

    /// The raw encoding (node index shifted, LSB = inversion flag); a
    /// compact, stable key for tables over literals.
    #[must_use]
    pub const fn code(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for AigLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == AigLit::FALSE {
            write!(f, "F")
        } else if *self == AigLit::TRUE {
            write!(f, "T")
        } else if self.is_inverted() {
            write!(f, "!n{}", self.node())
        } else {
            write!(f, "n{}", self.node())
        }
    }
}

/// Node payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Node {
    /// The constant-false node (index 0).
    ConstFalse,
    /// A free Boolean variable.
    Input,
    /// Conjunction of two literals.
    And(AigLit, AigLit),
}

/// An And-Inverter Graph with structural hashing and local simplification.
///
/// # Example
///
/// ```
/// use htd_ipc::aig::{Aig, AigLit};
///
/// let mut aig = Aig::new();
/// let a = aig.new_input();
/// let b = aig.new_input();
/// let ab1 = aig.and(a, b);
/// let ab2 = aig.and(b, a);
/// // Structural hashing: the same conjunction is returned for both orders.
/// assert_eq!(ab1, ab2);
/// // Local simplification: x & !x == false.
/// assert_eq!(aig.and(a, a.invert()), AigLit::FALSE);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Aig {
    nodes: Vec<Node>,
    strash: FxHashMap<u64, u32>,
    num_inputs: usize,
    /// Counts AND nodes that were requested but already present (a measure of
    /// how much sharing the structural hash achieved).
    strash_hits: u64,
}

impl Aig {
    /// Creates an empty graph containing only the constant node.
    #[must_use]
    pub fn new() -> Self {
        Aig {
            nodes: vec![Node::ConstFalse],
            strash: FxHashMap::with_capacity_and_hasher(1 << 16, Default::default()),
            num_inputs: 0,
            strash_hits: 0,
        }
    }

    /// Allocates a fresh primary input (a free Boolean variable).
    pub fn new_input(&mut self) -> AigLit {
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node::Input);
        self.num_inputs += 1;
        AigLit::new(idx, false)
    }

    /// Number of primary inputs created so far.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Total number of nodes (constant + inputs + AND gates).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of AND gates.
    #[must_use]
    pub fn num_ands(&self) -> usize {
        self.nodes.len() - 1 - self.num_inputs
    }

    /// Number of AND-gate requests answered from the structural hash table.
    #[must_use]
    pub fn strash_hits(&self) -> u64 {
        self.strash_hits
    }

    /// Estimated resident size of the graph in bytes: the node table plus
    /// the structural-hash entries.  Used as the eviction cost of encoding
    /// caches — a session that has not solved anything yet holds its whole
    /// footprint here, not in the solver.
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        let nodes = self.nodes.len() * std::mem::size_of::<Node>();
        let strash = self.strash.len() * (std::mem::size_of::<u64>() + std::mem::size_of::<u32>());
        (nodes + strash) as u64
    }

    /// `true` if the node behind `lit` is a primary input.
    #[must_use]
    pub fn is_input(&self, lit: AigLit) -> bool {
        matches!(self.nodes[lit.node() as usize], Node::Input)
    }

    /// The conjunction of two literals, with constant folding, idempotence /
    /// complement rules and structural hashing applied.
    pub fn and(&mut self, a: AigLit, b: AigLit) -> AigLit {
        // Local simplifications.
        if a == AigLit::FALSE || b == AigLit::FALSE || a == b.invert() {
            return AigLit::FALSE;
        }
        if a == AigLit::TRUE {
            return b;
        }
        if b == AigLit::TRUE || a == b {
            return a;
        }
        // Canonical operand order, packed into one word so the structural
        // hash costs a single probe of a u64 key.
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let key = u64::from(lo.code()) << 32 | u64::from(hi.code());
        if let Some(&node) = self.strash.get(&key) {
            self.strash_hits += 1;
            return AigLit::new(node, false);
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node::And(lo, hi));
        self.strash.insert(key, idx);
        AigLit::new(idx, false)
    }

    /// Disjunction, built from AND and inversion.
    pub fn or(&mut self, a: AigLit, b: AigLit) -> AigLit {
        self.and(a.invert(), b.invert()).invert()
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let a_and_nb = self.and(a, b.invert());
        let na_and_b = self.and(a.invert(), b);
        self.or(a_and_nb, na_and_b)
    }

    /// Exclusive nor (equivalence).
    pub fn xnor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        self.xor(a, b).invert()
    }

    /// 2-to-1 multiplexer `cond ? t : e`.
    pub fn mux(&mut self, cond: AigLit, t: AigLit, e: AigLit) -> AigLit {
        if t == e {
            return t;
        }
        let then_part = self.and(cond, t);
        let else_part = self.and(cond.invert(), e);
        self.or(then_part, else_part)
    }

    /// Conjunction of many literals.
    pub fn and_all(&mut self, lits: &[AigLit]) -> AigLit {
        let mut acc = AigLit::TRUE;
        for &l in lits {
            acc = self.and(acc, l);
        }
        acc
    }

    /// Disjunction of many literals.
    pub fn or_all(&mut self, lits: &[AigLit]) -> AigLit {
        let mut acc = AigLit::FALSE;
        for &l in lits {
            acc = self.or(acc, l);
        }
        acc
    }

    /// Full adder returning `(sum, carry_out)`.
    pub fn full_adder(&mut self, a: AigLit, b: AigLit, cin: AigLit) -> (AigLit, AigLit) {
        let axb = self.xor(a, b);
        let sum = self.xor(axb, cin);
        let ab = self.and(a, b);
        let cin_axb = self.and(cin, axb);
        let cout = self.or(ab, cin_axb);
        (sum, cout)
    }

    /// The fanin literals of an AND node (`None` for inputs and the constant).
    #[must_use]
    pub fn and_inputs(&self, node: u32) -> Option<(AigLit, AigLit)> {
        match self.nodes[node as usize] {
            Node::And(a, b) => Some((a, b)),
            _ => None,
        }
    }

    /// Evaluates every node under an assignment of the inputs, in one pass.
    ///
    /// Returns a vector indexed by node id; missing inputs default to
    /// `false`.  Use this (rather than repeated [`eval`](Self::eval) calls)
    /// when many literals must be evaluated under the same assignment, e.g.
    /// when reconstructing a counterexample.
    #[must_use]
    pub fn eval_all<S: BuildHasher>(&self, input_values: &HashMap<u32, bool, S>) -> Vec<bool> {
        let mut values = vec![false; self.nodes.len()];
        for (idx, node) in self.nodes.iter().enumerate() {
            values[idx] = match *node {
                Node::ConstFalse => false,
                Node::Input => *input_values.get(&(idx as u32)).unwrap_or(&false),
                Node::And(a, b) => {
                    (values[a.node() as usize] ^ a.is_inverted())
                        && (values[b.node() as usize] ^ b.is_inverted())
                }
            };
        }
        values
    }

    /// Reads the value of a literal from a node-value vector produced by
    /// [`eval_all`](Self::eval_all).
    #[must_use]
    pub fn lit_value(&self, values: &[bool], lit: AigLit) -> bool {
        values[lit.node() as usize] ^ lit.is_inverted()
    }

    /// Evaluates a literal under a full assignment of the inputs.
    ///
    /// `input_values` maps node indices of inputs to Boolean values; missing
    /// inputs default to `false`.  Mainly used in tests and for
    /// counterexample replay.
    #[must_use]
    pub fn eval<S: BuildHasher>(&self, lit: AigLit, input_values: &HashMap<u32, bool, S>) -> bool {
        let mut cache: Vec<Option<bool>> = vec![None; self.nodes.len()];
        cache[0] = Some(false);
        let mut stack = vec![lit.node()];
        while let Some(&node) = stack.last() {
            if cache[node as usize].is_some() {
                stack.pop();
                continue;
            }
            match self.nodes[node as usize] {
                Node::ConstFalse => {
                    cache[node as usize] = Some(false);
                    stack.pop();
                }
                Node::Input => {
                    cache[node as usize] = Some(*input_values.get(&node).unwrap_or(&false));
                    stack.pop();
                }
                Node::And(a, b) => {
                    let va = cache[a.node() as usize];
                    let vb = cache[b.node() as usize];
                    match (va, vb) {
                        (Some(va), Some(vb)) => {
                            let value = (va ^ a.is_inverted()) && (vb ^ b.is_inverted());
                            cache[node as usize] = Some(value);
                            stack.pop();
                        }
                        _ => {
                            if va.is_none() {
                                stack.push(a.node());
                            }
                            if vb.is_none() {
                                stack.push(b.node());
                            }
                        }
                    }
                }
            }
        }
        cache[lit.node() as usize].expect("evaluated above") ^ lit.is_inverted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_behave() {
        let mut aig = Aig::new();
        let a = aig.new_input();
        assert_eq!(aig.and(a, AigLit::FALSE), AigLit::FALSE);
        assert_eq!(aig.and(a, AigLit::TRUE), a);
        assert_eq!(aig.and(AigLit::TRUE, AigLit::TRUE), AigLit::TRUE);
        assert_eq!(aig.or(a, AigLit::TRUE), AigLit::TRUE);
        assert_eq!(aig.or(a, AigLit::FALSE), a);
    }

    #[test]
    fn complement_and_idempotence_rules() {
        let mut aig = Aig::new();
        let a = aig.new_input();
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, a.invert()), AigLit::FALSE);
        assert_eq!(aig.or(a, a.invert()), AigLit::TRUE);
    }

    #[test]
    fn structural_hashing_reuses_nodes() {
        let mut aig = Aig::new();
        let a = aig.new_input();
        let b = aig.new_input();
        let before = aig.num_nodes();
        let x = aig.and(a, b);
        let y = aig.and(b, a);
        assert_eq!(x, y);
        assert_eq!(aig.num_nodes(), before + 1);
        assert_eq!(aig.strash_hits(), 1);
    }

    #[test]
    fn truth_tables_of_derived_gates() {
        let mut aig = Aig::new();
        let a = aig.new_input();
        let b = aig.new_input();
        let c = aig.new_input();
        let gates = [
            ("and", aig.and(a, b)),
            ("or", aig.or(a, b)),
            ("xor", aig.xor(a, b)),
            ("xnor", aig.xnor(a, b)),
        ];
        let mux = aig.mux(c, a, b);
        for va in [false, true] {
            for vb in [false, true] {
                for vc in [false, true] {
                    let env: HashMap<u32, bool> = [(a.node(), va), (b.node(), vb), (c.node(), vc)]
                        .into_iter()
                        .collect();
                    for (name, lit) in gates {
                        let expected = match name {
                            "and" => va && vb,
                            "or" => va || vb,
                            "xor" => va ^ vb,
                            "xnor" => !(va ^ vb),
                            _ => unreachable!(),
                        };
                        assert_eq!(aig.eval(lit, &env), expected, "{name} {va} {vb}");
                    }
                    assert_eq!(aig.eval(mux, &env), if vc { va } else { vb }, "mux");
                }
            }
        }
    }

    #[test]
    fn full_adder_truth_table() {
        let mut aig = Aig::new();
        let a = aig.new_input();
        let b = aig.new_input();
        let c = aig.new_input();
        let (sum, cout) = aig.full_adder(a, b, c);
        for va in [false, true] {
            for vb in [false, true] {
                for vc in [false, true] {
                    let env: HashMap<u32, bool> = [(a.node(), va), (b.node(), vb), (c.node(), vc)]
                        .into_iter()
                        .collect();
                    let total = u8::from(va) + u8::from(vb) + u8::from(vc);
                    assert_eq!(aig.eval(sum, &env), total % 2 == 1);
                    assert_eq!(aig.eval(cout, &env), total >= 2);
                }
            }
        }
    }

    #[test]
    fn and_or_over_many_literals() {
        let mut aig = Aig::new();
        let inputs: Vec<AigLit> = (0..5).map(|_| aig.new_input()).collect();
        let conj = aig.and_all(&inputs);
        let disj = aig.or_all(&inputs);
        let all_true: HashMap<u32, bool> = inputs.iter().map(|l| (l.node(), true)).collect();
        let one_false: HashMap<u32, bool> = inputs
            .iter()
            .enumerate()
            .map(|(i, l)| (l.node(), i != 2))
            .collect();
        let all_false: HashMap<u32, bool> = inputs.iter().map(|l| (l.node(), false)).collect();
        assert!(aig.eval(conj, &all_true));
        assert!(!aig.eval(conj, &one_false));
        assert!(aig.eval(disj, &one_false));
        assert!(!aig.eval(disj, &all_false));
    }

    #[test]
    fn mux_with_equal_branches_simplifies() {
        let mut aig = Aig::new();
        let c = aig.new_input();
        let a = aig.new_input();
        assert_eq!(aig.mux(c, a, a), a);
    }

    #[test]
    fn literal_accessors() {
        let mut aig = Aig::new();
        let a = aig.new_input();
        assert!(!a.is_inverted());
        assert!(a.invert().is_inverted());
        assert_eq!(a.invert().invert(), a);
        assert!(AigLit::TRUE.is_const());
        assert!(AigLit::FALSE.is_const());
        assert!(!a.is_const());
        assert!(aig.is_input(a));
        assert!(!aig.is_input(AigLit::FALSE));
    }
}
