//! A fast, non-cryptographic hasher for the bit-blasting hot path.
//!
//! Structural hashing performs one hash-map probe per AND gate built, and a
//! whole-design bit-blast builds millions of gates; the standard library's
//! DoS-resistant SipHash dominates that profile.  The detection flow hashes
//! only small fixed-size keys (node ids, literal pairs, signal ids) that are
//! never attacker-controlled, so the multiply-xor scheme of rustc's `FxHash`
//! is the right trade-off.
//!
//! The implementation lives in [`htd_rtl::fxhash`] (the bottom of the crate
//! stack) so the design content hash
//! ([`htd_rtl::netlist::content_hash`]) and this crate's hash maps share one
//! definition; this module re-exports it under the historical path.

pub use htd_rtl::fxhash::{FxHashMap, FxHashSet, FxHasher};
