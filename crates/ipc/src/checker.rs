//! The interval property checker (IPC) over the 2-safety miter.
//!
//! Each check builds a *one-step* (or, for the aggregate trojan property, a
//! k-step) unrolling of the design's transition relation for two instances of
//! the same design:
//!
//! * the primary inputs are shared between the instances at every time frame
//!   (that is the miter of Fig. 2 in the paper),
//! * the registers at time `t` are **free variables** — this is the symbolic
//!   starting state of IPC, which implicitly models any input history and
//!   therefore any trigger sequence of any length,
//! * registers assumed equal by the property either share their variables
//!   across instances (default, see [`CheckerOptions::share_assumed_equal`])
//!   or receive explicit equality constraints,
//! * the property's prove-part becomes a miter output: *some proved signal
//!   differs between the instances*; the SAT solver then either refutes it
//!   (property holds for **all** starting states) or returns a
//!   counterexample.

use crate::fxhash::{FxHashMap, FxHashSet};
use std::time::Instant;

use htd_rtl::{SignalId, SignalKind, ValidatedDesign};
use htd_sat::SolveResult;

use crate::aig::{Aig, AigLit};
use crate::bitblast::{equal, BitVec, BlastContext};
use crate::cnf::{encode as encode_cnf, sat_lit};
use crate::property::{
    CheckOutcome, CheckStats, Counterexample, IntervalProperty, PropertyReport, SignalValuePair,
};

/// Options controlling the property encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckerOptions {
    /// Merge the starting-state variables of registers assumed equal by the
    /// property across the two instances (default: `true`).
    ///
    /// Merging is sound and complete — a model of the merged encoding
    /// corresponds one-to-one to a model of the constrained encoding — and it
    /// lets the AIG's structural hashing collapse the identical cones of the
    /// two instances, which is what keeps each proof in the seconds range.
    /// Setting this to `false` keeps two separate variable sets plus explicit
    /// equality constraints; the ablation benchmark (`ablation_hashing`)
    /// quantifies the difference.
    pub share_assumed_equal: bool,
    /// Percentage of the backend's clause database that must be dead before
    /// opportunistic garbage collection compacts it (default: 25, or the
    /// `HTD_GC_DEAD_PCT` environment variable).  The session runs the check
    /// on the master encoding before every fork snapshot, so lowering this
    /// shrinks the clause database every worker shard clones.
    pub gc_dead_pct: u32,
    /// Minimum clause-database size before garbage collection is considered
    /// at all (default: 128, or the `HTD_GC_MIN_CLAUSES` environment
    /// variable).
    pub gc_min_clauses: usize,
}

/// Environment variable overriding [`CheckerOptions::gc_dead_pct`].
pub const GC_DEAD_PCT_ENV_VAR: &str = "HTD_GC_DEAD_PCT";

/// Environment variable overriding [`CheckerOptions::gc_min_clauses`].
pub const GC_MIN_CLAUSES_ENV_VAR: &str = "HTD_GC_MIN_CLAUSES";

/// Reads a numeric environment override strictly: an unset variable yields
/// the fallback, a set-but-malformed one panics with the variable name — a
/// typo must never silently run with default thresholds.
fn env_number<T: std::str::FromStr>(var: &str, fallback: T) -> T {
    let Ok(value) = std::env::var(var) else {
        return fallback;
    };
    value.trim().parse::<T>().unwrap_or_else(|_| {
        panic!("{var}={value:?} is not a valid number; unset it for the default")
    })
}

impl Default for CheckerOptions {
    fn default() -> Self {
        CheckerOptions {
            share_assumed_equal: true,
            gc_dead_pct: env_number(
                GC_DEAD_PCT_ENV_VAR,
                (htd_sat::DEFAULT_GC_DEAD_FRACTION * 100.0) as u32,
            ),
            gc_min_clauses: env_number(GC_MIN_CLAUSES_ENV_VAR, htd_sat::DEFAULT_GC_MIN_CLAUSES),
        }
    }
}

/// The property checker bound to one design.
///
/// # Example
///
/// ```
/// use htd_ipc::{IntervalProperty, PropertyChecker};
/// use htd_rtl::Design;
///
/// # fn main() -> Result<(), htd_rtl::DesignError> {
/// // A register that simply latches the input: the init property
/// // (inputs equal at t => register equal at t+1) holds.
/// let mut d = Design::new("latch");
/// let input = d.add_input("in", 8)?;
/// let r = d.add_register("r", 8, 0)?;
/// d.set_register_next(r, d.signal(input))?;
/// d.add_output("out", d.signal(r))?;
/// let design = d.validated()?;
///
/// let checker = PropertyChecker::new(&design);
/// let property = IntervalProperty::new("init_property", vec![], vec![r]);
/// assert!(checker.check(&property).holds());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PropertyChecker<'a> {
    design: &'a ValidatedDesign,
    options: CheckerOptions,
}

impl<'a> PropertyChecker<'a> {
    /// Creates a checker with default options.
    #[must_use]
    pub fn new(design: &'a ValidatedDesign) -> Self {
        PropertyChecker {
            design,
            options: CheckerOptions::default(),
        }
    }

    /// Creates a checker with explicit options.
    #[must_use]
    pub fn with_options(design: &'a ValidatedDesign, options: CheckerOptions) -> Self {
        PropertyChecker { design, options }
    }

    /// The options in effect.
    #[must_use]
    pub fn options(&self) -> CheckerOptions {
        self.options
    }

    /// Checks a single-cycle interval property (Figs. 4 and 5 of the paper).
    #[must_use]
    pub fn check(&self, property: &IntervalProperty) -> PropertyReport {
        // htd-lint: allow(determinism): feeds PropertyReport.duration only, zeroed by the normalized rendering
        let start = Instant::now();
        let d = self.design.design();
        let mut aig = Aig::new();

        // Shared primary inputs for frames 0 (time t) and 1 (time t+1).
        let inputs: Vec<FxHashMap<SignalId, BitVec>> = (0..2)
            .map(|_| fresh_words(&mut aig, d, &d.inputs()))
            .collect();

        // Starting-state variables.
        let assume_regs: FxHashSet<SignalId> = property
            .assume_equal
            .iter()
            .copied()
            .filter(|s| d.signal_info(*s).kind().is_register())
            .collect();
        let mut regs: [FxHashMap<SignalId, BitVec>; 2] =
            [FxHashMap::default(), FxHashMap::default()];
        for r in d.registers() {
            let width = d.signal_width(r);
            if self.options.share_assumed_equal && assume_regs.contains(&r) {
                let bits = fresh_word(&mut aig, width);
                regs[0].insert(r, bits.clone());
                regs[1].insert(r, bits);
            } else {
                regs[0].insert(r, fresh_word(&mut aig, width));
                regs[1].insert(r, fresh_word(&mut aig, width));
            }
        }

        // Frame-0 lowering contexts per instance.
        let mut ctx_t: [BlastContext; 2] = [BlastContext::new(), BlastContext::new()];
        for (inst, ctx) in ctx_t.iter_mut().enumerate() {
            for (s, bits) in &inputs[0] {
                ctx.bind(*s, bits.clone());
            }
            for (s, bits) in &regs[inst] {
                ctx.bind(*s, bits.clone());
            }
        }

        // Antecedent: equality assumptions not discharged by variable sharing.
        let mut assumption_lits: Vec<AigLit> = Vec::new();
        for &sig in &property.assume_equal {
            let kind = d.signal_info(sig).kind();
            let merged = kind.is_register() && self.options.share_assumed_equal;
            if merged || kind == SignalKind::Input {
                continue;
            }
            let b1 = ctx_t[0].signal(d, &mut aig, sig);
            let b2 = ctx_t[1].signal(d, &mut aig, sig);
            assumption_lits.push(equal(&mut aig, &b1, &b2));
        }

        // Consequent: values of the proved signals at time t+1 per instance.
        let mut ctx_t1: [Option<BlastContext>; 2] = [None, None];
        let mut prove_values: Vec<(SignalId, BitVec, BitVec)> = Vec::new();
        for &sig in &property.prove_equal {
            let info = d.signal_info(sig);
            match info.kind() {
                SignalKind::Register { .. } => {
                    let next = info.driver().expect("validated design");
                    let b1 = ctx_t[0].expr(d, &mut aig, next);
                    let b2 = ctx_t[1].expr(d, &mut aig, next);
                    prove_values.push((sig, b1, b2));
                }
                SignalKind::Output | SignalKind::Wire => {
                    for inst in 0..2 {
                        if ctx_t1[inst].is_none() {
                            let mut next_ctx = BlastContext::new();
                            for (s, bits) in &inputs[1] {
                                next_ctx.bind(*s, bits.clone());
                            }
                            for r in d.registers() {
                                let next = d.signal_info(r).driver().expect("validated design");
                                let bits = ctx_t[inst].expr(d, &mut aig, next);
                                next_ctx.bind(r, bits);
                            }
                            ctx_t1[inst] = Some(next_ctx);
                        }
                    }
                    let b1 = ctx_t1[0]
                        .as_mut()
                        .expect("built above")
                        .signal(d, &mut aig, sig);
                    let b2 = ctx_t1[1]
                        .as_mut()
                        .expect("built above")
                        .signal(d, &mut aig, sig);
                    prove_values.push((sig, b1, b2));
                }
                SignalKind::Input => {
                    // Inputs are shared by construction; nothing to prove.
                }
            }
        }

        self.solve_miter(
            &property.name,
            &mut aig,
            &assumption_lits,
            &[prove_values],
            &inputs,
            &regs,
            start,
        )
    }

    /// Checks the aggregate *trojan property* of Fig. 3: inputs equal at `t`,
    /// and `fanouts_CCk` equal at `t + k` for every level `k = 1..=n`.
    ///
    /// This is the un-decomposed form used to validate Theorem 1 (the
    /// decomposed init/fanout properties are equivalent to this one); the
    /// iterative flow in `htd-core` uses [`check`](Self::check) instead.
    #[must_use]
    pub fn check_aggregate(&self, levels: &[Vec<SignalId>], name: &str) -> PropertyReport {
        // htd-lint: allow(determinism): feeds PropertyReport.duration only, zeroed by the normalized rendering
        let start = Instant::now();
        let d = self.design.design();
        let mut aig = Aig::new();
        let frames = levels.len();

        // Shared inputs for frames 0..=frames.
        let inputs: Vec<FxHashMap<SignalId, BitVec>> = (0..=frames)
            .map(|_| fresh_words(&mut aig, d, &d.inputs()))
            .collect();

        // Fully unconstrained, per-instance starting state.
        let mut regs: [FxHashMap<SignalId, BitVec>; 2] =
            [FxHashMap::default(), FxHashMap::default()];
        for r in d.registers() {
            let width = d.signal_width(r);
            regs[0].insert(r, fresh_word(&mut aig, width));
            regs[1].insert(r, fresh_word(&mut aig, width));
        }

        let mut prove_values_by_frame: Vec<Vec<(SignalId, BitVec, BitVec)>> = Vec::new();
        let mut current: [FxHashMap<SignalId, BitVec>; 2] = [regs[0].clone(), regs[1].clone()];
        for (j, level) in levels.iter().enumerate() {
            // Frame-j contexts.
            let mut ctx: [BlastContext; 2] = [BlastContext::new(), BlastContext::new()];
            for (inst, c) in ctx.iter_mut().enumerate() {
                for (s, bits) in &inputs[j] {
                    c.bind(*s, bits.clone());
                }
                for (s, bits) in &current[inst] {
                    c.bind(*s, bits.clone());
                }
            }
            // Next state per instance.
            let mut next: [FxHashMap<SignalId, BitVec>; 2] =
                [FxHashMap::default(), FxHashMap::default()];
            for r in d.registers() {
                let driver = d.signal_info(r).driver().expect("validated design");
                for inst in 0..2 {
                    let bits = ctx[inst].expr(d, &mut aig, driver);
                    next[inst].insert(r, bits);
                }
            }
            // Frame-(j+1) contexts for combinational signals.
            let mut ctx_next: [BlastContext; 2] = [BlastContext::new(), BlastContext::new()];
            for (inst, c) in ctx_next.iter_mut().enumerate() {
                for (s, bits) in &inputs[j + 1] {
                    c.bind(*s, bits.clone());
                }
                for (s, bits) in &next[inst] {
                    c.bind(*s, bits.clone());
                }
            }
            let mut frame_values = Vec::new();
            for &sig in level {
                let info = d.signal_info(sig);
                let (b1, b2) = match info.kind() {
                    SignalKind::Register { .. } => (next[0][&sig].clone(), next[1][&sig].clone()),
                    SignalKind::Output | SignalKind::Wire => (
                        ctx_next[0].signal(d, &mut aig, sig),
                        ctx_next[1].signal(d, &mut aig, sig),
                    ),
                    SignalKind::Input => continue,
                };
                frame_values.push((sig, b1, b2));
            }
            prove_values_by_frame.push(frame_values);
            current = next;
        }

        self.solve_miter(
            name,
            &mut aig,
            &[],
            &prove_values_by_frame,
            &inputs,
            &regs,
            start,
        )
    }

    /// Shared back end: build the miter output, encode to CNF, solve, and
    /// reconstruct a counterexample if one exists.
    #[allow(clippy::too_many_arguments)]
    fn solve_miter(
        &self,
        name: &str,
        aig: &mut Aig,
        assumption_lits: &[AigLit],
        prove_values_by_frame: &[Vec<(SignalId, BitVec, BitVec)>],
        inputs: &[FxHashMap<SignalId, BitVec>],
        regs: &[FxHashMap<SignalId, BitVec>; 2],
        start: Instant,
    ) -> PropertyReport {
        let d = self.design.design();

        // Miter output: some proved signal differs in some frame.
        let mut diff_lits: Vec<AigLit> = Vec::new();
        for frame_values in prove_values_by_frame {
            for (_, b1, b2) in frame_values {
                diff_lits.push(equal(aig, b1, b2).invert());
            }
        }
        let miter = aig.or_all(&diff_lits);

        // Encode the cone of the assumptions and the miter.
        let mut roots: Vec<AigLit> = assumption_lits.to_vec();
        roots.push(miter);
        let (mut solver, node_vars) = encode_cnf(aig, &roots);
        let mut trivially_unsat = false;
        for &root in &roots {
            if root == AigLit::TRUE {
                continue;
            }
            if root == AigLit::FALSE {
                trivially_unsat = true;
                continue;
            }
            let lit = sat_lit(&node_vars, root);
            solver.add_clause([lit]);
        }

        let result = if trivially_unsat {
            SolveResult::Unsat
        } else {
            solver.solve()
        };

        let outcome = match result {
            SolveResult::Unsat => CheckOutcome::Holds,
            SolveResult::Interrupted => unreachable!("no interrupt check installed"),
            SolveResult::Sat => {
                // Reconstruct concrete values from the model.
                let mut env: FxHashMap<u32, bool> = FxHashMap::default();
                for (&node, &var) in &node_vars {
                    if aig.is_input(AigLit::positive(node)) {
                        env.insert(node, solver.value(var).unwrap_or(false));
                    }
                }
                CheckOutcome::Fails(Box::new(reconstruct_counterexample(
                    d,
                    aig,
                    &env,
                    name,
                    prove_values_by_frame,
                    inputs,
                    regs,
                )))
            }
        };

        let stats = CheckStats {
            aig_nodes: aig.num_nodes(),
            aig_ands: aig.num_ands(),
            strash_hits: aig.strash_hits(),
            cnf_vars: solver.num_vars(),
            cnf_clauses: solver.num_clauses(),
            solver: solver.stats(),
            duration: start.elapsed(),
        };
        PropertyReport {
            property: name.to_string(),
            outcome,
            stats,
        }
    }
}

/// Rebuilds a concrete [`Counterexample`] from an assignment of the AIG's
/// input nodes (`env`; missing inputs read as `false`).
///
/// Shared by the one-shot [`PropertyChecker`] and the incremental
/// [`MiterSession`](crate::MiterSession) so the two paths cannot drift: the
/// failing frame is the first with a diverging prove-signal, `diffs` lists
/// every diverging signal of that frame, and the starting state and input
/// frames are decoded from the given words.
pub(crate) fn reconstruct_counterexample(
    d: &htd_rtl::Design,
    aig: &Aig,
    env: &FxHashMap<u32, bool>,
    name: &str,
    prove_values_by_frame: &[Vec<(SignalId, BitVec, BitVec)>],
    inputs: &[FxHashMap<SignalId, BitVec>],
    regs: &[FxHashMap<SignalId, BitVec>; 2],
) -> Counterexample {
    let values = aig.eval_all(env);
    let word = |bits: &BitVec| -> u128 {
        bits.iter().enumerate().fold(0u128, |acc, (i, &b)| {
            acc | (u128::from(aig.lit_value(&values, b)) << i)
        })
    };

    let mut diffs = Vec::new();
    let mut failing_frame = 1;
    'outer: for (j, frame_values) in prove_values_by_frame.iter().enumerate() {
        for (_, b1, b2) in frame_values {
            if word(b1) != word(b2) {
                failing_frame = j + 1;
                for (sig, c1, c2) in frame_values {
                    let w1 = word(c1);
                    let w2 = word(c2);
                    if w1 != w2 {
                        diffs.push(SignalValuePair {
                            signal: *sig,
                            name: d.signal_name(*sig).to_string(),
                            width: d.signal_width(*sig),
                            instance1: w1,
                            instance2: w2,
                        });
                    }
                }
                break 'outer;
            }
        }
    }

    let starting_state: Vec<SignalValuePair> = d
        .registers()
        .into_iter()
        .map(|r| SignalValuePair {
            signal: r,
            name: d.signal_name(r).to_string(),
            width: d.signal_width(r),
            instance1: word(&regs[0][&r]),
            instance2: word(&regs[1][&r]),
        })
        .collect();

    let input_frames: Vec<Vec<(String, u128)>> = inputs
        .iter()
        .map(|frame| {
            d.inputs()
                .into_iter()
                .map(|i| (d.signal_name(i).to_string(), word(&frame[&i])))
                .collect()
        })
        .collect();

    Counterexample {
        property: name.to_string(),
        frame: failing_frame,
        diffs,
        starting_state,
        inputs: input_frames,
    }
}

/// Allocates fresh AIG variables for one word.
fn fresh_word(aig: &mut Aig, width: u32) -> BitVec {
    (0..width).map(|_| aig.new_input()).collect()
}

/// Allocates fresh words for a list of signals.
fn fresh_words(
    aig: &mut Aig,
    d: &htd_rtl::Design,
    signals: &[SignalId],
) -> FxHashMap<SignalId, BitVec> {
    signals
        .iter()
        .map(|&s| (s, fresh_word(aig, d.signal_width(s))))
        .collect()
}
