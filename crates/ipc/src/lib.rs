//! # htd-ipc
//!
//! Interval Property Checking (IPC) over a 2-safety miter, the proof engine
//! behind the golden-free hardware-Trojan detection flow.
//!
//! The DATE'24 method reduces Trojan detection to a set of *single-cycle*
//! interval properties over two instances of the same (possibly infected)
//! design with a **symbolic starting state**: the solver may pick any pair of
//! starting states — which implicitly models any input history and therefore
//! any trigger sequence of arbitrary length — as long as the property's
//! antecedent (equality of the primary inputs and of the already-proven
//! fanout signals) is satisfied.  This crate provides:
//!
//! * [`aig`] — an And-Inverter Graph with structural hashing; identical cones
//!   of the two instances collapse onto shared nodes, so only logic that
//!   depends on un-shared state (exactly where a Trojan trigger or payload
//!   must live) reaches the SAT solver.
//! * [`bitblast`] — lowering of word-level RTL expressions to AIG bit vectors.
//! * [`IntervalProperty`] / [`PropertyChecker`] — the property representation
//!   and the checking engine (single-cycle properties plus the aggregate
//!   *trojan property* of Fig. 3 used to validate Theorem 1).
//! * [`Counterexample`] — concrete starting states, inputs and diverging
//!   signals for failed properties, ready for the diagnosis step in
//!   `htd-core`.
//!
//! # Example
//!
//! A 1-bit "Trojan" that flips an output once a (state-held) trigger is set is
//! caught by a failing property:
//!
//! ```
//! use htd_ipc::{IntervalProperty, PropertyChecker};
//! use htd_rtl::Design;
//!
//! # fn main() -> Result<(), htd_rtl::DesignError> {
//! let mut d = Design::new("tiny_trojan");
//! let input = d.add_input("in", 1)?;
//! let trigger = d.add_register("trigger", 1, 0)?;
//! let data = d.add_register("data", 1, 0)?;
//! // The trigger latches once the input was ever 1; the data register
//! // inverts its input while the trigger is active (the payload).
//! let trig_next = d.or(d.signal(trigger), d.signal(input))?;
//! d.set_register_next(trigger, trig_next)?;
//! let payload = d.xor(d.signal(input), d.signal(trigger))?;
//! d.set_register_next(data, payload)?;
//! d.add_output("out", d.signal(data))?;
//! let design = d.validated()?;
//!
//! // Init property: equal inputs at t must give equal `data` at t+1.
//! // It fails because the two instances may hold different trigger states.
//! let checker = PropertyChecker::new(&design);
//! let property = IntervalProperty::new("init_property", vec![], vec![data]);
//! let report = checker.check(&property);
//! assert!(!report.holds());
//! let cex = report.outcome.counterexample().expect("counterexample");
//! assert_eq!(cex.diff_names(), vec!["data"]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aig;
pub mod bitblast;
mod checker;
pub mod cnf;
pub mod fxhash;
mod incremental;
mod property;

pub use checker::{CheckerOptions, PropertyChecker, GC_DEAD_PCT_ENV_VAR, GC_MIN_CLAUSES_ENV_VAR};
pub use incremental::{solve_prepared, MiterSession, PreparedLevel, SessionStats, TaskOutcome};
pub use property::{
    CheckOutcome, CheckStats, Counterexample, IntervalProperty, PropertyReport, SignalValuePair,
};
