//! Tseitin encoding of AIG cones into CNF for the SAT solver.
//!
//! The property checker and the baseline detectors in `htd-baselines` share
//! this encoder: given an [`Aig`] and a set of root literals, it creates one
//! solver variable per AIG node in the transitive fan-in of the roots and
//! adds the three standard AND-gate clauses per node.
//!
//! Two entry points exist:
//!
//! * [`encode`] — the one-shot path: a fresh [`Solver`] per query (used by
//!   the legacy [`PropertyChecker`](crate::PropertyChecker) and the
//!   baselines).
//! * [`IncrementalEncoder`] — the session path: encodes cones *into an
//!   existing [`SatBackend`]*, skipping nodes that already have variables, so
//!   a growing AIG can be mirrored into one live solver across many queries.

use std::collections::{HashMap, HashSet};
use std::hash::BuildHasher;

use crate::fxhash::{FxHashMap, FxHashSet};

use htd_sat::{Lit, SatBackend, Solver, Var};

use crate::aig::{Aig, AigLit};

/// Tseitin-encodes the cone of the given roots into a fresh SAT solver.
///
/// Returns the solver and the node-to-variable map.  Constant roots are not
/// encoded — callers must handle [`AigLit::TRUE`] / [`AigLit::FALSE`] roots
/// themselves (e.g. a `FALSE` miter output means the property trivially
/// holds).
///
/// # Example
///
/// ```
/// use htd_ipc::aig::Aig;
/// use htd_ipc::cnf::{encode, sat_lit};
/// use htd_sat::SolveResult;
///
/// let mut aig = Aig::new();
/// let a = aig.new_input();
/// let b = aig.new_input();
/// let both = aig.and(a, b);
/// let (mut solver, vars) = encode(&aig, &[both]);
/// solver.add_clause([sat_lit(&vars, both)]);
/// assert_eq!(solver.solve(), SolveResult::Sat);
/// ```
#[must_use]
pub fn encode(aig: &Aig, roots: &[AigLit]) -> (Solver, FxHashMap<u32, Var>) {
    let mut solver = Solver::new();
    let mut node_vars: FxHashMap<u32, Var> = FxHashMap::default();
    let mut stack: Vec<u32> = roots
        .iter()
        .filter(|l| !l.is_const())
        .map(|l| l.node())
        .collect();
    let mut visited: HashSet<u32> = HashSet::new();
    // First pass: collect the cone.
    let mut cone: Vec<u32> = Vec::new();
    while let Some(node) = stack.pop() {
        if !visited.insert(node) {
            continue;
        }
        cone.push(node);
        if let Some((a, b)) = aig.and_inputs(node) {
            if !a.is_const() {
                stack.push(a.node());
            }
            if !b.is_const() {
                stack.push(b.node());
            }
        }
    }
    cone.sort_unstable();
    for &node in &cone {
        node_vars.insert(node, solver.new_var());
    }
    // Second pass: clauses for AND gates.
    for &node in &cone {
        if let Some((a, b)) = aig.and_inputs(node) {
            let x = Lit::pos(node_vars[&node]);
            let la = sat_lit(&node_vars, a);
            let lb = sat_lit(&node_vars, b);
            solver.add_clause([!x, la]);
            solver.add_clause([!x, lb]);
            solver.add_clause([!la, !lb, x]);
        }
    }
    (solver, node_vars)
}

/// Maps an AIG literal onto a SAT literal.
///
/// # Panics
///
/// Panics if the literal's node was not part of the cone passed to
/// [`encode`] (or is a constant).
#[must_use]
pub fn sat_lit<S: BuildHasher>(node_vars: &HashMap<u32, Var, S>, lit: AigLit) -> Lit {
    let var = node_vars[&lit.node()];
    Lit::new(var, lit.is_inverted())
}

/// Incremental Tseitin encoder: mirrors a growing [`Aig`] into one live
/// [`SatBackend`].
///
/// Each [`encode`](Self::encode) call extends the backend with clauses for
/// exactly the cone nodes that have not been encoded by an earlier call, so
/// the total encoding work over a whole detection flow is proportional to the
/// final AIG size — one bit-blast, not one per property.
///
/// # Example
///
/// ```
/// use htd_ipc::aig::Aig;
/// use htd_ipc::cnf::IncrementalEncoder;
/// use htd_sat::{SatBackend, SolveResult, Solver};
///
/// let mut aig = Aig::new();
/// let a = aig.new_input();
/// let b = aig.new_input();
/// let both = aig.and(a, b);
///
/// let mut backend = Solver::new();
/// let mut encoder = IncrementalEncoder::new();
/// let fresh = encoder.encode(&mut backend, &aig, &[both]);
/// assert_eq!(fresh, 3); // a, b, and the AND node
/// // Re-encoding the same cone is free.
/// assert_eq!(encoder.encode(&mut backend, &aig, &[both]), 0);
///
/// backend.add_clause([encoder.lit(both)]);
/// assert_eq!(backend.solve_under(&[]).unwrap(), SolveResult::Sat);
/// ```
#[derive(Clone, Debug, Default)]
pub struct IncrementalEncoder {
    node_vars: FxHashMap<u32, Var>,
    /// Per-root memo of [`cone_vars`](Self::cone_vars): AIG nodes are
    /// immutable once created, so the variable cone under a root never
    /// changes and queries sharing roots (the per-signal sub-properties of
    /// one fanout level, or re-verification rounds of one property) pay for
    /// each root's traversal once.
    cone_cache: FxHashMap<u32, Vec<Var>>,
}

impl IncrementalEncoder {
    /// Creates an encoder with no nodes encoded yet.
    #[must_use]
    pub fn new() -> Self {
        IncrementalEncoder::default()
    }

    /// Ensures every non-constant node in the cone of `roots` has a backend
    /// variable and its AND-gate clauses.  Returns the number of *newly*
    /// encoded nodes.
    pub fn encode(&mut self, backend: &mut dyn SatBackend, aig: &Aig, roots: &[AigLit]) -> usize {
        let mut stack: Vec<u32> = roots
            .iter()
            .filter(|l| !l.is_const() && !self.node_vars.contains_key(&l.node()))
            .map(|l| l.node())
            .collect();
        let mut fresh: Vec<u32> = Vec::new();
        let mut visited: HashSet<u32> = HashSet::new();
        while let Some(node) = stack.pop() {
            if self.node_vars.contains_key(&node) || !visited.insert(node) {
                continue;
            }
            fresh.push(node);
            if let Some((a, b)) = aig.and_inputs(node) {
                if !a.is_const() {
                    stack.push(a.node());
                }
                if !b.is_const() {
                    stack.push(b.node());
                }
            }
        }
        // Allocate in node order so the variable numbering is deterministic.
        fresh.sort_unstable();
        for &node in &fresh {
            let var = backend.new_var();
            self.node_vars.insert(node, var);
        }
        for &node in &fresh {
            if let Some((a, b)) = aig.and_inputs(node) {
                let x = Lit::pos(self.node_vars[&node]);
                let la = self.lit(a);
                let lb = self.lit(b);
                backend.add_clause(&[!x, la]);
                backend.add_clause(&[!x, lb]);
                backend.add_clause(&[!la, !lb, x]);
            }
        }
        fresh.len()
    }

    /// The backend variables of every node in the cone of `roots`
    /// (constants excluded).
    ///
    /// # Panics
    ///
    /// Panics if the cone has not been fully encoded by a prior
    /// [`encode`](Self::encode) call over (a superset of) the same roots.
    #[must_use]
    pub fn cone_vars(&mut self, aig: &Aig, roots: &[AigLit]) -> FxHashSet<Var> {
        let mut vars: FxHashSet<Var> = FxHashSet::default();
        for root in roots.iter().filter(|l| !l.is_const()) {
            let node = root.node();
            if let Some(cached) = self.cone_cache.get(&node) {
                vars.extend(cached.iter().copied());
                continue;
            }
            let mut cone: Vec<Var> = Vec::new();
            let mut visited: HashSet<u32> = HashSet::new();
            let mut stack: Vec<u32> = vec![node];
            while let Some(node) = stack.pop() {
                if !visited.insert(node) {
                    continue;
                }
                cone.push(self.node_vars[&node]);
                if let Some((a, b)) = aig.and_inputs(node) {
                    if !a.is_const() {
                        stack.push(a.node());
                    }
                    if !b.is_const() {
                        stack.push(b.node());
                    }
                }
            }
            vars.extend(cone.iter().copied());
            self.cone_cache.insert(node, cone);
        }
        vars
    }

    /// The SAT literal of an already-encoded AIG literal.
    ///
    /// # Panics
    ///
    /// Panics for constants and for nodes no [`encode`](Self::encode) call
    /// has covered.
    #[must_use]
    pub fn lit(&self, lit: AigLit) -> Lit {
        sat_lit(&self.node_vars, lit)
    }

    /// `true` if the literal's node has been encoded (constants are never
    /// encoded).
    #[must_use]
    pub fn is_encoded(&self, lit: AigLit) -> bool {
        !lit.is_const() && self.node_vars.contains_key(&lit.node())
    }

    /// Number of encoded nodes.
    #[must_use]
    pub fn num_encoded(&self) -> usize {
        self.node_vars.len()
    }

    /// The node-to-variable map (used for counterexample reconstruction).
    #[must_use]
    pub fn node_vars(&self) -> &FxHashMap<u32, Var> {
        &self.node_vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htd_sat::SolveResult;

    #[test]
    fn encodes_a_small_cone_and_solves_it() {
        let mut aig = Aig::new();
        let a = aig.new_input();
        let b = aig.new_input();
        let xor = aig.xor(a, b);
        let (mut solver, vars) = encode(&aig, &[xor]);
        solver.add_clause([sat_lit(&vars, xor)]);
        assert_eq!(solver.solve(), SolveResult::Sat);
        // The model must disagree on a and b.
        let va = solver.value(vars[&a.node()]).unwrap();
        let vb = solver.value(vars[&b.node()]).unwrap();
        assert_ne!(va, vb);
    }

    #[test]
    fn contradictory_and_is_folded_to_the_false_constant() {
        // The AIG simplifies `a AND !a` away, so there is nothing to encode;
        // callers must treat a constant-false root as trivially unsatisfiable.
        let mut aig = Aig::new();
        let a = aig.new_input();
        let both = aig.and(a, a.invert());
        assert_eq!(both, AigLit::FALSE);
    }

    #[test]
    fn unsatisfiable_requirements_are_reported() {
        let mut aig = Aig::new();
        let a = aig.new_input();
        let b = aig.new_input();
        let both = aig.and(a, b);
        let (mut solver, vars) = encode(&aig, &[both, a]);
        // Require the conjunction to hold while forcing `a` to be false.
        solver.add_clause([sat_lit(&vars, both)]);
        solver.add_clause([sat_lit(&vars, a.invert())]);
        assert_eq!(solver.solve(), SolveResult::Unsat);
    }
}
