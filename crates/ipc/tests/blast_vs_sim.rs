//! Cross-validation of the bit-blaster against the RTL simulator: lowering a
//! design's next-state functions with all leaves bound to constants must fold
//! to exactly the values the simulator computes.

use htd_ipc::aig::Aig;
use htd_ipc::bitblast::{bits_to_const, const_bits, BlastContext};
use htd_rtl::sim::Simulator;
use htd_rtl::{Design, SignalKind, ValidatedDesign};
use proptest::prelude::*;

/// A parameterised small design exercising a mix of word-level operators.
fn build_mixed_design(width: u32) -> ValidatedDesign {
    let mut d = Design::new("mixed");
    let a = d.add_input("a", width).unwrap();
    let b = d.add_input("b", width).unwrap();
    let acc = d.add_register("acc", width, 0).unwrap();
    let phase = d.add_register("phase", 1, 0).unwrap();

    let sum = d.add(d.signal(a), d.signal(acc)).unwrap();
    let diff = d.sub(d.signal(acc), d.signal(b)).unwrap();
    let pick = d.mux(d.signal(phase), sum, diff).unwrap();
    d.set_register_next(acc, pick).unwrap();

    let a_lt_b = d.cmp_ult(d.signal(a), d.signal(b)).unwrap();
    let toggled = d.xor(d.signal(phase), a_lt_b).unwrap();
    d.set_register_next(phase, toggled).unwrap();

    let parity = d.red_xor(d.signal(acc));
    let wide_parity = d.zero_ext(parity, width).unwrap();
    let out = d.or(d.signal(acc), wide_parity).unwrap();
    d.add_output("out", out).unwrap();
    d.validated().unwrap()
}

fn mask(width: u32, v: u64) -> u128 {
    u128::from(v) & ((1u128 << width) - 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn constant_folding_matches_the_simulator(
        width in prop_oneof![Just(4u32), Just(8), Just(13), Just(16)],
        a in any::<u64>(),
        b in any::<u64>(),
        acc in any::<u64>(),
        phase in any::<bool>(),
    ) {
        let design = build_mixed_design(width);
        let d = design.design();
        let a = mask(width, a);
        let b = mask(width, b);
        let acc_value = mask(width, acc);

        // Simulator: force the register state, drive the inputs, step once.
        let mut sim = Simulator::new(&design);
        sim.set_register(d.require("acc").unwrap(), acc_value).unwrap();
        sim.set_register(d.require("phase").unwrap(), u128::from(phase)).unwrap();
        sim.set_input_by_name("a", a).unwrap();
        sim.set_input_by_name("b", b).unwrap();
        let out_before = sim.peek_by_name("out").unwrap();
        sim.step().unwrap();

        // Bit-blaster: bind every leaf to the same constants and lower the
        // next-state functions; everything must constant-fold.
        let mut aig = Aig::new();
        let mut ctx = BlastContext::new();
        ctx.bind(d.require("a").unwrap(), const_bits(a, width));
        ctx.bind(d.require("b").unwrap(), const_bits(b, width));
        ctx.bind(d.require("acc").unwrap(), const_bits(acc_value, width));
        ctx.bind(d.require("phase").unwrap(), const_bits(u128::from(phase), 1));

        for (id, signal) in d.signals() {
            match signal.kind() {
                SignalKind::Register { .. } => {
                    let bits = ctx.expr(d, &mut aig, signal.driver().unwrap());
                    let folded = bits_to_const(&bits)
                        .expect("constant leaves must fold to a constant");
                    prop_assert_eq!(
                        folded,
                        sim.peek(id),
                        "next-state mismatch for {}",
                        signal.name()
                    );
                }
                SignalKind::Output => {
                    let bits = ctx.signal(d, &mut aig, id);
                    let folded = bits_to_const(&bits)
                        .expect("constant leaves must fold to a constant");
                    prop_assert_eq!(folded, out_before, "output mismatch");
                }
                _ => {}
            }
        }
        // Constant folding means no AND gates were ever created.
        prop_assert_eq!(aig.num_ands(), 0);
    }
}
