//! Per-job solve budgets, enforced inside the solving loop.
//!
//! A [`SolveBudget`] is the declarative limit (wall-clock deadline and/or a
//! conflict ceiling); a [`BudgetTracker`] is its runtime counterpart, shared
//! by every fork of a budgeted backend via `Arc`.  The tracker rides the
//! same seam as the interrupt hooks ([`Solver::set_interrupt`] and the
//! IPASIR `set_terminate` callback): the builtin solver polls
//! [`BudgetTracker::check`] at search entry, after every conflict and every
//! 1024 decisions, external process backends poll it while waiting on the
//! child, and IPASIR backends fold it into the terminate predicate.  On
//! exhaustion the tracker latches the cause and trips the job-level cancel
//! flag, so pipelined flows wind down promptly even on tasks that never
//! touch the solver again.
//!
//! Conflict ceilings are charged where the backend exposes a conflict
//! stream — the builtin [`Solver`](crate::Solver) (and therefore any IPASIR
//! shim built on it, through its own internal accounting); external DIMACS
//! processes cannot report conflicts incrementally, so for them only the
//! deadline is enforced mid-solve and the ceiling is checked between
//! queries.
//!
//! [`Solver::set_interrupt`]: crate::Solver::set_interrupt

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A declarative per-job solve budget.  The default has no limits: budgets
/// are strictly opt-in, so unbudgeted flows remain byte-identical.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveBudget {
    /// Wall-clock allowance for the whole job, measured from
    /// [`BudgetTracker::start`].
    pub deadline: Option<Duration>,
    /// Maximum number of solver conflicts charged across every query and
    /// fork of the job.
    pub conflict_ceiling: Option<u64>,
}

impl SolveBudget {
    /// `true` when neither limit is set (the tracker would never trip).
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.conflict_ceiling.is_none()
    }

    /// Component-wise minimum of two budgets (`None` = unlimited), used to
    /// clamp a per-request budget to a server-wide cap.
    #[must_use]
    pub fn min(self, other: SolveBudget) -> SolveBudget {
        fn tighter<T: Ord>(a: Option<T>, b: Option<T>) -> Option<T> {
            match (a, b) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, None) => a,
                (None, b) => b,
            }
        }
        SolveBudget {
            deadline: tighter(self.deadline, other.deadline),
            conflict_ceiling: tighter(self.conflict_ceiling, other.conflict_ceiling),
        }
    }
}

/// Latched exhaustion states (`state` field of [`BudgetTracker`]).
const STATE_OK: u8 = 0;
const STATE_DEADLINE: u8 = 1;
const STATE_CONFLICTS: u8 = 2;

/// The shared runtime state of one budgeted job.
///
/// Cloning a budgeted backend (forking for a parallel shard) clones the
/// `Arc`, so all forks charge the same conflict counter and observe the
/// same latch.  Exhaustion is one-way: once tripped, [`check`] is a cheap
/// latched load and the associated cancel flag stays set.
///
/// [`check`]: BudgetTracker::check
#[derive(Debug)]
pub struct BudgetTracker {
    deadline: Option<Instant>,
    ceiling: Option<u64>,
    conflicts: AtomicU64,
    state: AtomicU8,
    cancel: Arc<AtomicBool>,
}

impl BudgetTracker {
    /// Arms a tracker for `budget`, starting the deadline clock now.  The
    /// `cancel` flag is tripped on exhaustion so cooperative cancellation
    /// points (the flow's per-node checks, the pipelined executor's kill
    /// switch) stop the job even between solver queries.
    #[must_use]
    pub fn start(budget: SolveBudget, cancel: Arc<AtomicBool>) -> Self {
        BudgetTracker {
            deadline: budget.deadline.map(|d| Instant::now() + d),
            ceiling: budget.conflict_ceiling,
            conflicts: AtomicU64::new(0),
            state: AtomicU8::new(STATE_OK),
            cancel,
        }
    }

    /// Charges one conflict to the budget.  Called by the builtin solver
    /// right after its conflict counter increments.
    pub fn charge_conflict(&self) {
        self.conflicts.fetch_add(1, Ordering::Relaxed);
    }

    /// `true` when the budget is exhausted; latches the cause and trips the
    /// cancel flag the first time it fires.  Cheap enough to poll per
    /// conflict: a latched load, one counter compare, and an
    /// [`Instant::now`] only while a deadline is armed.
    pub fn check(&self) -> bool {
        if self.state.load(Ordering::Relaxed) != STATE_OK {
            return true;
        }
        if let Some(ceiling) = self.ceiling {
            if self.conflicts.load(Ordering::Relaxed) > ceiling {
                self.trip(STATE_CONFLICTS);
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.trip(STATE_DEADLINE);
                return true;
            }
        }
        false
    }

    fn trip(&self, cause: u8) {
        // First cause wins; later trips keep the original reason.
        let _ = self
            .state
            .compare_exchange(STATE_OK, cause, Ordering::SeqCst, Ordering::SeqCst);
        self.cancel.store(true, Ordering::SeqCst);
    }

    /// The latched exhaustion cause: `"deadline"`, `"conflicts"`, or `None`
    /// while the budget still has headroom.
    #[must_use]
    pub fn exhausted(&self) -> Option<&'static str> {
        match self.state.load(Ordering::SeqCst) {
            STATE_DEADLINE => Some("deadline"),
            STATE_CONFLICTS => Some("conflicts"),
            _ => None,
        }
    }

    /// Total conflicts charged so far, across every fork.
    #[must_use]
    pub fn conflicts(&self) -> u64 {
        self.conflicts.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flag() -> Arc<AtomicBool> {
        Arc::new(AtomicBool::new(false))
    }

    #[test]
    fn an_unlimited_budget_never_trips() {
        let budget = SolveBudget::default();
        assert!(budget.is_unlimited());
        let cancel = flag();
        let tracker = BudgetTracker::start(budget, Arc::clone(&cancel));
        for _ in 0..10 {
            tracker.charge_conflict();
            assert!(!tracker.check());
        }
        assert_eq!(tracker.exhausted(), None);
        assert!(!cancel.load(Ordering::SeqCst));
        assert_eq!(tracker.conflicts(), 10);
    }

    #[test]
    fn a_conflict_ceiling_latches_and_trips_the_cancel_flag() {
        let budget = SolveBudget {
            conflict_ceiling: Some(2),
            ..SolveBudget::default()
        };
        let cancel = flag();
        let tracker = BudgetTracker::start(budget, Arc::clone(&cancel));
        tracker.charge_conflict();
        tracker.charge_conflict();
        assert!(!tracker.check(), "at the ceiling is still within budget");
        tracker.charge_conflict();
        assert!(tracker.check());
        assert_eq!(tracker.exhausted(), Some("conflicts"));
        assert!(cancel.load(Ordering::SeqCst));
        // Latched: stays exhausted without re-deriving the cause.
        assert!(tracker.check());
        assert_eq!(tracker.exhausted(), Some("conflicts"));
    }

    #[test]
    fn an_elapsed_deadline_trips_as_deadline() {
        let budget = SolveBudget {
            deadline: Some(Duration::ZERO),
            conflict_ceiling: Some(1_000_000),
        };
        let cancel = flag();
        let tracker = BudgetTracker::start(budget, Arc::clone(&cancel));
        assert!(tracker.check());
        assert_eq!(tracker.exhausted(), Some("deadline"));
        assert!(cancel.load(Ordering::SeqCst));
    }

    #[test]
    fn min_takes_the_tighter_component() {
        let a = SolveBudget {
            deadline: Some(Duration::from_secs(5)),
            conflict_ceiling: None,
        };
        let b = SolveBudget {
            deadline: Some(Duration::from_secs(2)),
            conflict_ceiling: Some(100),
        };
        let clamped = a.min(b);
        assert_eq!(clamped.deadline, Some(Duration::from_secs(2)));
        assert_eq!(clamped.conflict_ceiling, Some(100));
        assert_eq!(
            SolveBudget::default().min(SolveBudget::default()),
            SolveBudget::default()
        );
    }
}
