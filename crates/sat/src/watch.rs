//! Flat arena storage for the two-watched-literal occurrence lists.
//!
//! The solver used to keep one heap-allocated `Vec<Watcher>` per literal
//! (`watches: Vec<Vec<Watcher>>`), which made `Solver::clone` — the fork
//! primitive of the parallel detection flow — pay one allocation *per
//! literal*.  [`WatcherArena`] is the same flattening move [`crate::arena`]
//! made for clauses: every watcher lives in one `Vec<Watcher>` data buffer,
//! and each literal owns a contiguous `(start, len, cap)` block of it.
//! Cloning the arena is two flat memcpys, and its byte cost is O(1) length
//! arithmetic.
//!
//! # Growth and compaction
//!
//! A literal's block grows by amortised doubling: when a push finds the
//! block full, the block relocates to the end of the data buffer with twice
//! the capacity and the old slots become a *hole*.  Holes are never reused
//! by other literals — they are reclaimed in bulk by [`sweep`], which the
//! solver folds into `collect_garbage`'s existing relocation pass: one
//! filter over every block (dropping watchers of collected clauses and
//! patching survivors through the relocation map) followed by an in-place
//! slide that packs the surviving blocks back-to-back, trimming each
//! capacity to its length.  Between sweeps the buffer carries the holes and
//! the doubling slack; both are deterministic functions of the operation
//! sequence, so two solvers that executed the same operations report the
//! same [`bytes`] — the property `snapshot_bytes` needs to stay
//! schedule-invariant in flow reports.
//!
//! [`sweep`]: WatcherArena::sweep
//! [`bytes`]: WatcherArena::bytes

use crate::arena::ClauseRef;
use crate::literal::Lit;

/// One entry of a literal's watch list: the watched clause plus a cached
/// "blocker" literal whose truth proves the clause satisfied without
/// touching the arena.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Watcher {
    pub(crate) clause: ClauseRef,
    pub(crate) blocker: Lit,
}

/// Padding written into slots not (yet) holding a live watcher; never read
/// through the range table.
const PAD: Watcher = Watcher {
    clause: ClauseRef(u32::MAX),
    blocker: Lit::from_code(u32::MAX),
};

/// A literal's contiguous block in the data buffer: `len` live watchers at
/// `start`, inside a reserved capacity of `cap` slots.
#[derive(Clone, Copy, Debug, Default)]
struct WatchRange {
    start: u32,
    len: u32,
    cap: u32,
}

/// All watcher lists of a solver in one flat buffer, indexed by literal
/// code.  See the [module docs](self) for the layout and growth policy.
#[derive(Clone, Debug, Default)]
pub(crate) struct WatcherArena {
    data: Vec<Watcher>,
    ranges: Vec<WatchRange>,
    /// Slots orphaned by block relocations, pending the next [`sweep`].
    ///
    /// [`sweep`]: Self::sweep
    holes: usize,
}

impl WatcherArena {
    /// Registers one more literal (an empty block); called twice per fresh
    /// variable.  Allocates no watcher storage.
    pub(crate) fn add_literal(&mut self) {
        self.ranges.push(WatchRange::default());
    }

    /// Number of live watchers in `code`'s list.
    pub(crate) fn len(&self, code: u32) -> usize {
        self.ranges[code as usize].len as usize
    }

    /// The `k`-th watcher of `code`'s list.
    pub(crate) fn get(&self, code: u32, k: usize) -> Watcher {
        let r = self.ranges[code as usize];
        debug_assert!(k < r.len as usize);
        self.data[r.start as usize + k]
    }

    /// Overwrites the `k`-th watcher of `code`'s list (the write cursor of
    /// `propagate`'s in-range compaction).
    pub(crate) fn set(&mut self, code: u32, k: usize, w: Watcher) {
        let r = self.ranges[code as usize];
        debug_assert!(k < r.len as usize);
        self.data[r.start as usize + k] = w;
    }

    /// Shrinks `code`'s list to `len` watchers (never grows).
    pub(crate) fn truncate(&mut self, code: u32, len: usize) {
        let r = &mut self.ranges[code as usize];
        debug_assert!(len as u32 <= r.len);
        r.len = len as u32;
    }

    /// Appends a watcher to `code`'s list, relocating the block with doubled
    /// capacity when it is full.  Relocation only ever moves *this*
    /// literal's block, so callers iterating a different literal's range
    /// stay valid.
    pub(crate) fn push(&mut self, code: u32, w: Watcher) {
        if self.ranges[code as usize].len == self.ranges[code as usize].cap {
            self.grow(code);
        }
        let r = self.ranges[code as usize];
        self.data[(r.start + r.len) as usize] = w;
        self.ranges[code as usize].len += 1;
    }

    fn grow(&mut self, code: u32) {
        let r = self.ranges[code as usize];
        let new_cap = (r.cap * 2).max(4);
        let new_start = self.data.len() as u32;
        // Move the live prefix to the end of the buffer, then pad out to the
        // new capacity; the old block becomes a hole until the next sweep.
        self.data
            .extend_from_within(r.start as usize..(r.start + r.len) as usize);
        self.data.resize(new_start as usize + new_cap as usize, PAD);
        self.holes += r.cap as usize;
        self.ranges[code as usize] = WatchRange {
            start: new_start,
            len: r.len,
            cap: new_cap,
        };
    }

    /// Removes the `k`-th watcher of `code`'s list by swapping the last live
    /// watcher into its slot — O(1), order not preserved (watch-list order
    /// carries no semantics; the resulting order is still a deterministic
    /// function of the operation sequence).
    pub(crate) fn swap_remove(&mut self, code: u32, k: usize) {
        let r = self.ranges[code as usize];
        debug_assert!(k < r.len as usize);
        let last = (r.start + r.len - 1) as usize;
        self.data.swap(r.start as usize + k, last);
        self.ranges[code as usize].len -= 1;
    }

    /// Removes the watcher for clause `cr` from `code`'s list (swap-remove;
    /// a live clause has exactly one watcher per watched literal).
    pub(crate) fn detach(&mut self, code: u32, cr: ClauseRef) {
        for k in 0..self.len(code) {
            if self.get(code, k).clause == cr {
                self.swap_remove(code, k);
                return;
            }
        }
        debug_assert!(false, "detach: clause {cr:?} not watched under {code}");
    }

    /// Filters every list through `keep` (which may patch the watcher in
    /// place — the GC relocation map does) and then compacts the buffer:
    /// surviving blocks slide down over holes and slack, each capacity is
    /// trimmed to its length, and the buffer is truncated.  Folded into
    /// `Solver::collect_garbage`'s relocation sweep so watcher memory is
    /// reclaimed on the same cadence as arena words.
    pub(crate) fn sweep(&mut self, mut keep: impl FnMut(&mut Watcher) -> bool) {
        for code in 0..self.ranges.len() {
            let r = self.ranges[code];
            let mut write = 0u32;
            for k in 0..r.len {
                let mut w = self.data[(r.start + k) as usize];
                if keep(&mut w) {
                    self.data[(r.start + write) as usize] = w;
                    write += 1;
                }
            }
            self.ranges[code].len = write;
        }
        // Blocks were allocated at unique, disjoint offsets; sliding them in
        // ascending start order never overlaps a not-yet-moved block.
        let mut blocks: Vec<(u32, u32)> = self
            .ranges
            .iter()
            .enumerate()
            .filter(|(_, r)| r.cap > 0)
            .map(|(code, r)| (r.start, code as u32))
            .collect();
        blocks.sort_unstable();
        let mut write = 0usize;
        for (start, code) in blocks {
            let len = self.ranges[code as usize].len as usize;
            let start = start as usize;
            if len > 0 && write != start {
                self.data.copy_within(start..start + len, write);
            }
            self.ranges[code as usize] = WatchRange {
                start: write as u32,
                len: len as u32,
                cap: len as u32,
            };
            write += len;
        }
        self.data.truncate(write);
        self.holes = 0;
    }

    /// The byte cost of cloning this arena — O(1) length arithmetic over the
    /// data buffer (live watchers, doubling slack and pending holes alike)
    /// and the per-literal range table.
    pub(crate) fn bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<Watcher>()
            + self.ranges.len() * std::mem::size_of::<WatchRange>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(clause: u32, blocker: u32) -> Watcher {
        Watcher {
            clause: ClauseRef(clause),
            blocker: Lit::from_code(blocker),
        }
    }

    fn list(arena: &WatcherArena, code: u32) -> Vec<u32> {
        (0..arena.len(code))
            .map(|k| arena.get(code, k).clause.0)
            .collect()
    }

    #[test]
    fn push_grows_blocks_by_doubling_and_leaves_holes() {
        let mut a = WatcherArena::default();
        a.add_literal();
        a.add_literal();
        for i in 0..5 {
            a.push(0, w(i, 0));
        }
        a.push(1, w(100, 1));
        assert_eq!(list(&a, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(list(&a, 1), vec![100]);
        // Block 0 grew 0 -> 4 -> 8 (one hole of 4 slots), block 1 is cap 4.
        assert_eq!(a.holes, 4);
        assert_eq!(a.data.len(), 4 + 8 + 4);
    }

    #[test]
    fn swap_remove_and_detach_drop_entries_in_place() {
        let mut a = WatcherArena::default();
        a.add_literal();
        for i in 0..4 {
            a.push(0, w(i, 0));
        }
        a.swap_remove(0, 1);
        assert_eq!(list(&a, 0), vec![0, 3, 2]);
        a.detach(0, ClauseRef(3));
        assert_eq!(list(&a, 0), vec![0, 2]);
    }

    #[test]
    fn sweep_filters_patches_and_packs_the_buffer() {
        let mut a = WatcherArena::default();
        for _ in 0..3 {
            a.add_literal();
        }
        for i in 0..5 {
            a.push(0, w(i, 0));
        }
        for i in 10..12 {
            a.push(2, w(i, 2));
        }
        assert!(a.holes > 0);
        // Drop odd clauses, shift the survivors down by one.
        a.sweep(|watcher| {
            if watcher.clause.0 % 2 == 1 {
                return false;
            }
            watcher.clause = ClauseRef(watcher.clause.0 - (watcher.clause.0 > 0) as u32);
            true
        });
        assert_eq!(list(&a, 0), vec![0, 1, 3]);
        assert_eq!(list(&a, 1), Vec::<u32>::new());
        assert_eq!(list(&a, 2), vec![9]);
        // Packed: no holes, no slack, buffer trimmed to the live count.
        assert_eq!(a.holes, 0);
        assert_eq!(a.data.len(), 4);
        assert_eq!(
            a.bytes(),
            (4 * std::mem::size_of::<Watcher>() + 3 * std::mem::size_of::<WatchRange>()) as u64
        );
    }

    #[test]
    fn bytes_is_a_pure_function_of_the_operation_sequence() {
        let build = || {
            let mut a = WatcherArena::default();
            for _ in 0..4 {
                a.add_literal();
            }
            for i in 0..7 {
                a.push(i % 3, w(i, 0));
            }
            a.swap_remove(0, 0);
            a
        };
        assert_eq!(build().bytes(), build().bytes());
        // Removing an entry does not shrink the buffer; only sweep does.
        let mut a = build();
        let before = a.bytes();
        a.swap_remove(1, 0);
        assert_eq!(a.bytes(), before);
        a.sweep(|_| true);
        assert!(a.bytes() < before);
    }
}
