//! Pluggable SAT backends for the property checker.
//!
//! The detection flow in `htd-core` issues a *sequence* of closely related
//! queries against one growing CNF.  [`SatBackend`] is the minimal incremental
//! interface that sequence needs: allocate variables, add clauses, solve under
//! assumptions, read the model.  Two implementations ship with the toolkit:
//!
//! * the bundled CDCL [`Solver`] (zero-copy, learnt clauses persist across
//!   queries), and
//! * [`DimacsProcessBackend`], which shells out to any solver binary speaking
//!   the DIMACS CNF format and the SAT-competition output convention
//!   (`s SATISFIABLE` / `s UNSATISFIABLE` plus `v` model lines, or exit codes
//!   10/20).  It keeps the ablation benchmarks honest: the flow can be timed
//!   against a reference solver without touching the encoder.
//!
//! # Example
//!
//! ```
//! use htd_sat::{Lit, SatBackend, SolveResult, Solver};
//!
//! let mut backend: Box<dyn SatBackend> = Box::new(Solver::new());
//! let a = backend.new_var();
//! let b = backend.new_var();
//! backend.add_clause(&[Lit::pos(a), Lit::pos(b)]);
//! let result = backend.solve_under(&[Lit::neg(a)]).unwrap();
//! assert_eq!(result, SolveResult::Sat);
//! assert_eq!(backend.model_value(b), Some(true));
//! ```

use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use crate::budget::BudgetTracker;
use crate::literal::{Lit, Var};
use crate::solver::{SolveResult, Solver, SolverStats};

/// A failure inside a SAT backend (today: only process backends can fail —
/// the bundled solver is total).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BackendError {
    /// Human-readable description of the failure.
    pub message: String,
}

impl BackendError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        BackendError {
            message: message.into(),
        }
    }
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SAT backend error: {}", self.message)
    }
}

impl Error for BackendError {}

/// Aggregate counters for a backend, rendered into the per-property
/// statistics of the flow.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BackendStats {
    /// Variables allocated so far.
    pub vars: usize,
    /// Clauses currently held (for the bundled solver: non-deleted clauses).
    pub clauses: usize,
    /// Satisfiability queries answered.
    pub queries: u64,
    /// Detailed work counters.  External backends cannot observe a foreign
    /// solver's internals (decisions, conflicts, …stay zero), but they do
    /// report what the interface makes visible: `solves` mirrors `queries`,
    /// and `fork_count` / `bytes_cloned` record the snapshot cost of every
    /// [`fork`](SatBackend::fork) — so flow reports and bench trajectories
    /// keep honest cost accounting under any backend.
    pub solver: SolverStats,
}

/// An incremental SAT solving interface.
///
/// Implementations must keep added clauses across queries and treat
/// `assumptions` as per-query unit constraints that do not persist.
///
/// Backends are `Send + Sync` so one master backend can be shared read-only
/// across worker threads that [`fork`](Self::fork) per-query solvers off it —
/// the sharding model of the parallel property scheduler.
pub trait SatBackend: Send + Sync {
    /// A short, stable name for reports (`"builtin-cdcl"`, `"dimacs:..."`).
    fn name(&self) -> String;

    /// Allocates a fresh variable.
    fn new_var(&mut self) -> Var;

    /// Adds a clause over already-allocated variables.  Returns `false` if
    /// the formula became trivially unsatisfiable at the top level.
    fn add_clause(&mut self, lits: &[Lit]) -> bool;

    /// Solves the current formula under the given assumption literals.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError`] if the backend infrastructure fails (e.g. the
    /// external solver binary cannot be spawned); never for a mere UNSAT
    /// answer.
    fn solve_under(&mut self, assumptions: &[Lit]) -> Result<SolveResult, BackendError>;

    /// The value of `var` in the most recent satisfying assignment, `None`
    /// if the last query was not SAT or did not mention the variable.
    fn model_value(&self, var: Var) -> Option<bool>;

    /// Work counters accumulated so far.
    fn stats(&self) -> BackendStats;

    /// Hint that the next query targets a *different* objective than the
    /// previous one: backends may reset search heuristics tuned to the old
    /// query (keeping the clause database).  Default: no-op.
    fn begin_new_query(&mut self) {}

    /// Marks a variable as eligible (default) or ineligible for branching.
    ///
    /// Incremental clients mask variables belonging to retired queries so
    /// the search stays inside the live cone; see
    /// [`Solver::set_decision_var`] for the soundness contract.  Backends
    /// without decision-variable support (e.g. process backends that re-read
    /// the whole CNF per query) ignore the hint, which is always sound.
    fn set_decision_var(&mut self, _var: Var, _eligible: bool) {}

    /// Marks *every* variable ineligible for branching (the bulk counterpart
    /// of [`set_decision_var`](Self::set_decision_var)); forked per-query
    /// solvers call this and then re-enable exactly the query's cone.
    /// Backends without decision-variable support ignore it.
    fn mask_all_decisions(&mut self) {}

    /// `true` if [`fork`](Self::fork) returns `Some` — checked up front so
    /// schedulers can pick an execution strategy without paying for a probe
    /// clone.
    fn can_fork(&self) -> bool {
        false
    }

    /// Creates an independent snapshot of this backend: same variables, same
    /// clause database, no shared mutable state, ready to solve a different
    /// query concurrently.  Returns `None` if the backend cannot fork (the
    /// parallel scheduler then falls back to sequential solving on the
    /// master).  Work counters carry over — plus one recorded fork of
    /// [`snapshot_bytes`](Self::snapshot_bytes) bytes on the child, so the
    /// O(bytes) cost model is observable; callers attribute per-fork work by
    /// differencing against the snapshot's [`stats`](Self::stats).
    fn fork(&self) -> Option<Box<dyn SatBackend>> {
        None
    }

    /// The byte cost of one [`fork`](Self::fork): how much a snapshot clone
    /// copies.  For the bundled solver this is the arena-backed cost model
    /// ([`Solver::snapshot_bytes`]) — proportional to the live database
    /// size, never to the clause count.  Backends that cannot fork return 0.
    fn snapshot_bytes(&self) -> u64 {
        0
    }

    /// The slice of [`snapshot_bytes`](Self::snapshot_bytes) spent copying
    /// the watcher store.  Only meaningful for backends whose watcher lists
    /// are observable — the bundled solver's flat watcher arena
    /// ([`Solver::watcher_bytes`]); external libraries and subprocess
    /// backends return 0.
    fn watcher_bytes(&self) -> u64 {
        0
    }

    /// Opportunistically compacts the clause database, dropping clauses that
    /// can no longer participate in any future query (e.g. miter clauses
    /// behind retired activation literals).  Returns the number of clauses
    /// collected; backends without garbage collection return 0.
    fn collect_garbage(&mut self) -> u64 {
        0
    }

    /// Configures the garbage-collection thresholds consulted by
    /// [`collect_garbage`](Self::collect_garbage): compaction runs once at
    /// least `dead_fraction` of a database of at least `min_clauses` clauses
    /// is dead.  Forked snapshots inherit the thresholds.  Backends without
    /// garbage collection ignore the hint.
    fn set_gc_thresholds(&mut self, _dead_fraction: f64, _min_clauses: usize) {}

    /// Installs a predicate polled during solving; when it returns `true`
    /// the query is abandoned with [`SolveResult::Interrupted`].  Parallel
    /// schedulers cancel speculative queries this way.  Backends that cannot
    /// interrupt ignore it, which only costs wasted work, never wrong
    /// answers.
    fn set_interrupt(&mut self, _check: Arc<dyn Fn() -> bool + Send + Sync>) {}

    /// Attaches (or detaches, with `None`) a shared resource budget
    /// ([`BudgetTracker`]).  Budgeted backends abandon queries with
    /// [`SolveResult::Interrupted`] once the tracker reports exhaustion and,
    /// where their interface exposes a conflict stream, charge conflicts to
    /// it.  [`fork`](Self::fork) snapshots share the parent's tracker.
    /// Backends without budget support ignore it (the flow-level deadline is
    /// then only enforced between solver queries).
    fn set_budget(&mut self, _budget: Option<Arc<BudgetTracker>>) {}
}

impl SatBackend for Solver {
    fn name(&self) -> String {
        "builtin-cdcl".to_string()
    }

    fn new_var(&mut self) -> Var {
        Solver::new_var(self)
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        Solver::add_clause(self, lits.iter().copied())
    }

    fn solve_under(&mut self, assumptions: &[Lit]) -> Result<SolveResult, BackendError> {
        Ok(self.solve_with_assumptions(assumptions))
    }

    fn model_value(&self, var: Var) -> Option<bool> {
        self.value(var)
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            vars: self.num_vars(),
            clauses: self.num_clauses(),
            queries: Solver::stats(self).solves,
            solver: Solver::stats(self),
        }
    }

    fn begin_new_query(&mut self) {
        self.reset_decision_heuristics();
    }

    fn set_decision_var(&mut self, var: Var, eligible: bool) {
        Solver::set_decision_var(self, var, eligible);
    }

    fn mask_all_decisions(&mut self) {
        Solver::mask_all_decisions(self);
    }

    fn can_fork(&self) -> bool {
        true
    }

    fn fork(&self) -> Option<Box<dyn SatBackend>> {
        // With both stores arena-backed the clone is a fixed number of
        // flat-buffer memcpys — no allocation scales with the clause or
        // variable count; the child records the fork so the cost is
        // visible in its counters.
        let bytes = self.snapshot_bytes();
        let watcher_bytes = self.watcher_bytes();
        let mut child = self.clone();
        child.record_fork(bytes, watcher_bytes);
        Some(Box::new(child))
    }

    fn snapshot_bytes(&self) -> u64 {
        Solver::snapshot_bytes(self)
    }

    fn watcher_bytes(&self) -> u64 {
        Solver::watcher_bytes(self)
    }

    fn collect_garbage(&mut self) -> u64 {
        let (dead_fraction, _) = self.gc_thresholds();
        self.collect_garbage_if(dead_fraction)
    }

    fn set_gc_thresholds(&mut self, dead_fraction: f64, min_clauses: usize) {
        Solver::set_gc_thresholds(self, dead_fraction, min_clauses);
    }

    fn set_interrupt(&mut self, check: Arc<dyn Fn() -> bool + Send + Sync>) {
        Solver::set_interrupt(self, check);
    }

    fn set_budget(&mut self, budget: Option<Arc<BudgetTracker>>) {
        Solver::set_budget(self, budget);
    }
}

/// A backend that shells out to an external DIMACS-speaking solver binary for
/// every query.
///
/// The clause database is kept in memory; each [`solve_under`] call writes
/// the full formula (with the assumptions appended as unit clauses) to a
/// temporary file, runs the binary on it, and interprets the result:
///
/// * exit status 10, or a `s SATISFIABLE` line, means SAT (the model is read
///   from `v` lines if present);
/// * exit status 20, or a `s UNSATISFIABLE` line, means UNSAT.
///
/// This convention covers the SAT-competition solvers (CaDiCaL, Kissat, …)
/// as well as the bundled `htd sat` subcommand, which exists so the process
/// path can be exercised without any third-party software installed.  A
/// solver that answers SAT *without* printing a model (e.g. MiniSat's
/// file-output mode) is rejected with a [`BackendError`] rather than
/// silently treated as an all-false model — counterexample reconstruction
/// needs real model values.
///
/// Rather than re-serialising the whole formula per query, the backend keeps
/// an **incremental CNF file**: a fixed-width problem line followed by every
/// clause serialized exactly once.  Each query appends only the clauses
/// added since the previous query plus the assumption units, rewrites the
/// (padded, fixed-offset) problem line in place, runs the solver, and
/// truncates the assumption units away again — so the serialisation work per
/// query is proportional to what *changed*, which keeps external solvers
/// usable on big flows.
///
/// [`solve_under`]: SatBackend::solve_under
#[derive(Debug)]
pub struct DimacsProcessBackend {
    solver_path: PathBuf,
    extra_args: Vec<String>,
    /// Distinguishes concurrently-live backends within one process so their
    /// temporary CNF files cannot collide.
    instance: u64,
    num_vars: u32,
    clauses: Vec<Vec<Lit>>,
    model: Vec<Option<bool>>,
    queries: u64,
    /// The visible fork cost (`fork_count` / `bytes_cloned`); `solves` is
    /// synthesized from `queries` in [`stats`](SatBackend::stats).
    /// Counters carry over to forks, exactly like the bundled solver's, so
    /// delta-based per-task accounting works unchanged.
    stats: SolverStats,
    known_unsat: bool,
    /// The incremental CNF file, created lazily on the first query and
    /// removed when the backend drops.
    cache: Option<CnfCache>,
    /// Interrupt predicate polled while the child process runs.
    interrupt: ProcessInterrupt,
    /// Shared resource budget, polled alongside the interrupt predicate.
    /// The external solver's conflicts are invisible from outside, so only
    /// the deadline is enforced mid-solve; the ceiling is still honoured at
    /// query boundaries (other shards of the same job charge it).
    budget: Option<Arc<BudgetTracker>>,
}

/// Debug-opaque holder for the process backend's interrupt predicate
/// (mirrors the solver's private `InterruptCheck`).
#[derive(Clone, Default)]
struct ProcessInterrupt(Option<Arc<dyn Fn() -> bool + Send + Sync>>);

impl fmt::Debug for ProcessInterrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() {
            "ProcessInterrupt(set)"
        } else {
            "ProcessInterrupt(unset)"
        })
    }
}

/// How often the process backend polls the child (and the interrupt/budget
/// seam) while a query runs.  Coarse enough to stay invisible next to a SAT
/// query, fine enough that budget deadlines land within ~a hundredth of a
/// second.
const PROCESS_POLL_INTERVAL: Duration = Duration::from_millis(10);

/// The on-disk incremental CNF document of a [`DimacsProcessBackend`].
#[derive(Debug)]
struct CnfCache {
    path: PathBuf,
    file: File,
    /// Clauses already serialized into the base region (never re-written).
    clauses_written: usize,
    /// Byte length of the base region: the problem line plus every
    /// serialized clause.  Assumption units live past this offset and are
    /// truncated after each query.
    base_len: u64,
}

/// Fixed width of the two counts in the problem line, so the line can be
/// rewritten in place without moving the clauses behind it.  DIMACS readers
/// (including [`parse_dimacs`](crate::parse_dimacs), which backs `htd sat`)
/// skip the `p` line or tolerate padded counts.
const HEADER_FIELD_WIDTH: usize = 10;

fn render_header(num_vars: u32, num_clauses: usize) -> String {
    format!("p cnf {num_vars:>HEADER_FIELD_WIDTH$} {num_clauses:>HEADER_FIELD_WIDTH$}\n")
}

fn render_clause(lits: &[Lit]) -> String {
    let mut line = String::with_capacity(lits.len() * 4 + 2);
    for lit in lits {
        line.push_str(&lit.to_string());
        line.push(' ');
    }
    line.push_str("0\n");
    line
}

/// Monotonic id source for [`DimacsProcessBackend::instance`].
static NEXT_BACKEND_INSTANCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// The byte cost of cloning an in-memory clause log — the
/// [`snapshot_bytes`](SatBackend::snapshot_bytes) model shared by the
/// external backends ([`DimacsProcessBackend`],
/// [`IpasirBackend`](crate::IpasirBackend)), whose forks copy or replay one
/// `Vec<Lit>` per clause.
pub(crate) fn clause_log_bytes(clauses: &[Vec<Lit>]) -> u64 {
    clauses
        .iter()
        .map(|c| (c.len() * std::mem::size_of::<Lit>()) as u64)
        .sum()
}

impl DimacsProcessBackend {
    /// Creates a backend running the given solver binary.
    #[must_use]
    pub fn new(solver_path: impl Into<PathBuf>) -> Self {
        DimacsProcessBackend {
            solver_path: solver_path.into(),
            extra_args: Vec::new(),
            // htd-lint: allow(determinism): unique temp-file tag; only uniqueness matters, not order
            instance: NEXT_BACKEND_INSTANCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            num_vars: 0,
            clauses: Vec::new(),
            model: Vec::new(),
            queries: 0,
            stats: SolverStats::default(),
            known_unsat: false,
            cache: None,
            interrupt: ProcessInterrupt::default(),
            budget: None,
        }
    }

    /// `true` when the budget or the installed interrupt predicate says the
    /// current query should be abandoned.
    fn should_abandon(&self) -> bool {
        self.budget.as_ref().is_some_and(|budget| budget.check())
            || self.interrupt.0.as_ref().is_some_and(|check| check())
    }

    /// Runs the external solver on `path`, polling the interrupt/budget seam
    /// while the child executes; a tripped check kills the child and answers
    /// [`SolveResult::Interrupted`].  Stdout goes to a sibling file rather
    /// than a pipe so a large `v`-line model can never deadlock against a
    /// poll loop that is not draining it.
    fn run_solver(&mut self, path: &Path) -> Result<SolveResult, BackendError> {
        let out_path = path.with_extension("out");
        let spawn_err = |e: std::io::Error| {
            BackendError::new(format!(
                "spawning solver `{}`: {e}",
                self.solver_path.display()
            ))
        };
        let stdout_file = File::create(&out_path).map_err(spawn_err)?;
        let child = Command::new(&self.solver_path)
            .args(&self.extra_args)
            .arg(path)
            .stdout(Stdio::from(stdout_file))
            .stderr(Stdio::null())
            .spawn();
        let mut child = match child {
            Ok(child) => child,
            Err(e) => {
                let _ = std::fs::remove_file(&out_path);
                return Err(spawn_err(e));
            }
        };
        let status = loop {
            match child.try_wait() {
                Ok(Some(status)) => break status,
                Ok(None) => {}
                Err(e) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    let _ = std::fs::remove_file(&out_path);
                    return Err(spawn_err(e));
                }
            }
            if self.should_abandon() {
                let _ = child.kill();
                let _ = child.wait();
                let _ = std::fs::remove_file(&out_path);
                return Ok(SolveResult::Interrupted);
            }
            // htd-lint: allow(determinism): poll cadence while waiting on the child solver; the answer bytes are unaffected
            std::thread::sleep(PROCESS_POLL_INTERVAL);
        };
        let stdout = std::fs::read_to_string(&out_path).map_err(|e| {
            BackendError::new(format!(
                "reading solver output `{}`: {e}",
                out_path.display()
            ))
        })?;
        let _ = std::fs::remove_file(&out_path);
        self.parse_answer(&stdout, status.code())
    }

    /// Adds fixed arguments passed before the CNF file path (e.g. a solver's
    /// quiet flag).
    #[must_use]
    pub fn with_args<I, S>(mut self, args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.extra_args = args.into_iter().map(Into::into).collect();
        self
    }

    /// The solver binary this backend runs.
    #[must_use]
    pub fn solver_path(&self) -> &Path {
        &self.solver_path
    }

    /// Brings the incremental CNF file up to date for one query: appends the
    /// clauses added since the last query and the assumption units, then
    /// rewrites the fixed-width problem line in place.  Returns the file's
    /// path; the caller truncates the assumptions away after the solver ran
    /// (see [`truncate_assumptions`](Self::truncate_assumptions)).
    fn write_query(&mut self, assumptions: &[Lit]) -> Result<PathBuf, BackendError> {
        let io_err = |path: &Path, e: std::io::Error| {
            BackendError::new(format!("writing {}: {e}", path.display()))
        };
        if self.cache.is_none() {
            let path = std::env::temp_dir().join(format!(
                "htd-dimacs-{}-{}.cnf",
                std::process::id(),
                self.instance
            ));
            let mut file = File::create(&path).map_err(|e| io_err(&path, e))?;
            let header = render_header(self.num_vars, self.clauses.len());
            file.write_all(header.as_bytes())
                .map_err(|e| io_err(&path, e))?;
            self.cache = Some(CnfCache {
                path,
                file,
                clauses_written: 0,
                base_len: header.len() as u64,
            });
        }
        let cache = self.cache.as_mut().expect("created above");
        let path = cache.path.clone();
        let mut appended = String::new();
        for clause in &self.clauses[cache.clauses_written..] {
            appended.push_str(&render_clause(clause));
        }
        cache
            .file
            .seek(SeekFrom::Start(cache.base_len))
            .map_err(|e| io_err(&path, e))?;
        cache
            .file
            .write_all(appended.as_bytes())
            .map_err(|e| io_err(&path, e))?;
        cache.base_len += appended.len() as u64;
        cache.clauses_written = self.clauses.len();
        let mut units = String::new();
        for lit in assumptions {
            units.push_str(&lit.to_string());
            units.push_str(" 0\n");
        }
        cache
            .file
            .write_all(units.as_bytes())
            .map_err(|e| io_err(&path, e))?;
        cache
            .file
            .set_len(cache.base_len + units.len() as u64)
            .map_err(|e| io_err(&path, e))?;
        cache
            .file
            .seek(SeekFrom::Start(0))
            .map_err(|e| io_err(&path, e))?;
        let header = render_header(self.num_vars, self.clauses.len() + assumptions.len());
        cache
            .file
            .write_all(header.as_bytes())
            .map_err(|e| io_err(&path, e))?;
        Ok(path)
    }

    /// Drops the assumption units appended by the previous
    /// [`write_query`](Self::write_query), restoring the file to its base
    /// region so the next query appends from a clean state.
    fn truncate_assumptions(&mut self) {
        if let Some(cache) = &mut self.cache {
            let _ = cache.file.set_len(cache.base_len);
        }
    }

    fn parse_answer(
        &mut self,
        stdout: &str,
        status: Option<i32>,
    ) -> Result<SolveResult, BackendError> {
        let mut verdict = match status {
            Some(10) => Some(SolveResult::Sat),
            Some(20) => Some(SolveResult::Unsat),
            _ => None,
        };
        self.model = vec![None; self.num_vars as usize];
        let mut saw_model_line = false;
        for line in stdout.lines() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("s ") {
                verdict = match rest.trim() {
                    "SATISFIABLE" => Some(SolveResult::Sat),
                    "UNSATISFIABLE" => Some(SolveResult::Unsat),
                    other => {
                        return Err(BackendError::new(format!(
                            "solver `{}` reported unknown status `{other}`",
                            self.solver_path.display()
                        )))
                    }
                };
            } else if let Some(rest) = line.strip_prefix("v ").or_else(|| line.strip_prefix("V ")) {
                saw_model_line = true;
                for tok in rest.split_ascii_whitespace() {
                    let value: i64 = tok
                        .parse()
                        .map_err(|_| BackendError::new(format!("invalid model token `{tok}`")))?;
                    if value == 0 {
                        continue;
                    }
                    let index = (value.unsigned_abs() - 1) as usize;
                    if index < self.model.len() {
                        self.model[index] = Some(value > 0);
                    }
                }
            }
        }
        let verdict = verdict.ok_or_else(|| {
            BackendError::new(format!(
                "solver `{}` produced neither an `s` line nor exit code 10/20",
                self.solver_path.display()
            ))
        })?;
        if verdict == SolveResult::Sat && !saw_model_line && self.num_vars > 0 {
            // Accepting a model-less SAT would make every variable read as
            // `false` and fabricate meaningless counterexamples downstream.
            return Err(BackendError::new(format!(
                "solver `{}` answered SAT without `v` model lines; configure it to print the \
                 model (e.g. use a SAT-competition output mode)",
                self.solver_path.display()
            )));
        }
        Ok(verdict)
    }
}

impl SatBackend for DimacsProcessBackend {
    fn name(&self) -> String {
        format!("dimacs:{}", self.solver_path.display())
    }

    fn new_var(&mut self) -> Var {
        let var = Var::from_index(self.num_vars);
        self.num_vars += 1;
        var
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        for lit in lits {
            assert!(
                lit.var().index() < self.num_vars,
                "literal {lit:?} refers to an unallocated variable"
            );
        }
        if self.known_unsat {
            return false;
        }
        if lits.is_empty() {
            self.known_unsat = true;
            return false;
        }
        self.clauses.push(lits.to_vec());
        true
    }

    fn solve_under(&mut self, assumptions: &[Lit]) -> Result<SolveResult, BackendError> {
        self.queries += 1;
        if self.known_unsat {
            return Ok(SolveResult::Unsat);
        }
        // Checked before spawning: a budget exhausted by a sibling shard (or
        // an already-tripped cancel) must not launch another process.
        if self.should_abandon() {
            return Ok(SolveResult::Interrupted);
        }
        let path = self.write_query(assumptions)?;
        let result = self.run_solver(&path);
        // Keep the serialized clause prefix for the next query; only the
        // assumption units are rolled back.
        self.truncate_assumptions();
        result
    }

    fn model_value(&self, var: Var) -> Option<bool> {
        self.model.get(var.index() as usize).copied().flatten()
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            vars: self.num_vars as usize,
            clauses: self.clauses.len(),
            queries: self.queries,
            // `solves` is derived, not a second hand-maintained counter, so
            // it can never drift from `queries`.
            solver: SolverStats {
                solves: self.queries,
                ..self.stats
            },
        }
    }

    fn can_fork(&self) -> bool {
        true
    }

    fn fork(&self) -> Option<Box<dyn SatBackend>> {
        // Work counters carry over — plus one recorded fork of
        // `snapshot_bytes` on the child, mirroring the bundled solver's
        // fork contract, so delta-based task accounting sees the clone
        // cost of process-backend shards too.
        let mut stats = self.stats;
        stats.fork_count += 1;
        stats.bytes_cloned += self.snapshot_bytes();
        Some(Box::new(DimacsProcessBackend {
            solver_path: self.solver_path.clone(),
            extra_args: self.extra_args.clone(),
            // htd-lint: allow(determinism): unique temp-file tag; only uniqueness matters, not order
            instance: NEXT_BACKEND_INSTANCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            num_vars: self.num_vars,
            clauses: self.clauses.clone(),
            model: Vec::new(),
            queries: self.queries,
            stats,
            known_unsat: self.known_unsat,
            // The fork serializes its own CNF file from scratch on its first
            // query (the parent's file keeps accumulating independently).
            cache: None,
            interrupt: self.interrupt.clone(),
            // Budgets are per job, not per shard: the fork charges the same
            // tracker as its parent.
            budget: self.budget.clone(),
        }))
    }

    fn snapshot_bytes(&self) -> u64 {
        // The fork copies the in-memory clause lists (this backend is not
        // arena-backed — external solvers re-read the whole CNF anyway).
        clause_log_bytes(&self.clauses)
    }

    fn set_interrupt(&mut self, check: Arc<dyn Fn() -> bool + Send + Sync>) {
        self.interrupt = ProcessInterrupt(Some(check));
    }

    fn set_budget(&mut self, budget: Option<Arc<BudgetTracker>>) {
        self.budget = budget;
    }
}

impl Drop for DimacsProcessBackend {
    fn drop(&mut self) {
        if let Some(cache) = &self.cache {
            let _ = std::fs::remove_file(&cache.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_var_backend(backend: &mut dyn SatBackend) -> (Var, Var) {
        let a = backend.new_var();
        let b = backend.new_var();
        backend.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        backend.add_clause(&[Lit::neg(a), Lit::pos(b)]);
        (a, b)
    }

    #[test]
    fn solver_implements_the_backend_interface() {
        let mut solver = Solver::new();
        let (a, b) = two_var_backend(&mut solver);
        assert_eq!(
            SatBackend::solve_under(&mut solver, &[]).unwrap(),
            SolveResult::Sat
        );
        assert_eq!(
            SatBackend::solve_under(&mut solver, &[Lit::neg(b)]).unwrap(),
            SolveResult::Unsat
        );
        assert_eq!(
            SatBackend::solve_under(&mut solver, &[]).unwrap(),
            SolveResult::Sat
        );
        let _ = a;
        let stats = SatBackend::stats(&solver);
        assert_eq!(stats.vars, 2);
        assert_eq!(stats.queries, 3);
    }

    #[test]
    fn missing_binary_is_a_backend_error_not_a_panic() {
        let mut backend = DimacsProcessBackend::new("/nonexistent/htd-test-solver");
        let a = backend.new_var();
        backend.add_clause(&[Lit::pos(a)]);
        let err = backend.solve_under(&[]).unwrap_err();
        assert!(err.message.contains("spawning"), "{err}");
    }

    #[test]
    fn empty_clause_makes_the_process_backend_known_unsat() {
        let mut backend = DimacsProcessBackend::new("/nonexistent/htd-test-solver");
        assert!(!backend.add_clause(&[]));
        // No process is spawned for a known-unsat formula.
        assert_eq!(backend.solve_under(&[]).unwrap(), SolveResult::Unsat);
    }

    #[cfg(unix)]
    #[test]
    fn sat_without_model_lines_is_rejected() {
        use std::os::unix::fs::PermissionsExt;

        let dir = std::env::temp_dir();
        let script = dir.join(format!("htd-fake-modelless-{}.sh", std::process::id()));
        std::fs::write(&script, "#!/bin/sh\necho 's SATISFIABLE'\nexit 10\n").unwrap();
        let mut perms = std::fs::metadata(&script).unwrap().permissions();
        perms.set_mode(0o755);
        std::fs::set_permissions(&script, perms).unwrap();

        let mut backend = DimacsProcessBackend::new(&script);
        let a = backend.new_var();
        backend.add_clause(&[Lit::pos(a)]);
        let err = backend.solve_under(&[]).unwrap_err();
        assert!(err.message.contains("without `v` model lines"), "{err}");
        std::fs::remove_file(&script).ok();
    }

    #[test]
    fn concurrent_backends_use_distinct_temp_files() {
        let a = DimacsProcessBackend::new("/bin/true");
        let b = DimacsProcessBackend::new("/bin/true");
        assert_ne!(a.instance, b.instance);
    }

    /// The incremental CNF cache serializes every clause exactly once:
    /// later queries append only the new clauses and the per-query
    /// assumption units, which are truncated away again afterwards.
    #[test]
    fn incremental_cnf_cache_appends_only_new_clauses() {
        let mut backend = DimacsProcessBackend::new("/nonexistent/htd-test-solver");
        let a = backend.new_var();
        let b = backend.new_var();
        SatBackend::add_clause(&mut backend, &[Lit::pos(a), Lit::pos(b)]);
        // The spawn fails, but the CNF file is written (and cleaned) first.
        let _ = backend.solve_under(&[Lit::neg(a)]);
        let path = backend.cache.as_ref().expect("cache created").path.clone();
        let after_first = std::fs::read_to_string(&path).unwrap();
        assert!(after_first.starts_with("p cnf"), "{after_first}");
        assert!(after_first.contains("1 2 0"));
        assert!(
            !after_first.contains("-1 0"),
            "assumption units truncated away: {after_first}"
        );
        let base_len = backend.cache.as_ref().unwrap().base_len;
        assert_eq!(backend.cache.as_ref().unwrap().clauses_written, 1);

        // A second query appends the new clause behind the cached prefix.
        SatBackend::add_clause(&mut backend, &[Lit::neg(b), Lit::pos(a)]);
        let _ = backend.solve_under(&[]);
        let cache = backend.cache.as_ref().unwrap();
        assert_eq!(cache.clauses_written, 2);
        assert!(cache.base_len > base_len);
        let after_second = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            after_second.matches("1 2 0").count(),
            1,
            "the prefix is serialized exactly once: {after_second}"
        );
        assert!(after_second.contains("-2 1 0"));
        drop(backend);
        assert!(!path.exists(), "cache file removed on drop");
    }

    /// The in-place header rewrite keeps the declared counts in sync with
    /// the appended clauses and assumptions, and the padded problem line
    /// stays parseable by the bundled DIMACS reader.
    #[test]
    fn incremental_cnf_header_tracks_counts_and_stays_parseable() {
        let mut backend = DimacsProcessBackend::new("/nonexistent/htd-test-solver");
        let a = backend.new_var();
        let b = backend.new_var();
        SatBackend::add_clause(&mut backend, &[Lit::pos(a), Lit::pos(b)]);
        let path = backend.write_query(&[Lit::neg(a)]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let header = text.lines().next().unwrap();
        let counts: Vec<&str> = header.split_whitespace().collect();
        assert_eq!(counts, vec!["p", "cnf", "2", "2"]);
        let mut solver = crate::dimacs::parse_dimacs(&text).unwrap();
        assert_eq!(solver.solve(), SolveResult::Sat);
        assert_eq!(solver.value(b), Some(true), "1 2 & -1 forces 2");
        backend.truncate_assumptions();
    }

    /// The process backend advertises forkability (each query writes a fresh
    /// CNF, so a fork is just a clone of the accumulated clause list) — this
    /// is what lets `--jobs N` shard levels with external solvers instead of
    /// silently degrading to sequential solving on the master.  Work
    /// counters carry over and the fork records its clone cost, exactly
    /// like the bundled solver's fork contract.
    #[test]
    fn process_backend_forks_an_independent_snapshot() {
        let mut backend = DimacsProcessBackend::new("/nonexistent/htd-test-solver");
        let a = backend.new_var();
        let b = backend.new_var();
        backend.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        assert!(backend.can_fork());
        // One (failing — the binary does not exist) query on the master, so
        // carry-over is observable.
        let _ = backend.solve_under(&[]);
        assert_eq!(backend.stats().queries, 1);
        assert_eq!(backend.stats().solver.solves, 1);

        let mut fork = backend.fork().expect("process backend forks");
        assert!(fork.can_fork());
        let forked = fork.stats();
        assert_eq!(forked.queries, 1, "work counters carry over to the fork");
        assert_eq!(forked.solver.solves, 1);
        assert_eq!(forked.solver.fork_count, 1, "the fork records itself");
        assert!(backend.snapshot_bytes() > 0);
        assert_eq!(
            forked.solver.bytes_cloned,
            backend.snapshot_bytes(),
            "the fork records the clone cost of the clause list"
        );
        assert_eq!(
            backend.stats().solver.fork_count,
            0,
            "the cost lands on the child, not the master"
        );
        assert_eq!(forked.vars, 2);
        assert_eq!(forked.clauses, 1);
        // Clauses added to the fork do not leak back into the master.
        let c = fork.new_var();
        fork.add_clause(&[Lit::pos(c)]);
        assert_eq!(fork.stats().clauses, 2);
        assert_eq!(backend.stats().clauses, 1);
        assert_eq!(backend.stats().vars, 2);
    }

    /// `new_var` between queries grows the variable count; the in-place
    /// fixed-width header rewrite must pick the growth up (and the file
    /// must stay parseable) even though the clause prefix is never
    /// re-serialized.
    #[test]
    fn incremental_cnf_header_tracks_variable_growth_between_queries() {
        let mut backend = DimacsProcessBackend::new("/nonexistent/htd-test-solver");
        let a = backend.new_var();
        SatBackend::add_clause(&mut backend, &[Lit::pos(a)]);
        let path = backend.write_query(&[]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let counts: Vec<&str> = text.lines().next().unwrap().split_whitespace().collect();
        assert_eq!(counts, vec!["p", "cnf", "1", "1"]);
        backend.truncate_assumptions();

        // Grow the variable space and the clause list between queries.
        let b = backend.new_var();
        let c = backend.new_var();
        SatBackend::add_clause(&mut backend, &[Lit::neg(b), Lit::pos(c)]);
        let path = backend.write_query(&[Lit::pos(b)]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let counts: Vec<&str> = text.lines().next().unwrap().split_whitespace().collect();
        assert_eq!(
            counts,
            vec!["p", "cnf", "3", "3"],
            "header reflects the grown variable space and the assumption unit"
        );
        // The first clause is still serialized exactly once, and the file
        // still parses through the bundled DIMACS reader.
        assert_eq!(text.matches("1 0").count(), 1, "{text}");
        let mut solver = crate::dimacs::parse_dimacs(&text).unwrap();
        assert_eq!(solver.solve(), SolveResult::Sat);
        assert_eq!(solver.value(a), Some(true));
        assert_eq!(solver.value(c), Some(true), "-2 3 & 2 forces 3");
        backend.truncate_assumptions();
    }

    #[cfg(unix)]
    #[test]
    fn forked_process_backends_answer_like_the_master() {
        use std::os::unix::fs::PermissionsExt;

        let dir = std::env::temp_dir();
        let script = dir.join(format!("htd-fake-fork-solver-{}.sh", std::process::id()));
        std::fs::write(
            &script,
            "#!/bin/sh\necho 's SATISFIABLE'\necho 'v 1 0'\nexit 10\n",
        )
        .unwrap();
        let mut perms = std::fs::metadata(&script).unwrap().permissions();
        perms.set_mode(0o755);
        std::fs::set_permissions(&script, perms).unwrap();

        let mut master = DimacsProcessBackend::new(&script);
        let a = master.new_var();
        master.add_clause(&[Lit::pos(a)]);
        let mut fork = master.fork().expect("forkable");
        assert_eq!(master.solve_under(&[]).unwrap(), SolveResult::Sat);
        assert_eq!(fork.solve_under(&[]).unwrap(), SolveResult::Sat);
        assert_eq!(fork.model_value(a), master.model_value(a));
        std::fs::remove_file(&script).ok();
    }

    #[cfg(unix)]
    #[test]
    fn process_backend_parses_competition_output() {
        use std::os::unix::fs::PermissionsExt;

        let dir = std::env::temp_dir();
        let script = dir.join(format!("htd-fake-solver-{}.sh", std::process::id()));
        std::fs::write(
            &script,
            "#!/bin/sh\necho 'c fake solver'\necho 's SATISFIABLE'\necho 'v 1 -2 0'\nexit 10\n",
        )
        .unwrap();
        let mut perms = std::fs::metadata(&script).unwrap().permissions();
        perms.set_mode(0o755);
        std::fs::set_permissions(&script, perms).unwrap();

        let mut backend = DimacsProcessBackend::new(&script);
        let a = backend.new_var();
        let b = backend.new_var();
        backend.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        assert_eq!(backend.solve_under(&[]).unwrap(), SolveResult::Sat);
        assert_eq!(backend.model_value(a), Some(true));
        assert_eq!(backend.model_value(b), Some(false));
        assert_eq!(backend.stats().queries, 1);
        std::fs::remove_file(&script).ok();
    }
}
