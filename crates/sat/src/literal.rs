//! Propositional variables and literals.

use std::fmt;
use std::ops::Not;

/// A propositional variable, identified by a dense index starting at 0.
///
/// Variables are created by [`crate::Solver::new_var`]; their index is used to
/// address per-variable data inside the solver and by the Tseitin encoder in
/// `htd-ipc`.
///
/// # Example
///
/// ```
/// use htd_sat::{Solver, Var};
///
/// let mut solver = Solver::new();
/// let v: Var = solver.new_var();
/// assert_eq!(v.index(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its dense index.
    ///
    /// Normally variables are obtained from [`crate::Solver::new_var`]; this
    /// constructor exists for encoders that manage their own variable space
    /// (e.g. DIMACS parsing).
    #[must_use]
    pub const fn from_index(index: u32) -> Self {
        Var(index)
    }

    /// Returns the dense index of this variable.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0 + 1)
    }
}

/// A literal: a propositional variable or its negation.
///
/// Internally encoded as `2 * var + sign` so it can index watch lists
/// directly.
///
/// # Example
///
/// ```
/// use htd_sat::{Lit, Var};
///
/// let v = Var::from_index(3);
/// let p = Lit::pos(v);
/// assert_eq!(!p, Lit::neg(v));
/// assert_eq!(p.var(), v);
/// assert!(!p.is_negated());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `var`.
    #[must_use]
    pub const fn pos(var: Var) -> Self {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    #[must_use]
    pub const fn neg(var: Var) -> Self {
        Lit((var.0 << 1) | 1)
    }

    /// Builds a literal from a variable and a sign (`true` = negated).
    #[must_use]
    pub const fn new(var: Var, negated: bool) -> Self {
        Lit((var.0 << 1) | negated as u32)
    }

    /// The variable underlying this literal.
    #[must_use]
    pub const fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` if this is a negated literal.
    #[must_use]
    pub const fn is_negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// Dense code of the literal (`2 * var + sign`), usable as an array index.
    #[must_use]
    pub const fn code(self) -> u32 {
        self.0
    }

    /// Reconstructs a literal from its dense [`code`](Self::code).
    #[must_use]
    pub const fn from_code(code: u32) -> Self {
        Lit(code)
    }

    /// Evaluates the literal under an assignment of its variable.
    #[must_use]
    pub const fn apply(self, var_value: bool) -> bool {
        var_value != self.is_negated()
    }

    /// The 1-based signed integer form of the literal — the convention of
    /// DIMACS files and the IPASIR C ABI (`variable index + 1`, negative
    /// when negated).  Matches the [`Display`](std::fmt::Display)
    /// rendering; defined once here so the DIMACS writer and the IPASIR
    /// backend/shim cannot drift apart.
    #[must_use]
    pub const fn to_dimacs(self) -> i32 {
        let var = self.var().index() as i32 + 1;
        if self.is_negated() {
            -var
        } else {
            var
        }
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negated() {
            write!(f, "!v{}", self.var().index())
        } else {
            write!(f, "v{}", self.var().index())
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negated() {
            write!(f, "-{}", self.var())
        } else {
            write!(f, "{}", self.var())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_roundtrip() {
        let v = Var::from_index(7);
        assert_eq!(Lit::pos(v).var(), v);
        assert_eq!(Lit::neg(v).var(), v);
        assert!(Lit::neg(v).is_negated());
        assert!(!Lit::pos(v).is_negated());
        assert_eq!(Lit::new(v, true), Lit::neg(v));
        assert_eq!(Lit::new(v, false), Lit::pos(v));
    }

    #[test]
    fn negation_is_involutive() {
        let v = Var::from_index(11);
        assert_eq!(!!Lit::pos(v), Lit::pos(v));
        assert_eq!(!Lit::pos(v), Lit::neg(v));
    }

    #[test]
    fn code_roundtrip() {
        for idx in 0..16u32 {
            let v = Var::from_index(idx);
            for lit in [Lit::pos(v), Lit::neg(v)] {
                assert_eq!(Lit::from_code(lit.code()), lit);
            }
        }
    }

    #[test]
    fn apply_respects_sign() {
        let v = Var::from_index(0);
        assert!(Lit::pos(v).apply(true));
        assert!(!Lit::pos(v).apply(false));
        assert!(!Lit::neg(v).apply(true));
        assert!(Lit::neg(v).apply(false));
    }

    #[test]
    fn display_uses_dimacs_convention() {
        let v = Var::from_index(4);
        assert_eq!(Lit::pos(v).to_string(), "5");
        assert_eq!(Lit::neg(v).to_string(), "-5");
    }
}
