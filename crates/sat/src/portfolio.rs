//! Portfolio racing across SAT backends.
//!
//! A [`PortfolioBackend`] is one logical [`SatBackend`] wrapping N member
//! backends (the bundled CDCL solver, IPASIR libraries, …).  Every mutation
//! — variables, clauses, decision masks — is mirrored into all members in
//! lockstep, so the members always hold the same formula; every
//! [`solve_under`](SatBackend::solve_under) query then runs on all members
//! *concurrently* and the race is decided by the first definitive answer,
//! with the losers cancelled mid-search through the same interrupt seam the
//! parallel property scheduler already uses for doomed tasks
//! ([`set_interrupt`](SatBackend::set_interrupt) /
//! `ipasir_set_terminate`).
//!
//! # Determinism
//!
//! The *verdict* of a query is backend-invariant (all members solve the
//! same formula), so either member may decide SAT vs UNSAT.  The *model* of
//! a SAT answer is not: different solvers find different satisfying
//! assignments, and the detection flow turns models into counterexamples
//! that appear verbatim in reports.  [`RacePolicy`] picks the trade-off:
//!
//! * [`DeterministicCex`](RacePolicy::DeterministicCex) (default): SAT
//!   models always come from the designated *primary* member (index 0).
//!   Racers are pure accelerators — a racer UNSAT cancels everyone
//!   (UNSAT has no model, so whoever proves it first settles the query);
//!   a racer SAT only stops the other racers while the primary runs to its
//!   own model.  Reports are byte-identical to running the primary alone.
//! * [`FastestCex`](RacePolicy::FastestCex) (opt-in): the first definitive
//!   answer wins wholesale, model included.  Minimum latency, but
//!   counterexample bits may differ between runs; compare reports under
//!   `DetectionReport::normalized()` with models scrubbed.
//!
//! Racing is merge-safe in the detection flow because every solve task runs
//! on a throwaway fork of a frozen snapshot and results merge in node
//! order: an externally-cancelled (doomed) task's answer is discarded by
//! the scheduler regardless of which member produced it.
//!
//! # Cost accounting
//!
//! The portfolio's [`stats`](SatBackend::stats) are the primary member's
//! counters plus the race telemetry aggregated over all members
//! (`race_solves` / `race_wins` / `race_cancels` / `race_wasted_conflicts`
//! / `race_cancel_latency_us` in
//! [`SolverStats`](crate::SolverStats)); per-member telemetry is available
//! via [`PortfolioBackend::race_stats`].  A solve [`SolveBudget`] tracker
//! is owned by the primary alone — racers poll its exhaustion latch through
//! their race predicate but never charge conflicts — so a portfolio drains
//! a conflict ceiling at the same rate as a plain primary run, and an
//! exhausted budget stops every member.
//!
//! [`SolveBudget`]: crate::SolveBudget

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::backend::{BackendError, BackendStats, SatBackend};
use crate::budget::BudgetTracker;
use crate::literal::{Lit, Var};
use crate::solver::SolveResult;

/// Sentinel for "no member has decided the race yet".
const NO_WINNER: usize = usize::MAX;

/// Which member's model a portfolio SAT answer exposes (see the
/// [module docs](self) for the full determinism discussion).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RacePolicy {
    /// SAT models come from the primary member; racers only accelerate
    /// UNSAT answers.  Reports are byte-identical to the primary alone.
    #[default]
    DeterministicCex,
    /// The first definitive answer wins wholesale, model included.
    FastestCex,
}

impl RacePolicy {
    /// The CLI/env token for [`DeterministicCex`](Self::DeterministicCex).
    pub const DETERMINISTIC_CEX: &'static str = "deterministic-cex";
    /// The CLI/env token for [`FastestCex`](Self::FastestCex).
    pub const FASTEST_CEX: &'static str = "fastest-cex";
}

impl std::str::FromStr for RacePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            Self::DETERMINISTIC_CEX => Ok(RacePolicy::DeterministicCex),
            Self::FASTEST_CEX => Ok(RacePolicy::FastestCex),
            other => Err(format!(
                "unknown race policy `{other}` (expected `{}` or `{}`)",
                Self::DETERMINISTIC_CEX,
                Self::FASTEST_CEX
            )),
        }
    }
}

impl std::fmt::Display for RacePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RacePolicy::DeterministicCex => Self::DETERMINISTIC_CEX,
            RacePolicy::FastestCex => Self::FASTEST_CEX,
        })
    }
}

/// Per-member race telemetry, indexed like the portfolio's member list
/// (0 = primary).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RaceStats {
    /// Races this member decided (its answer became the query's answer).
    pub wins: u64,
    /// Races in which this member was cancelled because another member
    /// answered first.
    pub cancels: u64,
    /// Conflicts this member spent on answers that were discarded — the
    /// duplicated work the portfolio pays for its latency wins.  Only
    /// members that report conflict counters contribute (external IPASIR
    /// libraries are black boxes and stay at zero).
    pub wasted_conflicts: u64,
    /// Total observed cancel→return latency in microseconds: time from
    /// raising this member's cancel flag to its `solve_under` returning,
    /// summed over all cancelled races.
    pub cancel_latency_us: u64,
}

/// The outcome of one member's leg of a race.
struct MemberOutcome {
    result: Result<SolveResult, BackendError>,
    cancelled: bool,
    latency_us: u64,
}

/// A first-answer-wins portfolio over N member [`SatBackend`]s.
///
/// See the [module docs](self) for the racing protocol, the determinism
/// policies and the cost accounting.
pub struct PortfolioBackend {
    /// Member backends; index 0 is the primary (model source under
    /// [`RacePolicy::DeterministicCex`]).
    members: Vec<Box<dyn SatBackend>>,
    policy: RacePolicy,
    /// The externally installed interrupt predicate (scheduler cancels);
    /// combined with the per-race cancel flags at solve time.
    interrupt: Option<Arc<dyn Fn() -> bool + Send + Sync>>,
    /// The job's budget tracker; owned by the primary, polled by racers.
    budget: Option<Arc<BudgetTracker>>,
    queries: u64,
    /// Index of the member whose model `model_value` reads (the winner of
    /// the last decided race).
    last_winner: usize,
    /// Races that reached a verdict.
    races: u64,
    /// Per-member telemetry, index-aligned with `members`.
    race: Vec<RaceStats>,
}

impl PortfolioBackend {
    /// Builds a portfolio over `members` (index 0 becomes the primary).
    ///
    /// # Errors
    ///
    /// Returns [`BackendError`] if `members` is empty, or if any member has
    /// already allocated variables or clauses — members must be mirrored
    /// from birth so they always hold the same formula.
    pub fn new(
        members: Vec<Box<dyn SatBackend>>,
        policy: RacePolicy,
    ) -> Result<PortfolioBackend, BackendError> {
        if members.is_empty() {
            return Err(BackendError::new(
                "a portfolio needs at least one member backend",
            ));
        }
        for member in &members {
            let stats = member.stats();
            if stats.vars != 0 || stats.clauses != 0 {
                return Err(BackendError::new(format!(
                    "portfolio member `{}` already holds a formula ({} vars, {} clauses); \
                     members must start empty so mirrored state stays identical",
                    member.name(),
                    stats.vars,
                    stats.clauses
                )));
            }
        }
        let race = vec![RaceStats::default(); members.len()];
        Ok(PortfolioBackend {
            members,
            policy,
            interrupt: None,
            budget: None,
            queries: 0,
            last_winner: 0,
            races: 0,
            race,
        })
    }

    /// The portfolio's determinism policy.
    #[must_use]
    pub fn policy(&self) -> RacePolicy {
        self.policy
    }

    /// Per-member race telemetry, index-aligned with the member list
    /// (0 = primary).
    #[must_use]
    pub fn race_stats(&self) -> &[RaceStats] {
        &self.race
    }

    /// Member names in race order (0 = primary).
    #[must_use]
    pub fn member_names(&self) -> Vec<String> {
        self.members.iter().map(|m| m.name()).collect()
    }
}

impl SatBackend for PortfolioBackend {
    fn name(&self) -> String {
        let members: Vec<String> = self.members.iter().map(|m| m.name()).collect();
        match self.policy {
            RacePolicy::DeterministicCex => format!("portfolio({})", members.join(" + ")),
            RacePolicy::FastestCex => {
                format!("portfolio({}; fastest-cex)", members.join(" + "))
            }
        }
    }

    fn new_var(&mut self) -> Var {
        let mut members = self.members.iter_mut();
        let var = members.next().expect("portfolio has members").new_var();
        for member in members {
            let mirrored = member.new_var();
            debug_assert_eq!(mirrored, var, "portfolio members allocate in lockstep");
        }
        var
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        let mut accepted = true;
        for (i, member) in self.members.iter_mut().enumerate() {
            let result = member.add_clause(lits);
            // The primary's verdict is authoritative (external members may
            // not detect top-level conflicts eagerly).
            if i == 0 {
                accepted = result;
            }
        }
        accepted
    }

    fn solve_under(&mut self, assumptions: &[Lit]) -> Result<SolveResult, BackendError> {
        self.queries += 1;
        if self.members.len() == 1 {
            // Degenerate portfolio: plain delegation (the single member
            // already holds the interrupt and the budget via the set_*
            // fan-outs).
            self.last_winner = 0;
            return self.members[0].solve_under(assumptions);
        }

        let n = self.members.len();
        let ext = self.interrupt.clone();
        let budget = self.budget.clone();
        let policy = self.policy;

        // Arm every member with its race predicate: the member's own cancel
        // flag, the budget's exhaustion latch (racers only — the primary
        // owns the tracker and polls it internally), and the externally
        // installed scheduler cancel.
        let flags: Vec<Arc<AtomicBool>> =
            (0..n).map(|_| Arc::new(AtomicBool::new(false))).collect();
        for (i, member) in self.members.iter_mut().enumerate() {
            let flag = Arc::clone(&flags[i]);
            let ext = ext.clone();
            let budget = if i == 0 { None } else { budget.clone() };
            member.set_interrupt(Arc::new(move || {
                flag.load(Ordering::Relaxed)
                    || budget.as_deref().is_some_and(BudgetTracker::check)
                    || ext.as_ref().is_some_and(|check| check())
            }));
        }
        let conflicts_before: Vec<u64> = self
            .members
            .iter()
            .map(|m| m.stats().solver.conflicts)
            .collect();

        // Race state: the first racer to prove UNSAT (deterministic-cex) or
        // the first member to answer definitively (fastest-cex) wins by CAS;
        // cancel timestamps measure the cancel→return latency of the losers.
        let unsat_winner = AtomicUsize::new(NO_WINNER);
        let fastest_winner = AtomicUsize::new(NO_WINNER);
        let cancel_at: Vec<Mutex<Option<Instant>>> = (0..n).map(|_| Mutex::new(None)).collect();

        let cancel = |i: usize| {
            let mut slot = cancel_at[i].lock().expect("cancel timestamp lock");
            if slot.is_none() {
                *slot = Some(Instant::now());
            }
            drop(slot);
            flags[i].store(true, Ordering::Relaxed);
        };

        let run = |member: &mut Box<dyn SatBackend>, i: usize| -> MemberOutcome {
            let result = member.solve_under(assumptions);
            match (policy, &result) {
                // A racer proved UNSAT: there is no model to read, so the
                // first proof settles the query — everyone else, primary
                // included, is now wasted work.
                (RacePolicy::DeterministicCex, Ok(SolveResult::Unsat))
                    if i > 0
                        && unsat_winner
                            .compare_exchange(NO_WINNER, i, Ordering::SeqCst, Ordering::SeqCst)
                            .is_ok() =>
                {
                    for j in (0..n).filter(|&j| j != i) {
                        cancel(j);
                    }
                }
                (RacePolicy::DeterministicCex, Ok(SolveResult::Sat)) if i > 0 => {
                    // The verdict is SAT, so no racer can prove UNSAT any
                    // more; stop the other racers but leave the primary
                    // running — the deterministic model must come from it.
                    for j in (1..n).filter(|&j| j != i) {
                        cancel(j);
                    }
                }
                (RacePolicy::DeterministicCex, _) if i == 0 => {
                    // The primary settled (or was cancelled): racers are moot.
                    for j in 1..n {
                        cancel(j);
                    }
                }
                (RacePolicy::FastestCex, Ok(SolveResult::Sat | SolveResult::Unsat))
                    if fastest_winner
                        .compare_exchange(NO_WINNER, i, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok() =>
                {
                    for j in (0..n).filter(|&j| j != i) {
                        cancel(j);
                    }
                }
                _ => {}
            }
            let cancelled_at = *cancel_at[i].lock().expect("cancel timestamp lock");
            match cancelled_at {
                Some(at) => MemberOutcome {
                    result,
                    cancelled: true,
                    latency_us: u64::try_from(at.elapsed().as_micros()).unwrap_or(u64::MAX),
                },
                None => MemberOutcome {
                    result,
                    cancelled: false,
                    latency_us: 0,
                },
            }
        };

        // The primary solves on the calling thread; racers get scoped
        // threads.  The scope joins every member before returning, so no
        // member outlives the race.
        let (primary, racers) = self.members.split_at_mut(1);
        let run = &run;
        let (primary_outcome, racer_outcomes) = std::thread::scope(|scope| {
            let handles: Vec<_> = racers
                .iter_mut()
                .enumerate()
                .map(|(k, member)| scope.spawn(move || run(member, k + 1)))
                .collect();
            let primary_outcome = run(&mut primary[0], 0);
            let racer_outcomes: Vec<MemberOutcome> = handles
                .into_iter()
                .map(|handle| {
                    handle
                        .join()
                        .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
                })
                .collect();
            (primary_outcome, racer_outcomes)
        });
        let mut outcomes = Vec::with_capacity(n);
        outcomes.push(primary_outcome);
        outcomes.extend(racer_outcomes);

        let decision: Option<(usize, SolveResult)> = match policy {
            RacePolicy::DeterministicCex => match &outcomes[0].result {
                Ok(answer @ (SolveResult::Sat | SolveResult::Unsat)) => Some((0, *answer)),
                // The primary was cancelled (or failed): a racer's UNSAT
                // proof still decides the query.
                _ => {
                    let winner = unsat_winner.load(Ordering::SeqCst);
                    (winner != NO_WINNER).then_some((winner, SolveResult::Unsat))
                }
            },
            RacePolicy::FastestCex => {
                let winner = fastest_winner.load(Ordering::SeqCst);
                (winner != NO_WINNER).then(|| {
                    match &outcomes[winner].result {
                        Ok(answer) => (winner, *answer),
                        // The CAS only happens on a definitive Ok answer.
                        Err(_) => unreachable!("race winner posted a definitive answer"),
                    }
                })
            }
        };

        for (i, outcome) in outcomes.iter().enumerate() {
            if outcome.cancelled {
                self.race[i].cancels += 1;
                self.race[i].cancel_latency_us += outcome.latency_us;
            }
        }
        if let Some((winner, answer)) = decision {
            self.races += 1;
            self.race[winner].wins += 1;
            self.last_winner = winner;
            for i in (0..n).filter(|&i| i != winner) {
                self.race[i].wasted_conflicts +=
                    self.members[i].stats().solver.conflicts - conflicts_before[i];
            }
            return Ok(answer);
        }
        // No member reached a verdict: the race was interrupted from outside
        // (scheduler cancel or budget exhaustion) or the primary failed.
        outcomes.swap_remove(0).result
    }

    fn model_value(&self, var: Var) -> Option<bool> {
        self.members[self.last_winner].model_value(var)
    }

    fn stats(&self) -> BackendStats {
        let primary = self.members[0].stats();
        let mut solver = primary.solver;
        // `+=`, not `=`: a primary that is itself a portfolio (nested
        // racing) already carries race counters of its own.
        solver.race_solves += self.races;
        for (i, member) in self.race.iter().enumerate() {
            if i > 0 {
                solver.race_wins += member.wins;
            }
            solver.race_cancels += member.cancels;
            solver.race_wasted_conflicts += member.wasted_conflicts;
            solver.race_cancel_latency_us += member.cancel_latency_us;
        }
        BackendStats {
            vars: primary.vars,
            clauses: primary.clauses,
            queries: self.queries,
            solver,
        }
    }

    fn begin_new_query(&mut self) {
        for member in &mut self.members {
            member.begin_new_query();
        }
    }

    fn set_decision_var(&mut self, var: Var, eligible: bool) {
        for member in &mut self.members {
            member.set_decision_var(var, eligible);
        }
    }

    fn mask_all_decisions(&mut self) {
        for member in &mut self.members {
            member.mask_all_decisions();
        }
    }

    fn can_fork(&self) -> bool {
        self.members.iter().all(|member| member.can_fork())
    }

    fn fork(&self) -> Option<Box<dyn SatBackend>> {
        let mut members = Vec::with_capacity(self.members.len());
        for member in &self.members {
            members.push(member.fork()?);
        }
        Some(Box::new(PortfolioBackend {
            members,
            policy: self.policy,
            interrupt: self.interrupt.clone(),
            budget: self.budget.clone(),
            queries: self.queries,
            last_winner: 0,
            races: self.races,
            race: self.race.clone(),
        }))
    }

    fn snapshot_bytes(&self) -> u64 {
        // A portfolio fork copies every member: the honest cost is the sum.
        self.members.iter().map(|m| m.snapshot_bytes()).sum()
    }

    fn watcher_bytes(&self) -> u64 {
        self.members.iter().map(|m| m.watcher_bytes()).sum()
    }

    fn collect_garbage(&mut self) -> u64 {
        let mut collected = 0;
        for (i, member) in self.members.iter_mut().enumerate() {
            let count = member.collect_garbage();
            // Report the primary's count so flow counters stay comparable
            // to a plain primary run (racers compact the same clauses).
            if i == 0 {
                collected = count;
            }
        }
        collected
    }

    fn set_gc_thresholds(&mut self, dead_fraction: f64, min_clauses: usize) {
        for member in &mut self.members {
            member.set_gc_thresholds(dead_fraction, min_clauses);
        }
    }

    fn set_interrupt(&mut self, check: Arc<dyn Fn() -> bool + Send + Sync>) {
        // Members receive a combined per-race predicate at solve time; the
        // degenerate single-member portfolio delegates solve_under directly,
        // so its member must hold the raw predicate too.
        if self.members.len() == 1 {
            self.members[0].set_interrupt(Arc::clone(&check));
        }
        self.interrupt = Some(check);
    }

    fn set_budget(&mut self, budget: Option<Arc<BudgetTracker>>) {
        // Only the primary owns the tracker (and charges conflicts to it);
        // racers poll the exhaustion latch through their race predicate, so
        // a portfolio drains a conflict ceiling at the same rate as a plain
        // primary run while an exhausted budget still stops every member.
        self.budget = budget.clone();
        let mut members = self.members.iter_mut();
        if let Some(primary) = members.next() {
            primary.set_budget(budget);
        }
        for racer in members {
            racer.set_budget(None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Solver;
    use std::time::Duration;

    fn builtin() -> Box<dyn SatBackend> {
        Box::new(Solver::new())
    }

    /// A member that answers nothing on its own: it mirrors the formula
    /// into an inner solver (so lockstep variable allocation holds) but
    /// `solve_under` stalls, ignoring its interrupt predicate for
    /// `ignore_for` before honouring it — a worst-case cancellation-latency
    /// fault.
    struct StallingBackend {
        inner: Solver,
        ignore_for: Duration,
        check: Option<Arc<dyn Fn() -> bool + Send + Sync>>,
    }

    impl StallingBackend {
        fn new(ignore_for: Duration) -> Self {
            StallingBackend {
                inner: Solver::new(),
                ignore_for,
                check: None,
            }
        }
    }

    impl SatBackend for StallingBackend {
        fn name(&self) -> String {
            "stalling".to_string()
        }

        fn new_var(&mut self) -> Var {
            self.inner.new_var()
        }

        fn add_clause(&mut self, lits: &[Lit]) -> bool {
            SatBackend::add_clause(&mut self.inner, lits)
        }

        fn solve_under(&mut self, _assumptions: &[Lit]) -> Result<SolveResult, BackendError> {
            let start = Instant::now();
            loop {
                std::thread::sleep(Duration::from_micros(200));
                if start.elapsed() >= self.ignore_for
                    && self.check.as_ref().is_some_and(|check| check())
                {
                    return Ok(SolveResult::Interrupted);
                }
                // Safety valve so a buggy test cannot hang the suite.
                if start.elapsed() > Duration::from_secs(10) {
                    return Ok(SolveResult::Interrupted);
                }
            }
        }

        fn model_value(&self, _var: Var) -> Option<bool> {
            None
        }

        fn stats(&self) -> BackendStats {
            SatBackend::stats(&self.inner)
        }

        fn set_interrupt(&mut self, check: Arc<dyn Fn() -> bool + Send + Sync>) {
            self.check = Some(check);
        }
    }

    fn portfolio(members: Vec<Box<dyn SatBackend>>, policy: RacePolicy) -> PortfolioBackend {
        PortfolioBackend::new(members, policy).expect("portfolio builds")
    }

    #[test]
    fn two_builtin_members_agree_and_the_primary_keeps_the_model() {
        let mut p = portfolio(vec![builtin(), builtin()], RacePolicy::DeterministicCex);
        let a = p.new_var();
        let b = p.new_var();
        p.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        p.add_clause(&[Lit::neg(a), Lit::pos(b)]);
        assert_eq!(p.solve_under(&[]).unwrap(), SolveResult::Sat);
        assert_eq!(p.model_value(b), Some(true));
        assert_eq!(p.solve_under(&[Lit::neg(b)]).unwrap(), SolveResult::Unsat);
        let stats = p.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.solver.race_solves, 2);
        assert_eq!(
            stats.solver.race_solves,
            p.race_stats().iter().map(|m| m.wins).sum::<u64>(),
            "every decided race has exactly one winner"
        );
    }

    #[test]
    fn a_stalling_racer_is_cancelled_and_its_latency_is_recorded() {
        let stall = Duration::from_millis(30);
        let mut p = portfolio(
            vec![builtin(), Box::new(StallingBackend::new(stall))],
            RacePolicy::DeterministicCex,
        );
        let a = p.new_var();
        p.add_clause(&[Lit::pos(a)]);
        assert_eq!(p.solve_under(&[]).unwrap(), SolveResult::Sat);
        assert_eq!(p.model_value(a), Some(true), "model comes from the primary");
        let race = p.race_stats();
        assert_eq!(race[0].wins, 1);
        assert_eq!(race[1].cancels, 1, "the stalling racer was cancelled");
        assert!(
            race[1].cancel_latency_us >= 10_000,
            "the fault ignored the cancel for ~{}ms, got {}us",
            stall.as_millis(),
            race[1].cancel_latency_us
        );
        let stats = p.stats();
        assert_eq!(stats.solver.race_cancels, 1);
        assert_eq!(
            stats.solver.race_cancel_latency_us,
            race[1].cancel_latency_us
        );
        assert_eq!(stats.solver.race_wins, 0, "primary wins are not racer wins");
    }

    #[test]
    fn an_unsat_racer_cancels_a_stalling_primary() {
        let mut p = portfolio(
            vec![
                Box::new(StallingBackend::new(Duration::from_millis(1))),
                builtin(),
            ],
            RacePolicy::DeterministicCex,
        );
        let a = p.new_var();
        p.add_clause(&[Lit::pos(a)]);
        p.add_clause(&[Lit::neg(a)]);
        assert_eq!(p.solve_under(&[]).unwrap(), SolveResult::Unsat);
        let race = p.race_stats();
        assert_eq!(race[1].wins, 1, "the racer's UNSAT proof decided the race");
        assert_eq!(race[0].cancels, 1, "the primary was cancelled mid-stall");
        let stats = p.stats();
        assert_eq!(stats.solver.race_wins, 1);
        assert_eq!(stats.solver.race_solves, 1);
    }

    #[test]
    fn fastest_cex_takes_the_winners_model() {
        let mut p = portfolio(
            vec![
                Box::new(StallingBackend::new(Duration::from_millis(1))),
                builtin(),
            ],
            RacePolicy::FastestCex,
        );
        let a = p.new_var();
        p.add_clause(&[Lit::pos(a)]);
        assert_eq!(p.solve_under(&[]).unwrap(), SolveResult::Sat);
        assert_eq!(
            p.model_value(a),
            Some(true),
            "fastest-cex reads the racer's model (the primary never answered)"
        );
        assert_eq!(p.stats().solver.race_wins, 1);
    }

    #[test]
    fn an_exhausted_budget_stops_every_member() {
        let mut p = portfolio(vec![builtin(), builtin()], RacePolicy::DeterministicCex);
        let a = p.new_var();
        let b = p.new_var();
        p.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        let cancel = Arc::new(AtomicBool::new(false));
        let tracker = Arc::new(BudgetTracker::start(
            crate::SolveBudget {
                deadline: Some(Duration::ZERO),
                conflict_ceiling: None,
            },
            Arc::clone(&cancel),
        ));
        p.set_budget(Some(tracker));
        assert_eq!(p.solve_under(&[]).unwrap(), SolveResult::Interrupted);
        assert!(
            cancel.load(Ordering::SeqCst),
            "the exhaustion latch tripped"
        );
        let stats = p.stats();
        assert_eq!(
            stats.solver.race_solves, 0,
            "an undecided race is not a solve"
        );
        // Fresh budget, same formula: the portfolio recovers.
        p.set_budget(None);
        assert_eq!(p.solve_under(&[]).unwrap(), SolveResult::Sat);
    }

    #[test]
    fn forks_mirror_every_member_and_carry_race_telemetry() {
        let mut p = portfolio(vec![builtin(), builtin()], RacePolicy::DeterministicCex);
        let a = p.new_var();
        let b = p.new_var();
        p.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        assert_eq!(p.solve_under(&[]).unwrap(), SolveResult::Sat);
        assert!(p.can_fork());
        assert!(p.snapshot_bytes() > 0);
        let mut fork = p.fork().expect("all members fork");
        assert_eq!(
            fork.stats().solver.race_solves,
            p.stats().solver.race_solves,
            "race telemetry carries over so per-task deltas stay monotone"
        );
        assert_eq!(fork.solve_under(&[Lit::neg(a)]).unwrap(), SolveResult::Sat);
        assert_eq!(fork.model_value(b), Some(true));
        // The fork is independent: its extra clause never reaches the parent.
        fork.add_clause(&[Lit::neg(b)]);
        assert_eq!(
            fork.solve_under(&[Lit::neg(a)]).unwrap(),
            SolveResult::Unsat
        );
        assert_eq!(p.solve_under(&[Lit::neg(a)]).unwrap(), SolveResult::Sat);
    }

    #[test]
    fn race_policies_parse_and_render_round_trip() {
        assert_eq!(
            "deterministic-cex".parse::<RacePolicy>().unwrap(),
            RacePolicy::DeterministicCex
        );
        assert_eq!(
            "fastest-cex".parse::<RacePolicy>().unwrap(),
            RacePolicy::FastestCex
        );
        assert!("fastest".parse::<RacePolicy>().is_err());
        assert_eq!(
            RacePolicy::DeterministicCex.to_string(),
            "deterministic-cex"
        );
        assert_eq!(RacePolicy::FastestCex.to_string(), "fastest-cex");
    }

    #[test]
    fn members_must_start_empty() {
        let mut dirty = Solver::new();
        dirty.new_var();
        let err = PortfolioBackend::new(
            vec![builtin(), Box::new(dirty)],
            RacePolicy::DeterministicCex,
        )
        .err()
        .expect("a pre-populated member is rejected");
        assert!(err.message.contains("must start empty"), "{}", err.message);
        assert!(
            PortfolioBackend::new(Vec::new(), RacePolicy::DeterministicCex).is_err(),
            "an empty portfolio is rejected"
        );
    }
}
