//! The flat clause arena backing the solver's clause database.
//!
//! All clauses — problem and learnt — live in **one `Vec<u32>`**: a clause is
//! a two-word header followed by its literal codes inline, and a
//! [`ClauseRef`] is nothing but the word offset of the header.  The layout is
//! the same idea MiniSat-lineage solvers use (a region allocator addressed by
//! 32-bit references) and it exists for one reason: everything that used to
//! be *per clause* becomes *per byte*.
//!
//! * **Cloning** the database — the fork primitive behind
//!   [`SatBackend::fork`](crate::SatBackend::fork) — is a single `Vec<u32>`
//!   memcpy instead of one heap allocation per clause.
//! * **Garbage collection** is an in-place compaction sweep: live clauses
//!   slide down over dead ones (the write cursor never passes the read
//!   cursor) and a relocation map translates old offsets to new ones so
//!   watcher lists can be patched instead of rebuilt.
//! * **Propagation** walks literals that are contiguous in memory, next to
//!   their header, instead of chasing a `Vec<Lit>` pointer per clause.
//!
//! # Clause layout
//!
//! ```text
//! word 0   header: size (bits 0..20) | lbd (bits 20..30, saturating)
//!                  | learnt (bit 30) | deleted (bit 31)
//! word 1   activity (f32 bit pattern)
//! word 2.. literal codes (size words)
//! ```
//!
//! # Reference stability
//!
//! A [`ClauseRef`] is stable across every operation **except**
//! [`compact`](ClauseArena::compact): allocation only appends, and deletion
//! only flips a header bit.  Compaction invalidates all old references and
//! hands the caller a relocation map (old offset → new offset, `u32::MAX`
//! for collected clauses); the solver uses it to patch watcher lists and
//! drops level-0 reason references outright.

use crate::literal::Lit;

/// Words of metadata preceding the literals of every clause (header +
/// activity).
pub(crate) const HEADER_WORDS: u32 = 2;

const SIZE_BITS: u32 = 20;
const SIZE_MASK: u32 = (1 << SIZE_BITS) - 1;
const LBD_BITS: u32 = 10;
const LBD_MASK: u32 = (1 << LBD_BITS) - 1;
const LEARNT_BIT: u32 = 1 << 30;
const DELETED_BIT: u32 = 1 << 31;

/// The offset marking a collected clause in the relocation map returned by
/// [`ClauseArena::compact`].
pub(crate) const RELOC_DEAD: u32 = u32::MAX;

/// A reference to a clause in a [`ClauseArena`]: the word offset of its
/// header.
///
/// References are plain offsets, so they are `Copy`, 4 bytes wide, and
/// meaningful only for the arena that issued them.  See the [module
/// docs](self) for the stability rules — in short, a `ClauseRef` survives
/// everything except compaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClauseRef(pub(crate) u32);

impl ClauseRef {
    /// The word offset of the clause header inside the arena.
    #[must_use]
    pub fn offset(self) -> u32 {
        self.0
    }
}

/// The outcome of one [`ClauseArena::compact`] sweep.
pub(crate) struct CompactOutcome {
    /// Old header offset → new header offset; [`RELOC_DEAD`] for collected
    /// clauses.  Indexed by *old* word offset (only header offsets are
    /// meaningful).
    pub reloc: Vec<u32>,
    /// Clauses dropped (deleted, satisfied, shrunk to a unit, or emptied).
    pub collected: u64,
    /// Dropped clauses that were learnt and **not** already flagged deleted
    /// (pre-flagged clauses had their learnt-gauge accounting done when they
    /// were flagged).
    pub learnt_removed: u64,
    /// Literals of clauses that shrank to a single literal: the caller must
    /// re-enqueue them as top-level units.
    pub units: Vec<Lit>,
    /// A clause lost every literal: the formula is unsatisfiable.
    pub found_empty: bool,
    /// Clauses remaining in the arena after the sweep.
    pub survivors: usize,
    /// Words freed by the sweep.
    pub words_reclaimed: u64,
}

/// The flat clause store.  See the [module docs](self) for the layout.
#[derive(Clone, Debug, Default)]
pub(crate) struct ClauseArena {
    data: Vec<u32>,
}

impl ClauseArena {
    #[cfg(test)]
    pub(crate) fn new() -> Self {
        ClauseArena::default()
    }

    /// Total words currently held (live and dead clauses alike) — the byte
    /// cost of cloning the store is `4 * words()`.
    pub(crate) fn words(&self) -> usize {
        self.data.len()
    }

    /// Appends a clause and returns its reference.
    pub(crate) fn alloc(&mut self, lits: &[Lit], learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() as u32 <= SIZE_MASK, "clause too large");
        let cr = ClauseRef(self.data.len() as u32);
        let mut header = lits.len() as u32;
        if learnt {
            header |= LEARNT_BIT;
        }
        self.data.reserve(HEADER_WORDS as usize + lits.len());
        self.data.push(header);
        self.data.push(0.0f32.to_bits());
        self.data.extend(lits.iter().map(|l| l.code()));
        cr
    }

    #[inline]
    pub(crate) fn len(&self, cr: ClauseRef) -> usize {
        (self.data[cr.0 as usize] & SIZE_MASK) as usize
    }

    #[inline]
    pub(crate) fn lit(&self, cr: ClauseRef, index: usize) -> Lit {
        Lit::from_code(self.data[cr.0 as usize + HEADER_WORDS as usize + index])
    }

    #[inline]
    pub(crate) fn swap_lits(&mut self, cr: ClauseRef, i: usize, j: usize) {
        let base = cr.0 as usize + HEADER_WORDS as usize;
        self.data.swap(base + i, base + j);
    }

    #[inline]
    pub(crate) fn is_deleted(&self, cr: ClauseRef) -> bool {
        self.data[cr.0 as usize] & DELETED_BIT != 0
    }

    pub(crate) fn set_deleted(&mut self, cr: ClauseRef) {
        self.data[cr.0 as usize] |= DELETED_BIT;
    }

    #[inline]
    pub(crate) fn is_learnt(&self, cr: ClauseRef) -> bool {
        self.data[cr.0 as usize] & LEARNT_BIT != 0
    }

    pub(crate) fn lbd(&self, cr: ClauseRef) -> u32 {
        (self.data[cr.0 as usize] >> SIZE_BITS) & LBD_MASK
    }

    /// Stores the clause's literal-block distance, saturating at the header
    /// field width (the ranking in `reduce_db` only needs "high is bad").
    pub(crate) fn set_lbd(&mut self, cr: ClauseRef, lbd: u32) {
        let header = &mut self.data[cr.0 as usize];
        *header &= !(LBD_MASK << SIZE_BITS);
        *header |= lbd.min(LBD_MASK) << SIZE_BITS;
    }

    pub(crate) fn activity(&self, cr: ClauseRef) -> f32 {
        f32::from_bits(self.data[cr.0 as usize + 1])
    }

    pub(crate) fn set_activity(&mut self, cr: ClauseRef, activity: f32) {
        self.data[cr.0 as usize + 1] = activity.to_bits();
    }

    /// Multiplies every clause activity by `factor` (activity rescaling).
    pub(crate) fn scale_activities(&mut self, factor: f32) {
        let mut off = 0usize;
        while off < self.data.len() {
            let size = (self.data[off] & SIZE_MASK) as usize;
            let act = f32::from_bits(self.data[off + 1]) * factor;
            self.data[off + 1] = act.to_bits();
            off += HEADER_WORDS as usize + size;
        }
    }

    /// Walks every clause (live and dead) in arena order.
    pub(crate) fn refs(&self) -> ClauseRefIter<'_> {
        ClauseRefIter {
            arena: self,
            offset: 0,
        }
    }

    /// One in-place compaction sweep: drops clauses flagged deleted, clauses
    /// with a literal satisfied at the top level, and clauses that shrink to
    /// fewer than two literals after stripping top-level-falsified literals;
    /// everything else slides down in place (the write cursor never passes
    /// the read cursor, so no scratch arena is allocated).
    ///
    /// `lit_value` must report the *top-level* assignment.  Watched
    /// positions 0 and 1 of surviving clauses are guaranteed unchanged: at
    /// decision level 0, after complete propagation, a watched literal can
    /// only be unassigned (a false watch would have been moved by propagation
    /// and a true watch means the clause is satisfied and dropped here), so
    /// stripping only ever removes literals at positions ≥ 2 and the caller
    /// can relocate watcher lists through [`CompactOutcome::reloc`] without
    /// re-selecting watches.
    pub(crate) fn compact(
        &mut self,
        mut lit_value: impl FnMut(Lit) -> Option<bool>,
    ) -> CompactOutcome {
        let old_words = self.data.len();
        let mut reloc: Vec<u32> = vec![RELOC_DEAD; old_words];
        let mut collected = 0u64;
        let mut learnt_removed = 0u64;
        let mut units: Vec<Lit> = Vec::new();
        let mut found_empty = false;
        let mut survivors = 0usize;
        let mut read = 0usize;
        let mut write = 0usize;
        while read < old_words {
            let header = self.data[read];
            let size = (header & SIZE_MASK) as usize;
            let next = read + HEADER_WORDS as usize + size;
            let deleted = header & DELETED_BIT != 0;
            let learnt = header & LEARNT_BIT != 0;
            let satisfied = !deleted
                && (read + HEADER_WORDS as usize..next)
                    .any(|w| lit_value(Lit::from_code(self.data[w])) == Some(true));
            if deleted || satisfied {
                collected += 1;
                if learnt && !deleted {
                    learnt_removed += 1;
                }
                read = next;
                continue;
            }
            // Strip literals falsified at the top level while copying down.
            let activity = self.data[read + 1];
            let lit_base = write + HEADER_WORDS as usize;
            let mut kept = 0usize;
            for w in read + HEADER_WORDS as usize..next {
                let code = self.data[w];
                if lit_value(Lit::from_code(code)).is_none() {
                    self.data[lit_base + kept] = code;
                    kept += 1;
                }
            }
            match kept {
                0 => {
                    // Every literal false at the top level: the formula is
                    // unsatisfiable (cannot normally happen after complete
                    // propagation, but stay sound).
                    found_empty = true;
                    collected += 1;
                }
                1 => {
                    units.push(Lit::from_code(self.data[lit_base]));
                    collected += 1;
                    if learnt {
                        learnt_removed += 1;
                    }
                }
                _ => {
                    self.data[write] = (header & !SIZE_MASK) | kept as u32;
                    self.data[write + 1] = activity;
                    reloc[read] = write as u32;
                    write = lit_base + kept;
                    survivors += 1;
                }
            }
            read = next;
        }
        self.data.truncate(write);
        CompactOutcome {
            reloc,
            collected,
            learnt_removed,
            units,
            found_empty,
            survivors,
            words_reclaimed: (old_words - write) as u64,
        }
    }
}

/// Iterator over the clause references of an arena, in offset order.
pub(crate) struct ClauseRefIter<'a> {
    arena: &'a ClauseArena,
    offset: usize,
}

impl Iterator for ClauseRefIter<'_> {
    type Item = ClauseRef;

    fn next(&mut self) -> Option<ClauseRef> {
        if self.offset >= self.arena.data.len() {
            return None;
        }
        let cr = ClauseRef(self.offset as u32);
        self.offset += HEADER_WORDS as usize + self.arena.len(cr);
        Some(cr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::Var;

    fn lits(codes: &[u32]) -> Vec<Lit> {
        codes.iter().map(|&c| Lit::from_code(c)).collect()
    }

    #[test]
    fn alloc_and_read_back() {
        let mut arena = ClauseArena::new();
        let a = Lit::pos(Var::from_index(0));
        let b = Lit::neg(Var::from_index(1));
        let cr = arena.alloc(&[a, b], false);
        assert_eq!(arena.len(cr), 2);
        assert_eq!(arena.lit(cr, 0), a);
        assert_eq!(arena.lit(cr, 1), b);
        assert!(!arena.is_learnt(cr));
        assert!(!arena.is_deleted(cr));
        assert_eq!(arena.words(), HEADER_WORDS as usize + 2);
    }

    #[test]
    fn header_fields_are_independent() {
        let mut arena = ClauseArena::new();
        let ls = lits(&[0, 2, 4]);
        let cr = arena.alloc(&ls, true);
        arena.set_lbd(cr, 7);
        arena.set_activity(cr, 1.5);
        assert_eq!(arena.len(cr), 3);
        assert_eq!(arena.lbd(cr), 7);
        assert!(arena.is_learnt(cr));
        assert_eq!(arena.activity(cr), 1.5);
        arena.set_deleted(cr);
        assert!(arena.is_deleted(cr));
        assert_eq!(arena.len(cr), 3);
        assert_eq!(arena.lbd(cr), 7);
    }

    #[test]
    fn lbd_saturates_at_the_field_width() {
        let mut arena = ClauseArena::new();
        let cr = arena.alloc(&lits(&[0, 2]), true);
        arena.set_lbd(cr, u32::MAX);
        assert_eq!(arena.lbd(cr), LBD_MASK);
    }

    #[test]
    fn refs_walk_every_clause_in_order() {
        let mut arena = ClauseArena::new();
        let c0 = arena.alloc(&lits(&[0, 2]), false);
        let c1 = arena.alloc(&lits(&[4, 6, 8]), true);
        let c2 = arena.alloc(&lits(&[1, 3]), false);
        assert_eq!(arena.refs().collect::<Vec<_>>(), vec![c0, c1, c2]);
    }

    /// The core relocation contract: compaction slides survivors down,
    /// reports old-offset → new-offset pairs, and marks collected clauses
    /// with `RELOC_DEAD`.
    #[test]
    fn compact_relocates_survivors_and_reports_dead_refs() {
        let mut arena = ClauseArena::new();
        let dead = arena.alloc(&lits(&[0, 2]), false);
        let live1 = arena.alloc(&lits(&[4, 6, 8]), false);
        let dead2 = arena.alloc(&lits(&[1, 3]), true);
        let live2 = arena.alloc(&lits(&[5, 7]), false);
        arena.set_deleted(dead);
        arena.set_deleted(dead2);
        arena.set_activity(live2, 2.5);

        let outcome = arena.compact(|_| None);
        assert_eq!(outcome.collected, 2);
        assert_eq!(outcome.survivors, 2);
        assert_eq!(
            outcome.learnt_removed, 0,
            "pre-flagged learnt not recounted"
        );
        assert_eq!(outcome.words_reclaimed, 2 * (HEADER_WORDS as u64 + 2));
        assert_eq!(outcome.reloc[dead.0 as usize], RELOC_DEAD);
        assert_eq!(outcome.reloc[dead2.0 as usize], RELOC_DEAD);
        // live1 slides into the slot of `dead`; live2 follows right after.
        let new1 = ClauseRef(outcome.reloc[live1.0 as usize]);
        let new2 = ClauseRef(outcome.reloc[live2.0 as usize]);
        assert_eq!(new1.offset(), 0);
        assert_eq!(new2.offset(), HEADER_WORDS + 3);
        assert_eq!(arena.lit(new1, 0), Lit::from_code(4));
        assert_eq!(arena.lit(new1, 2), Lit::from_code(8));
        assert_eq!(arena.lit(new2, 1), Lit::from_code(7));
        assert_eq!(arena.activity(new2), 2.5, "activity moves with the clause");
    }

    /// Stripping a falsified tail literal shrinks the clause in place without
    /// touching the watched positions 0 and 1.
    #[test]
    fn compact_strips_falsified_literals_preserving_watches() {
        let mut arena = ClauseArena::new();
        let v = |i: u32| Var::from_index(i);
        let cr = arena.alloc(&[Lit::pos(v(0)), Lit::pos(v(1)), Lit::pos(v(2))], false);
        // v2 is false at the top level, v0/v1 unassigned.
        let outcome = arena.compact(|l| (l.var() == v(2)).then_some(false));
        let moved = ClauseRef(outcome.reloc[cr.0 as usize]);
        assert_eq!(arena.len(moved), 2);
        assert_eq!(arena.lit(moved, 0), Lit::pos(v(0)));
        assert_eq!(arena.lit(moved, 1), Lit::pos(v(1)));
        assert_eq!(outcome.units.len(), 0);
        assert_eq!(outcome.words_reclaimed, 1);
    }

    #[test]
    fn compact_reports_units_and_satisfied_clauses() {
        let mut arena = ClauseArena::new();
        let v = |i: u32| Var::from_index(i);
        // Satisfied: v0 true.  Unit-after-strip: (v1 | v2) with v2 false.
        arena.alloc(&[Lit::pos(v(0)), Lit::pos(v(3))], false);
        arena.alloc(&[Lit::pos(v(1)), Lit::pos(v(2))], true);
        let outcome = arena.compact(|l| match l.var().index() {
            0 => Some(l.apply(true)),
            2 => Some(l.apply(false)),
            _ => None,
        });
        assert_eq!(outcome.survivors, 0);
        assert_eq!(outcome.collected, 2);
        assert_eq!(outcome.learnt_removed, 1);
        assert_eq!(outcome.units, vec![Lit::pos(v(1))]);
        assert_eq!(arena.words(), 0);
    }
}
