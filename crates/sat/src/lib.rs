//! # htd-sat
//!
//! A conflict-driven clause-learning (CDCL) SAT solver written from scratch for
//! the golden-free hardware-Trojan detection toolkit.
//!
//! The interval property checker in `htd-ipc` reduces every single-cycle
//! 2-safety property to one propositional satisfiability query over the
//! Tseitin encoding of the bit-blasted miter.  This crate provides the solver
//! for those queries.  It is a classic MiniSat-style CDCL solver:
//!
//! * two-watched-literal unit propagation,
//! * VSIDS variable activities with phase saving,
//! * first-UIP conflict analysis with clause minimisation,
//! * Luby restarts,
//! * activity-based learnt-clause database reduction,
//! * incremental solving under assumptions (used for the antecedent
//!   assumptions and per-property activation literals of the incremental
//!   detection session in `htd-core`),
//! * an arena-backed clause store: all clauses live in one flat `u32`
//!   buffer addressed by [`ClauseRef`] offsets, so cloning the solver — the
//!   fork primitive of the parallel detection flow — costs O(bytes), not
//!   one allocation per clause, and garbage collection is a single in-place
//!   compaction sweep (see the [`Solver`] module docs).
//!
//! The crate also defines the [`SatBackend`] trait — the minimal incremental
//! interface the detection flow drives (allocate variables, add clauses,
//! solve under assumptions, read the model) — implemented by [`Solver`], by
//! [`DimacsProcessBackend`] (shells out to any DIMACS-speaking solver binary
//! so the flow can be benchmarked against reference solvers) and by
//! [`IpasirBackend`] (drives any shared library exporting the standard
//! IPASIR incremental C ABI, keeping external solvers live across queries),
//! and by [`PortfolioBackend`] (mirrors the formula into N member backends
//! and races every query across all of them, first definitive answer wins —
//! see [`RacePolicy`] for the counterexample-determinism policies).
//!
//! # Example
//!
//! ```
//! use htd_sat::{Lit, Solver, SolveResult};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! // (a | b) & (!a | b) & (a | !b)
//! solver.add_clause([Lit::pos(a), Lit::pos(b)]);
//! solver.add_clause([Lit::neg(a), Lit::pos(b)]);
//! solver.add_clause([Lit::pos(a), Lit::neg(b)]);
//! assert_eq!(solver.solve(), SolveResult::Sat);
//! assert_eq!(solver.value(a), Some(true));
//! assert_eq!(solver.value(b), Some(true));
//! ```

// `deny`, not `forbid`: the IPASIR dynamic-library backend (`ipasir.rs`) is
// the single module allowed to use `unsafe` — it has to speak the C ABI of
// external solver libraries.  Everything else in the crate stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod backend;
mod budget;
mod dimacs;
mod ipasir;
mod literal;
mod portfolio;
mod solver;
mod watch;

pub use backend::{BackendError, BackendStats, DimacsProcessBackend, SatBackend};
pub use budget::{BudgetTracker, SolveBudget};
pub use dimacs::{parse_dimacs, to_dimacs, ParseDimacsError};
pub use ipasir::IpasirBackend;
pub use literal::{Lit, Var};
pub use portfolio::{PortfolioBackend, RacePolicy, RaceStats};
pub use solver::{
    ClauseRef, SolveResult, Solver, SolverStats, DEFAULT_GC_DEAD_FRACTION, DEFAULT_GC_MIN_CLAUSES,
};
