//! A [`SatBackend`] over any shared library exporting the IPASIR C ABI.
//!
//! [IPASIR](https://github.com/biotomas/ipasir) is the standard incremental
//! interface of the SAT competitions: a solver library exports
//! `ipasir_init` / `ipasir_add` / `ipasir_assume` / `ipasir_solve` /
//! `ipasir_val` / `ipasir_set_terminate` / `ipasir_release`, and a client
//! drives one solver handle across many closely related queries.  This is
//! exactly the shape of the detection flow's query sequence — and the piece
//! the DIMACS process backend cannot provide: a process backend re-reads
//! (and re-searches) the whole formula on every query, while an IPASIR
//! library keeps its clause database, learnt clauses and heuristic state
//! live between queries.
//!
//! [`IpasirBackend`] `dlopen`s a library at a user-supplied path (the CLI
//! syntax is `--backend ipasir:LIB.so`) and implements [`SatBackend`] on a
//! handle from it:
//!
//! * **Clauses are transmitted exactly once per backend instance.**  Every
//!   [`add_clause`](SatBackend::add_clause) streams the clause into the live
//!   handle immediately and appends it to an in-memory clause log; no query
//!   ever re-sends the formula.  The [`clauses_transmitted`]
//!   (IpasirBackend::clauses_transmitted) counter makes this testable.
//! * **Assumptions are per-query.**  [`solve_under`](SatBackend::solve_under)
//!   calls `ipasir_assume` for each assumption and then `ipasir_solve`;
//!   IPASIR semantics guarantee the assumptions do not persist.
//! * **Interrupts map to `ipasir_set_terminate`.**  The predicate installed
//!   with [`set_interrupt`](SatBackend::set_interrupt) is polled by the
//!   library during search; a firing check surfaces as
//!   [`SolveResult::Interrupted`] (IPASIR return value 0), so the parallel
//!   scheduler can cancel doomed speculative queries mid-solve.
//! * **Fork clones in O(bytes) when the library can, replays when it
//!   can't.**  The standard IPASIR ABI has no clone operation.  When the
//!   library exports the optional `ipasir_htd_clone` extension (the bundled
//!   shim does), [`fork`](SatBackend::fork) clones the underlying solver
//!   behind the ABI — the builtin solver's fixed-memcpy arena clone — and
//!   **zero** clauses cross the ABI: `clauses_transmitted` carries over
//!   flat.  Without the extension, fork opens a fresh handle and replays
//!   the clause log into it — O(clauses) per fork.  Both paths record one
//!   fork of [`snapshot_bytes`](SatBackend::snapshot_bytes) (the clause-log
//!   cost model, kept identical across paths so reports do not depend on
//!   which library is loaded), and work counters carry over exactly like
//!   the builtin backend's fork.
//!
//! # The `ipasir_htd_*` extension subset
//!
//! Standard IPASIR has no notion of decision-variable masking, so a generic
//! library ignores the scheduler's cone-focusing hints (sound, but the
//! search may wander and models of satisfiable queries may differ from the
//! builtin backend's).  The bundled shim library (`crates/ipasir-shim`,
//! built as `libipasir_htd.so`) additionally exports three optional symbols
//! that [`IpasirBackend`] resolves and uses when present:
//!
//! | symbol | mirrors |
//! |---|---|
//! | `ipasir_htd_mask_all_decisions(S)` | [`SatBackend::mask_all_decisions`] |
//! | `ipasir_htd_set_decision(S, var, eligible)` | [`SatBackend::set_decision_var`] |
//! | `ipasir_htd_begin_new_query(S)` | [`SatBackend::begin_new_query`] |
//! | `ipasir_htd_clone(S) -> S'` | [`SatBackend::fork`] (O(bytes) snapshot; see above) |
//!
//! `ipasir_htd_clone` returns an independent handle holding the same
//! formula, learnt clauses and heuristic state as `S`; the caller owns it
//! and releases it through `ipasir_release` like any other handle.  It is
//! resolved separately from the decision-masking trio — a library may
//! export either subset without the other.
//!
//! With the extensions resolved, a forked shim handle receives exactly the
//! operation sequence a builtin solver shard receives, which is what makes
//! detection reports byte-identical between `--backend builtin` and
//! `--backend ipasir:libipasir_htd.so` (the equivalence suite in
//! `tests/ipasir_equivalence.rs` checks this on every bundled benchmark).
//! Libraries without the extensions still produce equivalent *verdicts* —
//! masking is a search hint, never a soundness requirement.
//!
//! # Safety
//!
//! This module is the only place in `htd-sat` that uses `unsafe`: the
//! `dlopen`/`dlsym` FFI and the calls through the resolved function
//! pointers.  The invariants are local and documented on
//! [`IpasirLibrary`]: symbols are resolved once at load time against the
//! signatures of the IPASIR spec, every handle is created and released
//! through the same library, and a handle is only ever driven from one
//! thread at a time (`&mut self` on every mutating [`SatBackend`] method).
#![allow(unsafe_code)]

use std::ffi::{CStr, CString};
use std::os::raw::{c_char, c_int, c_void};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::backend::{BackendError, BackendStats, SatBackend};
use crate::budget::BudgetTracker;
use crate::literal::{Lit, Var};
use crate::solver::{SolveResult, SolverStats};

// The dynamic-linker primitives.  Since glibc 2.34 these live in libc
// itself (which every Rust binary on a glibc target links already); the
// declarations below are the POSIX signatures.
#[cfg(unix)]
extern "C" {
    fn dlopen(filename: *const c_char, flags: c_int) -> *mut c_void;
    fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
    fn dlclose(handle: *mut c_void) -> c_int;
    fn dlerror() -> *mut c_char;
}

/// POSIX `RTLD_NOW`: resolve every symbol at load time so a broken library
/// fails at [`IpasirBackend::load`] with a clear error, not mid-flow.
#[cfg(unix)]
const RTLD_NOW: c_int = 2;

type IpasirInit = unsafe extern "C" fn() -> *mut c_void;
type IpasirRelease = unsafe extern "C" fn(*mut c_void);
type IpasirAdd = unsafe extern "C" fn(*mut c_void, c_int);
type IpasirAssume = unsafe extern "C" fn(*mut c_void, c_int);
type IpasirSolve = unsafe extern "C" fn(*mut c_void) -> c_int;
type IpasirVal = unsafe extern "C" fn(*mut c_void, c_int) -> c_int;
type IpasirSignature = unsafe extern "C" fn() -> *const c_char;
type TerminateCallback = unsafe extern "C" fn(*mut c_void) -> c_int;
type IpasirSetTerminate = unsafe extern "C" fn(*mut c_void, *mut c_void, Option<TerminateCallback>);
type HtdMaskAll = unsafe extern "C" fn(*mut c_void);
type HtdSetDecision = unsafe extern "C" fn(*mut c_void, c_int, c_int);
type HtdBeginNewQuery = unsafe extern "C" fn(*mut c_void);
type HtdClone = unsafe extern "C" fn(*mut c_void) -> *mut c_void;

/// A loaded IPASIR shared library: the `dlopen` handle plus every resolved
/// entry point.  Shared (via `Arc`) between a backend and all its forks so
/// the library is `dlclose`d exactly once, after the last handle released.
///
/// # Safety invariants
///
/// * `handle` stays valid until `Drop` (nothing else closes it).
/// * The function pointers were resolved from this `handle` against the
///   IPASIR signatures; IPASIR requires implementations to support multiple
///   concurrently live solver instances, so calling `init` / driving
///   distinct handles from distinct threads is within the contract.  One
///   *handle* is never driven from two threads at once (enforced by
///   `&mut self` in [`IpasirBackend`]).
struct IpasirLibrary {
    handle: *mut c_void,
    path: PathBuf,
    signature: String,
    init: IpasirInit,
    release: IpasirRelease,
    add: IpasirAdd,
    assume: IpasirAssume,
    solve: IpasirSolve,
    val: IpasirVal,
    set_terminate: Option<IpasirSetTerminate>,
    htd_mask_all: Option<HtdMaskAll>,
    htd_set_decision: Option<HtdSetDecision>,
    htd_begin_new_query: Option<HtdBeginNewQuery>,
    htd_clone: Option<HtdClone>,
}

// SAFETY: the dlopen handle and the resolved code pointers are immutable
// after construction and the library is required (by the IPASIR spec) to
// support multiple concurrently live solver instances.
unsafe impl Send for IpasirLibrary {}
// SAFETY: same argument as `Send` above — the handle and code pointers are
// read-only after construction.
unsafe impl Sync for IpasirLibrary {}

impl Drop for IpasirLibrary {
    fn drop(&mut self) {
        // SAFETY: `handle` came from `dlopen` and is closed exactly once.
        #[cfg(unix)]
        unsafe {
            dlclose(self.handle);
        }
    }
}

impl std::fmt::Debug for IpasirLibrary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IpasirLibrary")
            .field("path", &self.path)
            .field("signature", &self.signature)
            .field("htd_extensions", &self.htd_set_decision.is_some())
            .finish_non_exhaustive()
    }
}

#[cfg(unix)]
fn last_dl_error() -> String {
    // SAFETY: `dlerror` returns either null or a pointer to a thread-local
    // NUL-terminated string that stays valid until the next dl* call.
    unsafe {
        let msg = dlerror();
        if msg.is_null() {
            "unknown dlopen error".to_string()
        } else {
            CStr::from_ptr(msg).to_string_lossy().into_owned()
        }
    }
}

impl IpasirLibrary {
    #[cfg(unix)]
    fn open(path: &Path) -> Result<Arc<IpasirLibrary>, BackendError> {
        let c_path = CString::new(path.as_os_str().as_encoded_bytes()).map_err(|_| {
            BackendError::new(format!(
                "library path `{}` contains an interior NUL byte",
                path.display()
            ))
        })?;
        // SAFETY: `c_path` is a valid NUL-terminated string; RTLD_NOW makes
        // unresolvable libraries fail here instead of at first call.
        let handle = unsafe { dlopen(c_path.as_ptr(), RTLD_NOW) };
        if handle.is_null() {
            return Err(BackendError::new(format!(
                "dlopen `{}` failed: {}",
                path.display(),
                last_dl_error()
            )));
        }
        let library = Self::resolve(handle, path);
        if library.is_err() {
            // A library missing required symbols must not stay mapped into
            // the process: `Drop` only runs for a fully constructed
            // `IpasirLibrary`, so close the handle here.
            // SAFETY: `handle` came from `dlopen` above and nothing else
            // owns it on this path.
            unsafe { dlclose(handle) };
        }
        library.map(Arc::new)
    }

    /// Resolves every IPASIR entry point from a live `dlopen` handle; on
    /// success the returned library owns the handle.
    #[cfg(unix)]
    fn resolve(handle: *mut c_void, path: &Path) -> Result<IpasirLibrary, BackendError> {
        let sym = |name: &str| -> Result<*mut c_void, BackendError> {
            let c_name = CString::new(name).expect("symbol names contain no NUL");
            // SAFETY: `handle` is a live dlopen handle, `c_name` is valid.
            let ptr = unsafe { dlsym(handle, c_name.as_ptr()) };
            if ptr.is_null() {
                Err(BackendError::new(format!(
                    "`{}` does not export the IPASIR symbol `{name}`",
                    path.display()
                )))
            } else {
                Ok(ptr)
            }
        };
        let optional = |name: &str| -> Option<*mut c_void> {
            let c_name = CString::new(name).expect("symbol names contain no NUL");
            // SAFETY: as above; a missing optional symbol is simply None.
            let ptr = unsafe { dlsym(handle, c_name.as_ptr()) };
            (!ptr.is_null()).then_some(ptr)
        };
        // SAFETY: each transmute reinterprets a non-null `dlsym` result as
        // the function type the IPASIR spec assigns to that symbol name.
        let library = unsafe {
            let signature = optional("ipasir_signature")
                .map(|p| {
                    let f: IpasirSignature = std::mem::transmute(p);
                    let s = f();
                    if s.is_null() {
                        String::new()
                    } else {
                        CStr::from_ptr(s).to_string_lossy().into_owned()
                    }
                })
                .unwrap_or_default();
            IpasirLibrary {
                handle,
                path: path.to_path_buf(),
                signature,
                init: std::mem::transmute::<*mut c_void, IpasirInit>(sym("ipasir_init")?),
                release: std::mem::transmute::<*mut c_void, IpasirRelease>(sym("ipasir_release")?),
                add: std::mem::transmute::<*mut c_void, IpasirAdd>(sym("ipasir_add")?),
                assume: std::mem::transmute::<*mut c_void, IpasirAssume>(sym("ipasir_assume")?),
                solve: std::mem::transmute::<*mut c_void, IpasirSolve>(sym("ipasir_solve")?),
                val: std::mem::transmute::<*mut c_void, IpasirVal>(sym("ipasir_val")?),
                set_terminate: optional("ipasir_set_terminate")
                    .map(|p| std::mem::transmute::<*mut c_void, IpasirSetTerminate>(p)),
                htd_mask_all: optional("ipasir_htd_mask_all_decisions")
                    .map(|p| std::mem::transmute::<*mut c_void, HtdMaskAll>(p)),
                htd_set_decision: optional("ipasir_htd_set_decision")
                    .map(|p| std::mem::transmute::<*mut c_void, HtdSetDecision>(p)),
                htd_begin_new_query: optional("ipasir_htd_begin_new_query")
                    .map(|p| std::mem::transmute::<*mut c_void, HtdBeginNewQuery>(p)),
                htd_clone: optional("ipasir_htd_clone")
                    .map(|p| std::mem::transmute::<*mut c_void, HtdClone>(p)),
            }
        };
        Ok(library)
    }

    #[cfg(not(unix))]
    fn open(path: &Path) -> Result<Arc<IpasirLibrary>, BackendError> {
        Err(BackendError::new(format!(
            "the IPASIR dynamic-library backend needs a Unix dynamic linker \
             (cannot load `{}` on this platform)",
            path.display()
        )))
    }
}

/// The boxed interrupt predicate handed to `ipasir_set_terminate` as its
/// `data` pointer; boxed so its address is stable for the library's polls.
type InterruptState = Arc<dyn Fn() -> bool + Send + Sync>;

/// The C-side trampoline the library polls: forwards to the installed Rust
/// predicate.  IPASIR: non-zero means "terminate the search".
// SAFETY: callers (the IPASIR library) must pass the `data` pointer that was
// registered alongside this trampoline; `set_interrupt` guarantees it is a
// live `Box<InterruptState>`.
unsafe extern "C" fn terminate_trampoline(data: *mut c_void) -> c_int {
    // SAFETY: `data` is the address of the live `Box<InterruptState>` owned
    // by the backend that installed this callback; the box outlives every
    // solve call (it is only replaced between queries).
    let check = unsafe { &*(data as *const InterruptState) };
    c_int::from(check())
}

/// IPASIR return values of `ipasir_solve`.
const IPASIR_SAT: c_int = 10;
const IPASIR_UNSAT: c_int = 20;
const IPASIR_INTERRUPTED: c_int = 0;

/// A [`SatBackend`] driving a solver handle of a `dlopen`ed IPASIR library.
///
/// See the [module docs](self) for the incrementality contract, the
/// fork-by-replay semantics and the optional `ipasir_htd_*` extension
/// subset.  Create one with [`IpasirBackend::load`]; the CLI syntax is
/// `--backend ipasir:LIB.so`.
pub struct IpasirBackend {
    library: Arc<IpasirLibrary>,
    /// The live solver handle of this instance (owned: released on drop).
    solver: *mut c_void,
    num_vars: u32,
    /// Every clause ever added, in order — the replay source for
    /// [`fork`](SatBackend::fork) and the byte basis of
    /// [`snapshot_bytes`](SatBackend::snapshot_bytes).  Shared
    /// copy-on-write (`Arc` + [`Arc::make_mut`]) so a fork clones a
    /// pointer, not the log: the replay over the ABI is the only
    /// per-clause fork cost, exactly what `bytes_cloned` records.
    clauses: Arc<Vec<Vec<Lit>>>,
    /// Clauses streamed into `solver` so far.  Stays equal to
    /// `clauses.len()` — the whole point of the backend — and is asserted
    /// on by the incrementality test in `tests/ipasir_equivalence.rs`.
    clauses_transmitted: u64,
    /// Exclusive upper bound on the variables this handle has actually
    /// seen (in a transmitted clause or an assumption).  `ipasir_val` is
    /// only defined for variables in the formula, so the model readback
    /// stops here — variables allocated by `new_var` but never mentioned
    /// are unconstrained and read as `None`, like the builtin solver's
    /// unassigned variables.
    transmitted_vars: u32,
    /// Model of the most recent SAT answer, indexed by variable.
    model: Vec<Option<bool>>,
    queries: u64,
    stats: SolverStats,
    known_unsat: bool,
    /// Keeps the predicate behind `ipasir_set_terminate`'s data pointer
    /// alive (and at a stable address) for as long as it is installed.
    /// This is the *combined* predicate (budget ∨ user interrupt); the two
    /// ingredients live in `user_interrupt` and `budget` below so either
    /// can be replaced without losing the other.
    interrupt: Option<Box<InterruptState>>,
    /// The caller-supplied interrupt predicate (scheduler cancellation).
    user_interrupt: Option<InterruptState>,
    /// Shared resource budget, folded into the terminate predicate and
    /// checked at query entry.  The external solver's conflicts are not
    /// observable, so the ceiling is charged by sibling builtin shards and
    /// enforced here at poll granularity.
    budget: Option<Arc<BudgetTracker>>,
}

// SAFETY: the handle is driven only through `&mut self` (and `fork`, which
// creates a *new* handle); IPASIR requires libraries to support multiple
// concurrently live instances, so moving an instance between threads and
// sharing `&self` (which never calls into the library except `fork`) is
// sound.
unsafe impl Send for IpasirBackend {}
// SAFETY: same argument as `Send` above — `&self` never calls into the
// library, so shared references cannot race the solver handle.
unsafe impl Sync for IpasirBackend {}

impl std::fmt::Debug for IpasirBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IpasirBackend")
            .field("library", &self.library)
            .field("num_vars", &self.num_vars)
            .field("clauses", &self.clauses.len())
            .field("queries", &self.queries)
            .field("known_unsat", &self.known_unsat)
            .field("interrupt", &self.interrupt.is_some())
            .finish_non_exhaustive()
    }
}

impl IpasirBackend {
    /// Loads the shared library at `path` and opens one solver handle.
    ///
    /// `path` is passed to `dlopen` verbatim: a path containing a `/` is
    /// loaded from the filesystem, a bare file name goes through the system
    /// library search path.
    ///
    /// # Errors
    ///
    /// [`BackendError`] if the library cannot be loaded or misses one of
    /// the required IPASIR symbols (`ipasir_init` / `ipasir_release` /
    /// `ipasir_add` / `ipasir_assume` / `ipasir_solve` / `ipasir_val`).
    /// `ipasir_set_terminate` and the `ipasir_htd_*` extensions are
    /// optional: without the former, interrupts are ignored (wasted work,
    /// never wrong answers); without the latter, decision-masking hints are
    /// ignored (see the [module docs](self)).
    pub fn load(path: impl AsRef<Path>) -> Result<Self, BackendError> {
        let library = IpasirLibrary::open(path.as_ref())?;
        // SAFETY: `init` was resolved from the live library.
        let solver = unsafe { (library.init)() };
        if solver.is_null() {
            return Err(BackendError::new(format!(
                "`{}`: ipasir_init returned a null solver handle",
                library.path.display()
            )));
        }
        Ok(IpasirBackend {
            library,
            solver,
            num_vars: 0,
            clauses: Arc::new(Vec::new()),
            clauses_transmitted: 0,
            transmitted_vars: 0,
            model: Vec::new(),
            queries: 0,
            stats: SolverStats::default(),
            known_unsat: false,
            interrupt: None,
            user_interrupt: None,
            budget: None,
        })
    }

    /// The library's `ipasir_signature` string (empty if the library does
    /// not export one).
    #[must_use]
    pub fn signature(&self) -> &str {
        &self.library.signature
    }

    /// `true` if the library exports the `ipasir_htd_*` decision-masking
    /// extension subset (see the [module docs](self)).
    #[must_use]
    pub fn has_htd_extensions(&self) -> bool {
        self.library.htd_set_decision.is_some()
            && self.library.htd_mask_all.is_some()
            && self.library.htd_begin_new_query.is_some()
    }

    /// `true` if the library exports the optional `ipasir_htd_clone`
    /// extension, letting [`fork`](SatBackend::fork) snapshot the handle in
    /// O(bytes) instead of replaying the clause log (see the
    /// [module docs](self)).
    #[must_use]
    pub fn has_clone_extension(&self) -> bool {
        self.library.htd_clone.is_some()
    }

    /// Forks this backend through the `ipasir_htd_clone` extension: the
    /// library snapshots the underlying solver in O(bytes) and **no clause
    /// re-crosses the ABI** — `clauses_transmitted` carries over flat.
    /// Returns `None` when the library does not export the extension (or
    /// its clone failed); [`fork`](SatBackend::fork) then falls back to
    /// opening a fresh handle and replaying the clause log.  Public so the
    /// equivalence suite can exercise the fast path explicitly.
    #[must_use]
    pub fn fork_native(&self) -> Option<IpasirBackend> {
        let clone = self.library.htd_clone?;
        // SAFETY: live handle; the extension contract returns an
        // independent handle owned by the caller (released through this
        // library's `ipasir_release`, like any handle), or null on failure.
        let solver = unsafe { clone(self.solver) };
        if solver.is_null() {
            return None;
        }
        let mut child = IpasirBackend {
            library: Arc::clone(&self.library),
            solver,
            num_vars: self.num_vars,
            // O(1): the log is copy-on-write shared.
            clauses: Arc::clone(&self.clauses),
            // The cloned handle already holds every clause — zero
            // re-transmissions; the counter carries over so the
            // one-transmission-per-clause invariant stays observable.
            clauses_transmitted: self.clauses_transmitted,
            transmitted_vars: self.transmitted_vars,
            model: Vec::new(),
            queries: self.queries,
            stats: self.stats,
            known_unsat: self.known_unsat,
            // The cloned library-side handle must not poll the parent's
            // *boxed* closure (it captures the parent's terminate-hook
            // pointer): the child re-installs its own below — but the
            // user-level predicate and the budget both carry over, so a
            // child forked after `set_interrupt` honours the inherited
            // cancel/ceiling hooks without a fresh `set_interrupt`.
            interrupt: None,
            user_interrupt: self.user_interrupt.clone(),
            // Budgets are per job: the fork charges the parent's tracker.
            budget: self.budget.clone(),
        };
        child.install_terminate();
        child.stats.fork_count += 1;
        // Same snapshot cost model as the replay path, so reports do not
        // depend on which fork path the loaded library supports.
        child.stats.bytes_cloned += self.snapshot_bytes();
        Some(child)
    }

    /// How many clauses this instance has streamed into its library handle.
    ///
    /// Equals the number of clauses added so far — each clause crosses the
    /// ABI exactly once per instance, regardless of how many queries ran.
    #[must_use]
    pub fn clauses_transmitted(&self) -> u64 {
        self.clauses_transmitted
    }

    /// Streams one clause into the handle (`ipasir_add` per literal plus
    /// the terminating 0).  Literals use [`Lit::to_dimacs`] — the 1-based
    /// signed convention the IPASIR ABI shares with DIMACS.
    fn transmit(&mut self, lits: &[Lit]) {
        for &lit in lits {
            self.transmitted_vars = self.transmitted_vars.max(lit.var().index() + 1);
            // SAFETY: `solver` is this instance's live handle.
            unsafe { (self.library.add)(self.solver, lit.to_dimacs() as c_int) };
        }
        // SAFETY: as above; 0 terminates the clause.
        unsafe { (self.library.add)(self.solver, 0) };
        self.clauses_transmitted += 1;
    }

    /// (Re-)installs the terminate callback from the current budget and
    /// user interrupt, or detaches it when neither is set.  Libraries
    /// without `ipasir_set_terminate` skip the mid-solve polls; budget
    /// exhaustion is still honoured at query entry.
    fn install_terminate(&mut self) {
        let Some(set_terminate) = self.library.set_terminate else {
            return;
        };
        if self.budget.is_none() && self.user_interrupt.is_none() {
            if self.interrupt.take().is_some() {
                // SAFETY: live handle; detaching with a null callback is the
                // documented way to uninstall.
                unsafe { set_terminate(self.solver, std::ptr::null_mut(), None) };
            }
            return;
        }
        let budget = self.budget.clone();
        let user = self.user_interrupt.clone();
        let combined: InterruptState = Arc::new(move || {
            budget.as_ref().is_some_and(|budget| budget.check())
                || user.as_ref().is_some_and(|check| check())
        });
        let state: Box<InterruptState> = Box::new(combined);
        let data = std::ptr::addr_of!(*state) as *mut c_void;
        // SAFETY: live handle; `data` points at the boxed predicate, which
        // `self.interrupt` keeps alive (and address-stable) until the
        // callback is replaced or the backend drops.
        unsafe { set_terminate(self.solver, data, Some(terminate_trampoline)) };
        self.interrupt = Some(state);
    }

    /// `true` when the budget or the user interrupt says the next query
    /// should not start at all.
    fn should_abandon(&self) -> bool {
        self.budget.as_ref().is_some_and(|budget| budget.check())
            || self.user_interrupt.as_ref().is_some_and(|check| check())
    }
}

impl SatBackend for IpasirBackend {
    fn name(&self) -> String {
        format!("ipasir:{}", self.library.path.display())
    }

    fn new_var(&mut self) -> Var {
        // IPASIR variables are implicit (the library grows its variable
        // space on demand); only the count is tracked here.
        let var = Var::from_index(self.num_vars);
        self.num_vars += 1;
        var
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        for lit in lits {
            assert!(
                lit.var().index() < self.num_vars,
                "literal {lit:?} refers to an unallocated variable"
            );
        }
        if self.known_unsat {
            return false;
        }
        if lits.is_empty() {
            self.known_unsat = true;
            return false;
        }
        Arc::make_mut(&mut self.clauses).push(lits.to_vec());
        self.transmit(lits);
        true
    }

    fn solve_under(&mut self, assumptions: &[Lit]) -> Result<SolveResult, BackendError> {
        self.queries += 1;
        if self.known_unsat {
            return Ok(SolveResult::Unsat);
        }
        // An already-exhausted budget (or tripped cancel) must not enter the
        // library at all — terminate callbacks are polled at the library's
        // leisure, and some libraries do not support them.
        if self.should_abandon() {
            self.model.clear();
            return Ok(SolveResult::Interrupted);
        }
        for &lit in assumptions {
            self.transmitted_vars = self.transmitted_vars.max(lit.var().index() + 1);
            // SAFETY: live handle; assumptions are per-query by IPASIR
            // semantics and need no cleanup.
            unsafe { (self.library.assume)(self.solver, lit.to_dimacs() as c_int) };
        }
        // SAFETY: live handle.
        let answer = unsafe { (self.library.solve)(self.solver) };
        match answer {
            IPASIR_SAT => {
                self.model.clear();
                // `ipasir_val` is only defined for variables the library
                // has seen; allocated-but-never-mentioned variables are
                // unconstrained and stay `None` (the builtin solver leaves
                // them unassigned too).
                let bound = self.transmitted_vars.min(self.num_vars);
                self.model.reserve(self.num_vars as usize);
                for index in 0..bound {
                    // SAFETY: live handle, in the SAT state `ipasir_val`
                    // requires; variables are queried positively.
                    let value = unsafe { (self.library.val)(self.solver, index as c_int + 1) };
                    self.model.push(match value {
                        v if v > 0 => Some(true),
                        v if v < 0 => Some(false),
                        _ => None,
                    });
                }
                self.model.resize(self.num_vars as usize, None);
                Ok(SolveResult::Sat)
            }
            IPASIR_UNSAT => {
                // Drop the previous SAT model: `model_value` promises
                // `None` when the most recent query was not satisfiable.
                self.model.clear();
                Ok(SolveResult::Unsat)
            }
            IPASIR_INTERRUPTED => {
                self.model.clear();
                Ok(SolveResult::Interrupted)
            }
            other => Err(BackendError::new(format!(
                "`{}`: ipasir_solve returned unexpected status {other} (want 10/20/0)",
                self.library.path.display()
            ))),
        }
    }

    fn model_value(&self, var: Var) -> Option<bool> {
        self.model.get(var.index() as usize).copied().flatten()
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            vars: self.num_vars as usize,
            clauses: self.clauses.len(),
            queries: self.queries,
            // `solves` is derived from `queries` (see the dimacs backend):
            // one hand-maintained counter, no drift.
            solver: SolverStats {
                solves: self.queries,
                ..self.stats
            },
        }
    }

    fn begin_new_query(&mut self) {
        if let Some(begin) = self.library.htd_begin_new_query {
            // SAFETY: live handle; optional extension resolved at load time.
            unsafe { begin(self.solver) };
        }
    }

    fn set_decision_var(&mut self, var: Var, eligible: bool) {
        if let Some(set_decision) = self.library.htd_set_decision {
            // SAFETY: live handle; optional extension resolved at load time.
            unsafe { set_decision(self.solver, var.index() as c_int + 1, c_int::from(eligible)) };
        }
    }

    fn mask_all_decisions(&mut self) {
        if let Some(mask_all) = self.library.htd_mask_all {
            // SAFETY: live handle; optional extension resolved at load time.
            unsafe { mask_all(self.solver) };
        }
    }

    fn can_fork(&self) -> bool {
        true
    }

    fn fork(&self) -> Option<Box<dyn SatBackend>> {
        // Fast path: the `ipasir_htd_clone` extension snapshots the solver
        // behind the ABI in O(bytes) with zero clause re-transmissions.
        if let Some(child) = self.fork_native() {
            return Some(Box::new(child));
        }
        // Portable fallback: the standard IPASIR ABI cannot clone a handle,
        // so a fork opens a fresh one and replays the clause log — each
        // clause still crosses the ABI exactly once *per instance*.  Work
        // counters carry over like the builtin backend's fork, plus one
        // recorded fork of `snapshot_bytes` so the (heavier) replay cost
        // model is visible.
        // SAFETY: `init` resolved from the live shared library.
        let solver = unsafe { (self.library.init)() };
        if solver.is_null() {
            return None;
        }
        let mut child = IpasirBackend {
            library: Arc::clone(&self.library),
            solver,
            num_vars: self.num_vars,
            // O(1): the log is copy-on-write shared; only the ABI replay
            // below is per-clause work.
            clauses: Arc::clone(&self.clauses),
            clauses_transmitted: 0,
            // Rebuilt by the replay below (assumption-only variables of the
            // parent are per-query state and need not carry over).
            transmitted_vars: 0,
            model: Vec::new(),
            queries: self.queries,
            stats: self.stats,
            known_unsat: self.known_unsat,
            // As in `fork_native`: drop the boxed closure, carry the
            // user-level predicate and the budget, re-arm below.
            interrupt: None,
            user_interrupt: self.user_interrupt.clone(),
            // Budgets are per job: the fork charges the parent's tracker.
            budget: self.budget.clone(),
        };
        for clause in self.clauses.iter() {
            child.transmit(clause);
        }
        child.install_terminate();
        child.stats.fork_count += 1;
        child.stats.bytes_cloned += self.snapshot_bytes();
        Some(Box::new(child))
    }

    fn snapshot_bytes(&self) -> u64 {
        // The in-memory clause log — the same snapshot cost model as the
        // DIMACS backend's clause-list clone, and deliberately identical
        // for the `ipasir_htd_clone` fast path and the replay fallback:
        // the external library's internal buffers are not observable, and
        // reports must not change with the loaded library's capabilities.
        crate::backend::clause_log_bytes(&self.clauses)
    }

    fn set_interrupt(&mut self, check: Arc<dyn Fn() -> bool + Send + Sync>) {
        self.user_interrupt = Some(check);
        self.install_terminate();
    }

    fn set_budget(&mut self, budget: Option<Arc<BudgetTracker>>) {
        self.budget = budget;
        self.install_terminate();
    }
}

impl Drop for IpasirBackend {
    fn drop(&mut self) {
        // Detach the terminate callback before releasing so the library
        // cannot poll a dangling predicate mid-teardown.
        if self.interrupt.is_some() {
            if let Some(set_terminate) = self.library.set_terminate {
                // SAFETY: live handle.
                unsafe { set_terminate(self.solver, std::ptr::null_mut(), None) };
            }
        }
        // SAFETY: `solver` came from this library's `ipasir_init` and is
        // released exactly once.
        unsafe { (self.library.release)(self.solver) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_library_is_a_backend_error_not_a_panic() {
        let err = IpasirBackend::load("/nonexistent/htd-test-ipasir.so").unwrap_err();
        assert!(err.message.contains("dlopen"), "{err}");
        assert!(err.message.contains("htd-test-ipasir"), "{err}");
    }

    #[cfg(unix)]
    #[test]
    fn library_without_ipasir_symbols_is_rejected_with_the_symbol_name() {
        // libc (already mapped into the process) is a loadable shared
        // object that certainly does not export `ipasir_init`.
        let candidates = [
            "libc.so.6",
            "libc.so",
            "/lib/x86_64-linux-gnu/libc.so.6",
            "/usr/lib/libc.so.6",
        ];
        let Some(err) = candidates.iter().find_map(|path| {
            IpasirBackend::load(path)
                .err()
                .filter(|e| !e.message.contains("dlopen"))
        }) else {
            // No loadable libc under a known name: nothing to assert here.
            return;
        };
        assert!(err.message.contains("ipasir_"), "{err}");
    }

    #[test]
    fn ipasir_literal_codes_are_one_based_and_signed() {
        let v0 = Var::from_index(0);
        let v6 = Var::from_index(6);
        assert_eq!(Lit::pos(v0).to_dimacs(), 1);
        assert_eq!(Lit::neg(v0).to_dimacs(), -1);
        assert_eq!(Lit::pos(v6).to_dimacs(), 7);
        assert_eq!(Lit::neg(v6).to_dimacs(), -7);
        // The ABI convention is the DIMACS rendering.
        assert_eq!(Lit::neg(v6).to_string(), "-7");
    }
}
