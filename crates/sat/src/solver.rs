//! The CDCL solver core.
//!
//! # Solver memory architecture
//!
//! Everything whose size scales with the formula lives in a fixed number of
//! flat buffers — the solver holds **no** per-clause or per-literal heap
//! allocations:
//!
//! * The clause database is an **arena**: one flat `Vec<u32>` holding every
//!   clause as a two-word header (size, LBD/glue, learnt and deleted flags,
//!   plus an `f32` activity word) followed by its literal codes inline — see
//!   [`crate::arena`] for the exact layout.  Clauses are addressed by
//!   [`ClauseRef`] word offsets, and reason references are
//!   `Option<ClauseRef>`.
//! * The watcher lists are a second arena ([`crate::watch`]): one flat
//!   `Vec` of `(ClauseRef, blocker)` pairs plus a per-literal
//!   `(start, len, cap)` range table.  A literal's list is a contiguous
//!   block; insertion grows a full block by amortised doubling (relocating
//!   it to the end of the buffer), and the holes that leaves behind are
//!   reclaimed by the same compaction sweep that collects dead clauses.
//! * Per-variable bookkeeping (assignments, phases, reasons, levels,
//!   activities, …) and the trail are plain flat vectors.
//!
//! Three consequences of the layout drive the incremental detection flow:
//!
//! * **Forking is O(bytes), with a fixed allocation count.**  [`Solver`] is
//!   `Clone`, and a clone is a constant number of flat-buffer memcpys — no
//!   allocation scales with the clause or variable count.
//!   [`snapshot_bytes`](Solver::snapshot_bytes) reports the byte cost of one
//!   clone in O(1) length arithmetic (clause arena + watcher arena +
//!   per-variable bookkeeping + trail; the derived decision-order heap is
//!   excluded), and `SatBackend::fork` records `fork_count` /
//!   `bytes_cloned` / `watcher_bytes_cloned` in the child's [`SolverStats`]
//!   so the cost model is observable all the way up in
//!   `DetectionReport::solver_totals`.
//! * **`ClauseRef`s are stable until compaction.**  Allocation appends,
//!   deletion flips a header bit, and only
//!   [`collect_garbage`](Solver::collect_garbage) moves clauses: one
//!   in-place sweep slides live clauses down over dead ones and returns a
//!   relocation map, which patches the watcher arena in place (watched
//!   positions 0 and 1 are provably unchanged at decision level 0, so no
//!   watch re-selection happens), packs its surviving blocks back-to-back,
//!   and drops the — level-0, never inspected — reason references.
//!   `SolverStats::arena_words_reclaimed` counts the freed words.
//! * **Retirement marks headers dead eagerly.**  When a literal becomes true
//!   at the top level (e.g. a retired activation literal's negation), every
//!   clause *watching* it is permanently satisfied; propagation flips those
//!   headers' deleted bits on the spot.  Dead clauses are therefore counted
//!   in O(1) — [`collect_garbage_if`](Solver::collect_garbage_if) compares
//!   two counters instead of scanning the database — and the physical
//!   reclamation is a single compaction pass.

pub use crate::arena::ClauseRef;
use crate::arena::{ClauseArena, CompactOutcome, RELOC_DEAD};
use crate::budget::BudgetTracker;
use crate::literal::{Lit, Var};
use crate::watch::{Watcher, WatcherArena};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Result of a satisfiability query.
///
/// # Example
///
/// ```
/// use htd_sat::{Lit, SolveResult, Solver};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// s.add_clause([Lit::pos(a)]);
/// s.add_clause([Lit::neg(a)]);
/// assert_eq!(s.solve(), SolveResult::Unsat);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SolveResult {
    /// A satisfying assignment was found; it can be queried through
    /// [`Solver::value`] or [`Solver::model`].
    Sat,
    /// The formula (under the given assumptions, if any) is unsatisfiable.
    Unsat,
    /// The search was abandoned because an installed interrupt check fired
    /// (see [`Solver::set_interrupt`]); the query is undecided.  Never
    /// returned unless an interrupt check is installed.
    Interrupted,
}

/// Aggregate counters describing the work performed by a [`Solver`].
///
/// Useful for the benchmark harness (property-runtime experiments) and for
/// regression tests on solver behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions taken.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database.
    pub learnt_clauses: u64,
    /// Number of learnt clauses removed by database reduction.
    pub removed_clauses: u64,
    /// Number of satisfiability queries answered (with or without
    /// assumptions).
    pub solves: u64,
    /// Number of clause garbage collections performed (arena compactions
    /// removing clauses retired by top-level units).
    pub gc_runs: u64,
    /// Total clauses physically removed by garbage collection (satisfied at
    /// the top level — e.g. behind retired activation literals — or already
    /// marked deleted by database reduction).
    pub clauses_collected: u64,
    /// Sum of the LBD ("glue") values of all clauses learnt so far; divide by
    /// the number of conflicts for the average glue, a quality measure of the
    /// learnt database.
    pub learnt_lbd_sum: u64,
    /// Snapshot forks recorded against this solver lineage: bumped on the
    /// child at every `SatBackend::fork`, and accounted per consumed solve
    /// task by the incremental session so the counter is schedule-invariant
    /// in flow reports.
    pub fork_count: u64,
    /// Bytes copied by the recorded forks (see
    /// [`Solver::snapshot_bytes`]): the O(bytes) cost model of the arena
    /// store — proportional to the live database size, never to the clause
    /// count.
    pub bytes_cloned: u64,
    /// The slice of [`bytes_cloned`](Self::bytes_cloned) spent copying the
    /// flat watcher arena (see [`Solver::watcher_bytes`]).  Zero for
    /// backends without an observable watcher store (external IPASIR
    /// libraries, subprocess backends).
    pub watcher_bytes_cloned: u64,
    /// Arena words freed by garbage-collection compaction sweeps.
    pub arena_words_reclaimed: u64,
    /// Solve tasks answered by a portfolio race (one per
    /// `PortfolioBackend::solve_under` that reached a verdict).  Zero for
    /// every non-portfolio backend.
    pub race_solves: u64,
    /// Portfolio races decided by a *racer* member rather than the primary
    /// (under `deterministic-cex` this means a racer proved UNSAT first and
    /// cancelled the primary; primary wins are `race_solves - race_wins`).
    pub race_wins: u64,
    /// Member solves cancelled mid-search because another member answered
    /// first (each cancelled member counts once per race).
    pub race_cancels: u64,
    /// Conflicts spent by members whose answer was discarded — the
    /// duplicated work a portfolio pays for its latency wins.  Only counts
    /// members that report conflict counters (the builtin solver; external
    /// IPASIR libraries are black boxes and contribute zero).
    pub race_wasted_conflicts: u64,
    /// Total observed cancel→return latency in microseconds: the time from
    /// raising a member's cancel flag to its `solve_under` returning, summed
    /// over all cancelled members.  Divide by
    /// [`race_cancels`](Self::race_cancels) for the mean latency the
    /// interrupt seams actually deliver.
    pub race_cancel_latency_us: u64,
}

impl SolverStats {
    /// Adds another stats record counter-by-counter (used to aggregate the
    /// work of several solver instances, e.g. the per-shard solvers of a
    /// parallel property check).  `learnt_clauses` is a gauge, not a counter;
    /// summed values are only meaningful for per-query deltas.
    pub fn accumulate(&mut self, other: &SolverStats) {
        // Exhaustive destructuring on purpose: adding a field to
        // `SolverStats` without deciding how it aggregates must be a compile
        // error here (and in `delta_since`), not a silently dropped counter
        // in `DetectionReport::solver_totals`.
        let SolverStats {
            decisions,
            propagations,
            conflicts,
            restarts,
            learnt_clauses,
            removed_clauses,
            solves,
            gc_runs,
            clauses_collected,
            learnt_lbd_sum,
            fork_count,
            bytes_cloned,
            watcher_bytes_cloned,
            arena_words_reclaimed,
            race_solves,
            race_wins,
            race_cancels,
            race_wasted_conflicts,
            race_cancel_latency_us,
        } = *other;
        self.decisions += decisions;
        self.propagations += propagations;
        self.conflicts += conflicts;
        self.restarts += restarts;
        self.learnt_clauses += learnt_clauses;
        self.removed_clauses += removed_clauses;
        self.solves += solves;
        self.gc_runs += gc_runs;
        self.clauses_collected += clauses_collected;
        self.learnt_lbd_sum += learnt_lbd_sum;
        self.fork_count += fork_count;
        self.bytes_cloned += bytes_cloned;
        self.watcher_bytes_cloned += watcher_bytes_cloned;
        self.arena_words_reclaimed += arena_words_reclaimed;
        self.race_solves += race_solves;
        self.race_wins += race_wins;
        self.race_cancels += race_cancels;
        self.race_wasted_conflicts += race_wasted_conflicts;
        self.race_cancel_latency_us += race_cancel_latency_us;
    }

    /// The counter-wise difference `self - earlier` (used to attribute work
    /// to one query given snapshots before and after).  The `learnt_clauses`
    /// gauge is also differenced, saturating at zero.
    #[must_use]
    pub fn delta_since(&self, earlier: &SolverStats) -> SolverStats {
        // Exhaustive destructuring — see `accumulate`.
        let SolverStats {
            decisions,
            propagations,
            conflicts,
            restarts,
            learnt_clauses,
            removed_clauses,
            solves,
            gc_runs,
            clauses_collected,
            learnt_lbd_sum,
            fork_count,
            bytes_cloned,
            watcher_bytes_cloned,
            arena_words_reclaimed,
            race_solves,
            race_wins,
            race_cancels,
            race_wasted_conflicts,
            race_cancel_latency_us,
        } = *earlier;
        SolverStats {
            decisions: self.decisions - decisions,
            propagations: self.propagations - propagations,
            conflicts: self.conflicts - conflicts,
            restarts: self.restarts - restarts,
            learnt_clauses: self.learnt_clauses.saturating_sub(learnt_clauses),
            removed_clauses: self.removed_clauses - removed_clauses,
            solves: self.solves - solves,
            gc_runs: self.gc_runs - gc_runs,
            clauses_collected: self.clauses_collected - clauses_collected,
            learnt_lbd_sum: self.learnt_lbd_sum - learnt_lbd_sum,
            fork_count: self.fork_count - fork_count,
            bytes_cloned: self.bytes_cloned - bytes_cloned,
            watcher_bytes_cloned: self.watcher_bytes_cloned - watcher_bytes_cloned,
            arena_words_reclaimed: self.arena_words_reclaimed - arena_words_reclaimed,
            race_solves: self.race_solves - race_solves,
            race_wins: self.race_wins - race_wins,
            race_cancels: self.race_cancels - race_cancels,
            race_wasted_conflicts: self.race_wasted_conflicts - race_wasted_conflicts,
            race_cancel_latency_us: self.race_cancel_latency_us - race_cancel_latency_us,
        }
    }
}

/// Max-heap entry ordering variables by activity.
#[derive(Clone, Copy, Debug)]
struct HeapEntry {
    activity: f64,
    var: Var,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.activity == other.activity && self.var == other.var
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Activities are finite, non-NaN by construction.
        self.activity
            .partial_cmp(&other.activity)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.var.cmp(&other.var))
    }
}

const VAR_DECAY: f64 = 0.95;
const CLAUSE_DECAY: f32 = 0.999;
const RESCALE_LIMIT: f64 = 1e100;
/// Clause activities are `f32` words in the arena, so they rescale much
/// earlier than the `f64` variable activities.
const CLAUSE_RESCALE_LIMIT: f32 = 1e20;
const RESTART_BASE: u64 = 100;
/// Learnt clauses with an LBD at or below this are kept by database
/// reduction regardless of activity ("glue clauses").
const GLUE_LBD: u32 = 2;

/// A shared predicate polled during search; `true` means "abandon the
/// query".  Clones of a solver share the same check through the `Arc`.
#[derive(Clone, Default)]
struct InterruptCheck(Option<Arc<dyn Fn() -> bool + Send + Sync>>);

impl std::fmt::Debug for InterruptCheck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "InterruptCheck(set)"
        } else {
            "InterruptCheck(unset)"
        })
    }
}

/// Default [`Solver::set_gc_thresholds`] dead fraction: compact once a
/// quarter of the database is dead; below that the propagation savings do
/// not pay for the compaction sweep.
pub const DEFAULT_GC_DEAD_FRACTION: f64 = 0.25;

/// Default [`Solver::set_gc_thresholds`] minimum database size.
pub const DEFAULT_GC_MIN_CLAUSES: usize = 128;

/// A conflict-driven clause-learning SAT solver.
///
/// The solver is `Clone`: a clone is an independent snapshot sharing no
/// state, which incremental clients use to fork per-query solvers off one
/// master clause database (see `SatBackend::fork` in this crate).  Because
/// the clause database is a flat arena, the clone cost is proportional to
/// its byte size — [`snapshot_bytes`](Self::snapshot_bytes) — not to the
/// clause count; see the [module docs](self) for the memory architecture.
///
/// See the [crate-level documentation](crate) for an overview and an example.
#[derive(Clone, Debug, Default)]
pub struct Solver {
    arena: ClauseArena,
    /// Clauses in the arena that can still participate in a query.
    live_clauses: usize,
    /// Clauses in the arena whose deleted header bit is set (flagged by
    /// database reduction or by eager satisfied-marking at the top level),
    /// awaiting physical removal by the next compaction.
    dead_clauses: usize,
    watches: WatcherArena,
    assigns: Vec<Option<bool>>,
    phase: Vec<bool>,
    reason: Vec<Option<ClauseRef>>,
    level: Vec<u32>,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f32,
    order: BinaryHeap<HeapEntry>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    seen: Vec<bool>,
    model: Vec<Option<bool>>,
    decision: Vec<bool>,
    ok: bool,
    stats: SolverStats,
    max_learnt: f64,
    interrupt: InterruptCheck,
    /// Shared resource budget: clones (parallel shards forked off one
    /// master) charge the same tracker through the `Arc`.
    budget: Option<Arc<BudgetTracker>>,
    /// Fraction of the clause database that must be dead before
    /// [`collect_garbage_if`](Self::collect_garbage_if) compacts.
    gc_dead_fraction: f64,
    /// Minimum database size before garbage collection is considered at all.
    gc_min_clauses: usize,
}

impl Solver {
    /// Creates an empty solver with no variables and no clauses.
    #[must_use]
    pub fn new() -> Self {
        Solver {
            var_inc: 1.0,
            cla_inc: 1.0,
            ok: true,
            max_learnt: 2000.0,
            gc_dead_fraction: DEFAULT_GC_DEAD_FRACTION,
            gc_min_clauses: DEFAULT_GC_MIN_CLAUSES,
            ..Default::default()
        }
    }

    /// Sets the garbage-collection thresholds used by
    /// [`collect_garbage_if`](Self::collect_garbage_if) (and by the
    /// [`SatBackend`](crate::SatBackend) `collect_garbage` hook): compaction
    /// runs once at least `dead_fraction` of a database of at least
    /// `min_clauses` clauses is dead.  Clones ([`SatBackend::fork`]) inherit
    /// the thresholds.
    ///
    /// [`SatBackend::fork`]: crate::SatBackend::fork
    pub fn set_gc_thresholds(&mut self, dead_fraction: f64, min_clauses: usize) {
        self.gc_dead_fraction = dead_fraction.clamp(0.0, 1.0);
        self.gc_min_clauses = min_clauses;
    }

    /// The configured `(dead_fraction, min_clauses)` garbage-collection
    /// thresholds.
    #[must_use]
    pub fn gc_thresholds(&self) -> (f64, usize) {
        (self.gc_dead_fraction, self.gc_min_clauses)
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assigns.len() as u32);
        self.assigns.push(None);
        self.phase.push(false);
        self.reason.push(None);
        self.level.push(0);
        self.activity.push(0.0);
        self.seen.push(false);
        self.model.push(None);
        self.decision.push(true);
        self.watches.add_literal();
        self.watches.add_literal();
        self.order.push(HeapEntry {
            activity: 0.0,
            var: v,
        });
        v
    }

    /// Number of variables allocated so far.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of live clauses (problem and learnt): clauses whose header is
    /// not flagged deleted.  Maintained as a counter — the arena is never
    /// scanned to answer this.
    #[must_use]
    pub fn num_clauses(&self) -> usize {
        self.live_clauses
    }

    /// Words currently held by the clause arena (live and dead clauses
    /// alike): the dominant term of [`snapshot_bytes`](Self::snapshot_bytes)
    /// is four times this.
    #[must_use]
    pub fn arena_words(&self) -> usize {
        self.arena.words()
    }

    /// The byte cost of cloning this solver — the fork cost model of the
    /// arena-backed store, computed in O(1) from buffer lengths (no list is
    /// ever walked).  Counts the clause arena, the watcher arena, the
    /// per-variable bookkeeping arrays and the trail (all length-derived, so
    /// two solvers that executed the same operations report identical
    /// bytes); the derived decision-order heap is excluded.
    /// `SatBackend::fork` records this value in the child's
    /// [`SolverStats::bytes_cloned`].
    #[must_use]
    pub fn snapshot_bytes(&self) -> u64 {
        let arena = self.arena.words() * 4;
        let per_var = self.num_vars()
            * (std::mem::size_of::<Option<bool>>() * 2 // assigns + model
                + std::mem::size_of::<bool>() * 3 // phase + seen + decision
                + std::mem::size_of::<Option<ClauseRef>>()
                + std::mem::size_of::<u32>() // level
                + std::mem::size_of::<f64>()); // activity
        let trail = self.trail.len() * std::mem::size_of::<Lit>();
        (arena + per_var + trail) as u64 + self.watches.bytes()
    }

    /// The watcher-arena slice of [`snapshot_bytes`](Self::snapshot_bytes):
    /// the flat watcher buffer (live entries, doubling slack and holes
    /// pending compaction) plus the per-literal range table.  O(1), and a
    /// pure function of the operation sequence.  `SatBackend::fork` records
    /// this in the child's [`SolverStats::watcher_bytes_cloned`].
    #[must_use]
    pub fn watcher_bytes(&self) -> u64 {
        self.watches.bytes()
    }

    /// Solver work counters accumulated since construction.
    #[must_use]
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Records one fork of `bytes` bytes (of which `watcher_bytes` copied
    /// the watcher arena) in the stats (called by `SatBackend::fork` on the
    /// freshly cloned child, and mirrored by incremental sessions into
    /// per-task work deltas).
    pub(crate) fn record_fork(&mut self, bytes: u64, watcher_bytes: u64) {
        self.stats.fork_count += 1;
        self.stats.bytes_cloned += bytes;
        self.stats.watcher_bytes_cloned += watcher_bytes;
    }

    /// Sets the learnt-clause count above which the solver halves its learnt
    /// database at the next restart (default 2000; the limit grows by 1.3x
    /// after every reduction).  Exposed as a tuning knob and so tests can
    /// force database reduction on small formulas.
    pub fn set_learnt_limit(&mut self, limit: f64) {
        self.max_learnt = limit;
    }

    /// Installs an interrupt check polled during search (at search entry,
    /// after every conflict, every 1024 decisions, and at every restart
    /// boundary).  When it returns `true` the current query is
    /// abandoned with [`SolveResult::Interrupted`]; the formula and all
    /// learnt clauses remain valid and the solver can be queried again.
    ///
    /// Parallel schedulers use this to cancel speculative queries whose
    /// results can no longer be consumed (e.g. sub-properties after a
    /// counterexample with a lower merge id).
    pub fn set_interrupt(&mut self, check: Arc<dyn Fn() -> bool + Send + Sync>) {
        self.interrupt = InterruptCheck(Some(check));
    }

    /// Removes the interrupt check installed by
    /// [`set_interrupt`](Self::set_interrupt).
    pub fn clear_interrupt(&mut self) {
        self.interrupt = InterruptCheck(None);
    }

    /// Attaches (or detaches, with `None`) a shared resource budget.  The
    /// solver charges one unit per conflict and abandons the query with
    /// [`SolveResult::Interrupted`] once the tracker reports exhaustion; the
    /// formula stays valid, exactly as with [`set_interrupt`].
    pub fn set_budget(&mut self, budget: Option<Arc<BudgetTracker>>) {
        self.budget = budget;
    }

    /// `true` if the budget is exhausted or the installed interrupt check
    /// (if any) fires.
    fn interrupted(&self) -> bool {
        self.budget.as_ref().is_some_and(|budget| budget.check())
            || self.interrupt.0.as_ref().is_some_and(|check| check())
    }

    /// Marks a variable as eligible (`true`, the default) or ineligible
    /// (`false`) for branching decisions.
    ///
    /// Incremental clients use this to confine the search to the cone of the
    /// current query: variables belonging to *retired* queries are purely
    /// definitional (acyclic Tseitin gate definitions whose guard literals
    /// have been forced off), so any partial model extends over them and the
    /// solver must not waste decisions — and conflicts — guessing their
    /// values.
    ///
    /// **Soundness caveat**: when the solver answers [`SolveResult::Sat`]
    /// with masked variables, those variables may be left unassigned
    /// ([`value`](Self::value) returns `None`).  The caller asserts, by
    /// masking, that every total assignment of the decision variables
    /// extends to the masked ones; this holds for definitional clauses but
    /// not for arbitrary CNF.
    pub fn set_decision_var(&mut self, var: Var, eligible: bool) {
        let vi = var.index() as usize;
        let was = self.decision[vi];
        self.decision[vi] = eligible;
        if eligible && !was && self.assigns[vi].is_none() {
            self.order.push(HeapEntry {
                activity: self.activity[vi],
                var,
            });
        }
    }

    /// Whether a variable is currently eligible for branching decisions.
    #[must_use]
    pub fn is_decision_var(&self, var: Var) -> bool {
        self.decision[var.index() as usize]
    }

    /// Resets the decision heuristics — VSIDS activities, saved phases and
    /// the variable order — to their initial state, keeping the clause
    /// database (including learnt clauses) intact.
    ///
    /// Incremental clients solving a *sequence of different queries* over one
    /// growing formula call this between queries: activities and phases tuned
    /// for the previous query's conflict structure can steer the next search
    /// into an irrelevant subspace (measured 5–10x slowdowns on the
    /// spurious-counterexample re-verification queries of the detection
    /// flow), while the learnt clauses remain useful.
    pub fn reset_decision_heuristics(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        self.var_inc = 1.0;
        for a in &mut self.activity {
            *a = 0.0;
        }
        for p in &mut self.phase {
            *p = false;
        }
        self.order.clear();
        for index in 0..self.num_vars() as u32 {
            let v = Var::from_index(index);
            if self.var_value(v).is_none() {
                self.order.push(HeapEntry {
                    activity: 0.0,
                    var: v,
                });
            }
        }
    }

    /// Adds a clause (a disjunction of literals) to the formula.
    ///
    /// Returns `false` if the formula has become trivially unsatisfiable at
    /// the top level (e.g. because the clause was empty after simplification),
    /// `true` otherwise.  Duplicate literals are removed and tautological
    /// clauses are ignored.
    ///
    /// # Panics
    ///
    /// Panics if a literal refers to a variable that has not been allocated
    /// with [`new_var`](Self::new_var).
    pub fn add_clause<I>(&mut self, lits: I) -> bool
    where
        I: IntoIterator<Item = Lit>,
    {
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        for l in &lits {
            assert!(
                (l.var().index() as usize) < self.num_vars(),
                "literal {l:?} refers to an unallocated variable"
            );
        }
        if !self.ok {
            return false;
        }
        debug_assert_eq!(self.decision_level(), 0);
        lits.sort_unstable();
        lits.dedup();
        // Tautology / top-level simplification.
        let mut simplified = Vec::with_capacity(lits.len());
        for (i, &l) in lits.iter().enumerate() {
            if i + 1 < lits.len() && lits[i + 1] == !l {
                // p and !p both present: tautology.
                return true;
            }
            match self.lit_value(l) {
                Some(true) => return true,
                Some(false) => {}
                None => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(simplified[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(&simplified, false);
                true
            }
        }
    }

    /// Solves the formula without assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves the formula under the given assumption literals.
    ///
    /// Assumptions are treated as temporary unit decisions: the result is
    /// relative to them, and they are retracted afterwards so the solver can
    /// be reused with different assumptions.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.stats.solves += 1;
        if !self.ok {
            return SolveResult::Unsat;
        }
        let result = self.search(assumptions);
        if result == SolveResult::Sat {
            self.model = self.assigns.clone();
        }
        self.cancel_until(0);
        result
    }

    /// The value of `var` in the most recent satisfying assignment, or `None`
    /// if the last call did not return [`SolveResult::Sat`] (or the variable
    /// did not exist then).
    #[must_use]
    pub fn value(&self, var: Var) -> Option<bool> {
        self.model.get(var.index() as usize).copied().flatten()
    }

    /// The most recent model as a vector indexed by variable index.
    #[must_use]
    pub fn model(&self) -> &[Option<bool>] {
        &self.model
    }

    /// `true` if the formula has already been proven unsatisfiable at the top
    /// level (no assumptions necessary).
    #[must_use]
    pub fn is_known_unsat(&self) -> bool {
        !self.ok
    }

    // ------------------------------------------------------------------
    // Internal machinery
    // ------------------------------------------------------------------

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn var_value(&self, v: Var) -> Option<bool> {
        self.assigns[v.index() as usize]
    }

    fn lit_value(&self, l: Lit) -> Option<bool> {
        self.var_value(l.var()).map(|b| l.apply(b))
    }

    fn attach_clause(&mut self, lits: &[Lit], learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cr = self.arena.alloc(lits, learnt);
        self.live_clauses += 1;
        let w0 = Watcher {
            clause: cr,
            blocker: lits[1],
        };
        let w1 = Watcher {
            clause: cr,
            blocker: lits[0],
        };
        self.watches.push((!lits[0]).code(), w0);
        self.watches.push((!lits[1]).code(), w1);
        if learnt {
            self.stats.learnt_clauses += 1;
        }
        cr
    }

    /// Flags a clause's header deleted and keeps the live/dead counters and
    /// the learnt gauge consistent.  Physical removal happens at the next
    /// compaction.
    fn mark_dead(&mut self, cr: ClauseRef) {
        debug_assert!(!self.arena.is_deleted(cr));
        self.arena.set_deleted(cr);
        self.live_clauses -= 1;
        self.dead_clauses += 1;
        if self.arena.is_learnt(cr) {
            self.stats.learnt_clauses = self.stats.learnt_clauses.saturating_sub(1);
        }
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) {
        let v = l.var().index() as usize;
        debug_assert!(self.assigns[v].is_none());
        self.assigns[v] = Some(!l.is_negated());
        self.phase[v] = !l.is_negated();
        self.reason[v] = reason;
        self.level[v] = self.decision_level() as u32;
        self.trail.push(l);
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn cancel_until(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level];
        while self.trail.len() > bound {
            let l = self.trail.pop().expect("trail length checked above");
            let v = l.var();
            let vi = v.index() as usize;
            self.assigns[vi] = None;
            self.reason[vi] = None;
            self.order.push(HeapEntry {
                activity: self.activity[vi],
                var: v,
            });
        }
        self.trail_lim.truncate(level);
        self.qhead = self.trail.len();
    }

    /// A literal became true at the top level: every clause *watching* it is
    /// permanently satisfied, so its header is flagged dead right here (the
    /// retirement path of incremental clients — a retired activation
    /// literal's guard clauses watch the literal that just went true).  The
    /// eager flag keeps the dead-clause count an O(1) counter and turns the
    /// next garbage collection into a pure compaction sweep; clauses
    /// satisfied only through an unwatched literal are still caught by the
    /// sweep itself.
    fn mark_satisfied_at_root(&mut self, p: Lit) {
        debug_assert_eq!(self.decision_level(), 0);
        // Clauses watching `p` registered themselves under (!p).code().
        let code = (!p).code();
        for k in 0..self.watches.len(code) {
            let cr = self.watches.get(code, k).clause;
            if !self.arena.is_deleted(cr) {
                self.mark_dead(cr);
            }
        }
    }

    fn propagate(&mut self) -> Option<ClauseRef> {
        let at_root = self.trail_lim.is_empty();
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            if at_root {
                self.mark_satisfied_at_root(p);
            }
            // Two-cursor compaction within p's range: `read` scans the
            // watchers, `keep` writes the survivors back over the prefix.
            // Pushes during the scan only ever target *other* literals'
            // ranges (asserted below), and a push relocates only the pushed
            // literal's block, so p's range stays put throughout.
            let code = p.code();
            let mut read = 0usize;
            let mut keep = 0usize;
            let mut conflict: Option<ClauseRef> = None;
            while read < self.watches.len(code) {
                let w = self.watches.get(code, read);
                read += 1;
                if self.arena.is_deleted(w.clause) {
                    continue;
                }
                if self.lit_value(w.blocker) == Some(true) {
                    self.watches.set(code, keep, w);
                    keep += 1;
                    continue;
                }
                let cr = w.clause;
                let false_lit = !p;
                if self.arena.lit(cr, 0) == false_lit {
                    self.arena.swap_lits(cr, 0, 1);
                }
                debug_assert_eq!(self.arena.lit(cr, 1), false_lit);
                let first = self.arena.lit(cr, 0);
                let new_watcher = Watcher {
                    clause: cr,
                    blocker: first,
                };
                if first != w.blocker && self.lit_value(first) == Some(true) {
                    self.watches.set(code, keep, new_watcher);
                    keep += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut found = false;
                for k in 2..self.arena.len(cr) {
                    let lk = self.arena.lit(cr, k);
                    if self.lit_value(lk) != Some(false) {
                        self.arena.swap_lits(cr, 1, k);
                        let watch_on = !self.arena.lit(cr, 1);
                        debug_assert_ne!(watch_on, p);
                        self.watches.push(watch_on.code(), new_watcher);
                        found = true;
                        break;
                    }
                }
                if found {
                    continue;
                }
                // Clause is unit under the current assignment, or conflicting.
                self.watches.set(code, keep, new_watcher);
                keep += 1;
                if self.lit_value(first) == Some(false) {
                    conflict = Some(cr);
                    self.qhead = self.trail.len();
                    // Slide the unexamined tail down over the gap.
                    while read < self.watches.len(code) {
                        let w = self.watches.get(code, read);
                        self.watches.set(code, keep, w);
                        keep += 1;
                        read += 1;
                    }
                    break;
                }
                self.unchecked_enqueue(first, Some(cr));
            }
            self.watches.truncate(code, keep);
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        let vi = v.index() as usize;
        self.activity[vi] += self.var_inc;
        if self.activity[vi] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1.0 / RESCALE_LIMIT;
            }
            self.var_inc *= 1.0 / RESCALE_LIMIT;
        }
        if self.var_value(v).is_none() {
            self.order.push(HeapEntry {
                activity: self.activity[vi],
                var: v,
            });
        }
    }

    fn bump_clause(&mut self, cr: ClauseRef) {
        let activity = self.arena.activity(cr) + self.cla_inc;
        self.arena.set_activity(cr, activity);
        if activity > CLAUSE_RESCALE_LIMIT {
            self.arena.scale_activities(1.0 / CLAUSE_RESCALE_LIMIT);
            self.cla_inc *= 1.0 / CLAUSE_RESCALE_LIMIT;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= VAR_DECAY;
        self.cla_inc /= CLAUSE_DECAY;
    }

    /// First-UIP conflict analysis.  Returns the learnt clause (asserting
    /// literal first) and the level to backtrack to.
    fn analyze(&mut self, mut confl: ClauseRef) -> (Vec<Lit>, usize) {
        let mut learnt: Vec<Lit> = Vec::new();
        let mut path_count: u32 = 0;
        let mut index = self.trail.len();
        let asserting: Option<Lit>;
        let current_level = self.decision_level() as u32;
        let mut skip_var: Option<Var> = None;

        loop {
            if self.arena.is_learnt(confl) {
                self.bump_clause(confl);
            }
            // Literals are read straight out of the arena by index — no
            // per-conflict clause copy.
            for k in 0..self.arena.len(confl) {
                let q = self.arena.lit(confl, k);
                if Some(q.var()) == skip_var {
                    continue;
                }
                let qv = q.var().index() as usize;
                if !self.seen[qv] && self.level[qv] > 0 {
                    self.seen[qv] = true;
                    self.bump_var(q.var());
                    if self.level[qv] >= current_level {
                        path_count += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next seen literal from the trail.
            let p = loop {
                index -= 1;
                let cand = self.trail[index];
                if self.seen[cand.var().index() as usize] {
                    break cand;
                }
            };
            self.seen[p.var().index() as usize] = false;
            path_count -= 1;
            if path_count == 0 {
                asserting = Some(!p);
                break;
            }
            confl = self.reason[p.var().index() as usize]
                .expect("non-UIP literal at the conflict level must have a reason");
            skip_var = Some(p.var());
        }

        let asserting = asserting.expect("loop always terminates with an asserting literal");

        // Conflict-clause minimisation: drop literals implied by the rest.
        for &l in &learnt {
            self.seen[l.var().index() as usize] = true;
        }
        let mut minimised: Vec<Lit> = Vec::with_capacity(learnt.len());
        for &l in &learnt {
            if !self.is_redundant(l) {
                minimised.push(l);
            }
        }
        for &l in &learnt {
            self.seen[l.var().index() as usize] = false;
        }

        let mut clause = Vec::with_capacity(minimised.len() + 1);
        clause.push(asserting);
        clause.extend(minimised);

        // Compute the backtrack level: the second-highest level in the clause.
        let bt_level = if clause.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..clause.len() {
                if self.level[clause[i].var().index() as usize]
                    > self.level[clause[max_i].var().index() as usize]
                {
                    max_i = i;
                }
            }
            clause.swap(1, max_i);
            self.level[clause[1].var().index() as usize] as usize
        };

        (clause, bt_level)
    }

    /// A learnt-clause literal is redundant if its reason clause contains only
    /// literals that are already marked `seen` (or assigned at level 0).
    fn is_redundant(&self, l: Lit) -> bool {
        let vi = l.var().index() as usize;
        let Some(cr) = self.reason[vi] else {
            return false;
        };
        (0..self.arena.len(cr)).all(|k| {
            let q = self.arena.lit(cr, k);
            let qv = q.var().index() as usize;
            q.var() == l.var() || self.seen[qv] || self.level[qv] == 0
        })
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(entry) = self.order.pop() {
            if self.var_value(entry.var).is_none() && self.decision[entry.var.index() as usize] {
                return Some(entry.var);
            }
        }
        // Fallback scan guarantees completeness even if the lazy heap lost an
        // entry (e.g. stale activities after rescaling).
        (0..self.num_vars() as u32)
            .map(Var::from_index)
            .find(|&v| self.var_value(v).is_none() && self.decision[v.index() as usize])
    }

    /// Halves the learnt-clause database, keeping the clauses most likely to
    /// be useful again: glue clauses (LBD ≤ [`GLUE_LBD`]) are always kept,
    /// and the rest are ranked by LBD first and activity second.
    ///
    /// Removal flags arena headers dead and detaches exactly the watchers of
    /// the dropped clauses — work proportional to the number of flagged
    /// clauses; the arena words are reclaimed by the next
    /// [`collect_garbage`](Self::collect_garbage) compaction sweep.
    fn reduce_db(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        let locked: std::collections::HashSet<ClauseRef> =
            self.reason.iter().filter_map(|r| *r).collect();
        let mut learnt_refs: Vec<ClauseRef> = self
            .arena
            .refs()
            .filter(|&cr| {
                self.arena.is_learnt(cr)
                    && !self.arena.is_deleted(cr)
                    && self.arena.len(cr) > 2
                    && self.arena.lbd(cr) > GLUE_LBD
                    && !locked.contains(&cr)
            })
            .collect();
        if learnt_refs.len() < 2 {
            return;
        }
        // Worst first: high LBD, then low activity (ties broken by arena
        // offset so the order — and therefore the search — is deterministic).
        learnt_refs.sort_by(|&a, &b| {
            self.arena
                .lbd(b)
                .cmp(&self.arena.lbd(a))
                .then_with(|| {
                    self.arena
                        .activity(a)
                        .partial_cmp(&self.arena.activity(b))
                        .unwrap_or(Ordering::Equal)
                })
                .then_with(|| a.cmp(&b))
        });
        let to_remove = learnt_refs.len() / 2;
        let mut removed = 0;
        for &cr in learnt_refs.iter().take(to_remove) {
            self.mark_dead(cr);
            self.detach_watchers(cr);
            removed += 1;
        }
        self.stats.removed_clauses += removed;
    }

    /// Removes the two watcher entries of a clause (watchers live on the
    /// negations of the first two literals — the invariant `propagate`
    /// maintains).  Each removal is a swap-remove within the literal's
    /// range: O(list length) to find the entry but O(1) to drop it, instead
    /// of the two full `retain` rebuilds the nested-`Vec` layout needed.
    fn detach_watchers(&mut self, cr: ClauseRef) {
        let l0 = self.arena.lit(cr, 0);
        let l1 = self.arena.lit(cr, 1);
        self.watches.detach((!l0).code(), cr);
        self.watches.detach((!l1).code(), cr);
    }

    /// Physically removes dead clauses from the arena: clauses flagged
    /// deleted (by database reduction, or eagerly when a top-level unit
    /// satisfied them — the retired-activation-literal path of incremental
    /// clients) and clauses satisfied at the top level through an unwatched
    /// literal.  Literals falsified at the top level (e.g. positive
    /// occurrences of retired activation literals inside learnt clauses) are
    /// stripped from the surviving clauses.
    ///
    /// The sweep is a single in-place compaction pass over the arena
    /// ([`ClauseArena::compact`]): survivors slide down, and the returned
    /// relocation map patches the watcher lists in place — watched positions
    /// are provably stable at decision level 0, so no watch re-selection or
    /// re-propagation happens.  Must be called at decision level 0 (between
    /// queries).  Returns the number of clauses collected.
    pub fn collect_garbage(&mut self) -> u64 {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return 0;
        }
        let assigns = &self.assigns;
        let CompactOutcome {
            reloc,
            collected,
            learnt_removed,
            units,
            found_empty,
            survivors,
            words_reclaimed,
        } = self
            .arena
            .compact(|l| assigns[l.var().index() as usize].map(|b| l.apply(b)));
        if found_empty {
            // All literals of some clause were false at the top level: the
            // formula is unsatisfiable (cannot normally happen after complete
            // propagation, but stay sound).
            self.ok = false;
        }
        self.live_clauses = survivors;
        self.dead_clauses = 0;
        // Patch the watcher arena through the relocation map: watchers of
        // collected clauses drop out, survivors keep their (unchanged)
        // watched positions under their new offsets.  The same sweep packs
        // the watcher buffer — holes and doubling slack left by block
        // growth are reclaimed here, on the clause-GC cadence.
        self.watches.sweep(|w| {
            let new = reloc[w.clause.0 as usize];
            if new == RELOC_DEAD {
                return false;
            }
            w.clause = ClauseRef(new);
            true
        });
        // Old clause references are invalid now.  At level 0 no reason is
        // ever inspected (conflict analysis skips level-0 literals), so they
        // are simply dropped.
        for r in &mut self.reason {
            *r = None;
        }
        // Units uncovered by stripping are enqueued and propagated now; the
        // surviving watches are already consistent, so propagation only
        // processes the new units.
        for u in units {
            match self.lit_value(u) {
                Some(false) => {
                    self.ok = false;
                }
                Some(true) => {}
                None => self.unchecked_enqueue(u, None),
            }
        }
        if self.propagate().is_some() {
            self.ok = false;
        }
        self.stats.gc_runs += 1;
        self.stats.clauses_collected += collected;
        self.stats.learnt_clauses = self.stats.learnt_clauses.saturating_sub(learnt_removed);
        self.stats.arena_words_reclaimed += words_reclaimed;
        collected
    }

    /// Runs [`collect_garbage`](Self::collect_garbage) only when at least
    /// `min_fraction` of the clause database is flagged dead.  Thanks to the
    /// eager satisfied-marking in propagation, the check compares two
    /// counters — no database scan.  Returns the number of clauses collected
    /// (0 when below the threshold).
    pub fn collect_garbage_if(&mut self, min_fraction: f64) -> u64 {
        let total = self.live_clauses + self.dead_clauses;
        if total < self.gc_min_clauses || !self.ok || self.decision_level() != 0 {
            return 0;
        }
        if (self.dead_clauses as f64) < min_fraction * total as f64 {
            return 0;
        }
        self.collect_garbage()
    }

    /// Marks every variable ineligible for branching in one sweep.
    ///
    /// Incremental clients forking a per-query solver call this and then
    /// re-enable exactly the cone of the query with
    /// [`set_decision_var`](Self::set_decision_var); the same soundness
    /// contract applies.
    pub fn mask_all_decisions(&mut self) {
        for d in &mut self.decision {
            *d = false;
        }
        self.order.clear();
    }

    /// The literal-block distance of a clause whose literals are currently
    /// assigned: the number of distinct decision levels it touches.
    fn clause_lbd(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits
            .iter()
            .map(|l| self.level[l.var().index() as usize])
            .collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    fn search(&mut self, assumptions: &[Lit]) -> SolveResult {
        if self.interrupted() {
            return SolveResult::Interrupted;
        }
        let mut conflicts_since_restart: u64 = 0;
        let mut restart_count: u64 = 0;
        let mut restart_limit = RESTART_BASE * Self::luby_value(restart_count);

        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if let Some(budget) = &self.budget {
                    budget.charge_conflict();
                }
                if self.interrupted() {
                    self.cancel_until(0);
                    return SolveResult::Interrupted;
                }
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SolveResult::Unsat;
                }
                let (learnt, bt_level) = self.analyze(confl);
                // LBD must be computed while the clause's literals are still
                // assigned (before backtracking).
                let lbd = self.clause_lbd(&learnt);
                self.stats.learnt_lbd_sum += u64::from(lbd);
                self.cancel_until(bt_level);
                let asserting = learnt[0];
                if learnt.len() == 1 {
                    self.unchecked_enqueue(asserting, None);
                } else {
                    let cr = self.attach_clause(&learnt, true);
                    self.arena.set_lbd(cr, lbd);
                    self.bump_clause(cr);
                    self.unchecked_enqueue(asserting, Some(cr));
                }
                self.decay_activities();
            } else {
                // No conflict.
                if conflicts_since_restart >= restart_limit {
                    // Restart boundaries are the cheapest place to honour a
                    // cancellation promptly — the trail is about to be torn
                    // down anyway — so portfolio races and doomed-task
                    // cancels are never stretched across a whole restart
                    // interval.
                    if self.interrupted() {
                        self.cancel_until(0);
                        return SolveResult::Interrupted;
                    }
                    restart_count += 1;
                    self.stats.restarts += 1;
                    conflicts_since_restart = 0;
                    restart_limit = RESTART_BASE * Self::luby_value(restart_count);
                    self.cancel_until(0);
                    if self.stats.learnt_clauses as f64 > self.max_learnt {
                        self.reduce_db();
                        self.max_learnt *= 1.3;
                    }
                    continue;
                }
                // Apply pending assumptions, one decision level each.
                let mut assumption_conflict = false;
                while self.decision_level() < assumptions.len() {
                    let a = assumptions[self.decision_level()];
                    match self.lit_value(a) {
                        Some(true) => {
                            self.new_decision_level();
                        }
                        Some(false) => {
                            assumption_conflict = true;
                            break;
                        }
                        None => {
                            self.new_decision_level();
                            self.unchecked_enqueue(a, None);
                            break;
                        }
                    }
                }
                if assumption_conflict {
                    return SolveResult::Unsat;
                }
                if self.qhead < self.trail.len() {
                    continue;
                }
                // Regular decision.
                match self.pick_branch_var() {
                    None => return SolveResult::Sat,
                    Some(v) => {
                        self.stats.decisions += 1;
                        if self.stats.decisions & 1023 == 0 && self.interrupted() {
                            self.cancel_until(0);
                            return SolveResult::Interrupted;
                        }
                        self.new_decision_level();
                        let phase = self.phase[v.index() as usize];
                        self.unchecked_enqueue(Lit::new(v, !phase), None);
                    }
                }
            }
        }
    }

    /// `luby(i)` for the restart schedule, with a simple, clearly-correct
    /// recursive definition (the sequence is short in practice).
    fn luby_value(mut i: u64) -> u64 {
        // Find the finite subsequence that contains index `i`, and the size of
        // that subsequence.
        let mut size = 1u64;
        while size < i + 1 {
            size = 2 * size + 1;
        }
        while size - 1 != i {
            size = (size - 1) / 2;
            i %= size;
        }
        size.div_ceil(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(solver_vars: &[Var], i: i32) -> Lit {
        let v = solver_vars[(i.unsigned_abs() - 1) as usize];
        if i > 0 {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    fn make_solver(num_vars: usize) -> (Solver, Vec<Var>) {
        let mut s = Solver::new();
        let vars = (0..num_vars).map(|_| s.new_var()).collect();
        (s, vars)
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn single_unit_clause() {
        let (mut s, v) = make_solver(1);
        s.add_clause([lit(&v, 1)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v[0]), Some(true));
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let (mut s, v) = make_solver(1);
        s.add_clause([lit(&v, 1)]);
        assert!(!s.add_clause([lit(&v, -1)]));
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.is_known_unsat());
    }

    #[test]
    fn simple_implication_chain() {
        // (x1) & (!x1 | x2) & (!x2 | x3) forces x3.
        let (mut s, v) = make_solver(3);
        s.add_clause([lit(&v, 1)]);
        s.add_clause([lit(&v, -1), lit(&v, 2)]);
        s.add_clause([lit(&v, -2), lit(&v, 3)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v[2]), Some(true));
    }

    #[test]
    fn pigeonhole_two_pigeons_one_hole_is_unsat() {
        // p1h1, p2h1, !(p1h1 & p2h1)
        let (mut s, v) = make_solver(2);
        s.add_clause([lit(&v, 1)]);
        s.add_clause([lit(&v, 2)]);
        s.add_clause([lit(&v, -1), lit(&v, -2)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_three_pigeons_two_holes_is_unsat() {
        // Variables p_{i,j}: pigeon i sits in hole j (i in 0..3, j in 0..2).
        let (mut s, v) = make_solver(6);
        let p = |i: usize, j: usize| lit(&v, (i * 2 + j + 1) as i32);
        // Every pigeon in some hole.
        for i in 0..3 {
            s.add_clause([p(i, 0), p(i, 1)]);
        }
        // No two pigeons share a hole.
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause([!p(i1, j), !p(i2, j)]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn the_interrupt_check_is_polled_at_restart_boundaries() {
        use std::sync::atomic::{AtomicU64, Ordering};
        // PHP(7,6): pigeon i (0..7) sits in hole j (0..6) — unsatisfiable,
        // and hard enough to force several Luby restarts.
        let (mut s, v) = make_solver(42);
        let p = |i: usize, j: usize| lit(&v, (i * 6 + j + 1) as i32);
        for i in 0..7 {
            s.add_clause((0..6).map(|j| p(i, j)));
        }
        for j in 0..6 {
            for i1 in 0..7 {
                for i2 in (i1 + 1)..7 {
                    s.add_clause([!p(i1, j), !p(i2, j)]);
                }
            }
        }
        let polls = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&polls);
        s.set_interrupt(Arc::new(move || {
            counter.fetch_add(1, Ordering::Relaxed);
            false
        }));
        assert_eq!(s.solve(), SolveResult::Unsat);
        let stats = s.stats();
        assert!(stats.restarts >= 1, "PHP(7,6) must restart: {stats:?}");
        // Poll sites: one at search entry, one after every conflict, one per
        // 1024 decisions, and one at every restart boundary.  Dropping the
        // restart-boundary poll makes this undercount by exactly `restarts`.
        let expected = 1 + stats.conflicts + stats.decisions / 1024 + stats.restarts;
        assert_eq!(polls.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn xor_chain_is_sat_with_consistent_model() {
        // x1 xor x2 = 1, x2 xor x3 = 1, x1 xor x3 = 0
        let (mut s, v) = make_solver(3);
        let add_xor = |s: &mut Solver, a: Lit, b: Lit, val: bool| {
            if val {
                s.add_clause([a, b]);
                s.add_clause([!a, !b]);
            } else {
                s.add_clause([!a, b]);
                s.add_clause([a, !b]);
            }
        };
        add_xor(&mut s, lit(&v, 1), lit(&v, 2), true);
        add_xor(&mut s, lit(&v, 2), lit(&v, 3), true);
        add_xor(&mut s, lit(&v, 1), lit(&v, 3), false);
        assert_eq!(s.solve(), SolveResult::Sat);
        let m1 = s.value(v[0]).unwrap();
        let m2 = s.value(v[1]).unwrap();
        let m3 = s.value(v[2]).unwrap();
        assert!(m1 ^ m2);
        assert!(m2 ^ m3);
        assert!(!(m1 ^ m3));
    }

    #[test]
    fn xor_chain_inconsistent_is_unsat() {
        // x1 xor x2 = 1, x2 xor x3 = 1, x1 xor x3 = 1 is inconsistent.
        let (mut s, v) = make_solver(3);
        let add_xor = |s: &mut Solver, a: Lit, b: Lit, val: bool| {
            if val {
                s.add_clause([a, b]);
                s.add_clause([!a, !b]);
            } else {
                s.add_clause([!a, b]);
                s.add_clause([a, !b]);
            }
        };
        add_xor(&mut s, lit(&v, 1), lit(&v, 2), true);
        add_xor(&mut s, lit(&v, 2), lit(&v, 3), true);
        add_xor(&mut s, lit(&v, 1), lit(&v, 3), true);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_do_not_persist() {
        let (mut s, v) = make_solver(2);
        s.add_clause([lit(&v, 1), lit(&v, 2)]);
        assert_eq!(s.solve_with_assumptions(&[lit(&v, -1)]), SolveResult::Sat);
        assert_eq!(s.value(v[1]), Some(true));
        // Conflicting assumptions make it unsat, but only temporarily.
        assert_eq!(
            s.solve_with_assumptions(&[lit(&v, -1), lit(&v, -2)]),
            SolveResult::Unsat
        );
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn assumption_of_already_implied_literal() {
        let (mut s, v) = make_solver(2);
        s.add_clause([lit(&v, 1)]);
        s.add_clause([lit(&v, -1), lit(&v, 2)]);
        assert_eq!(
            s.solve_with_assumptions(&[lit(&v, 1), lit(&v, 2)]),
            SolveResult::Sat
        );
        assert_eq!(s.solve_with_assumptions(&[lit(&v, -2)]), SolveResult::Unsat);
        // Formula itself stays satisfiable.
        assert!(!s.is_known_unsat());
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn tautological_clause_is_ignored() {
        let (mut s, v) = make_solver(2);
        assert!(s.add_clause([lit(&v, 1), lit(&v, -1)]));
        assert!(s.add_clause([lit(&v, 2)]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v[1]), Some(true));
    }

    #[test]
    fn duplicate_literals_are_deduplicated() {
        let (mut s, v) = make_solver(1);
        assert!(s.add_clause([lit(&v, 1), lit(&v, 1), lit(&v, 1)]));
        assert_eq!(s.num_clauses(), 0); // became a unit assignment, not a clause
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v[0]), Some(true));
    }

    #[test]
    fn model_assigns_every_variable() {
        let (mut s, v) = make_solver(5);
        s.add_clause([lit(&v, 1), lit(&v, 2)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        for var in &v {
            assert!(s.value(*var).is_some(), "variable {var:?} left unassigned");
        }
    }

    #[test]
    fn stats_are_populated() {
        let (mut s, v) = make_solver(3);
        s.add_clause([lit(&v, 1), lit(&v, 2)]);
        s.add_clause([lit(&v, -1), lit(&v, 3)]);
        s.solve();
        let st = s.stats();
        assert!(st.decisions > 0 || st.propagations > 0);
    }

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(Solver::luby_value(i as u64), e, "luby({i})");
        }
    }

    /// At-most-one constraints plus at-least-one over n variables with a
    /// forbidden assignment: forces the solver through real conflict analysis.
    #[test]
    fn exactly_one_with_forbidden_choices() {
        let n = 8;
        let (mut s, v) = make_solver(n);
        let lits: Vec<Lit> = (1..=n as i32).map(|i| lit(&v, i)).collect();
        s.add_clause(lits.clone());
        for i in 0..n {
            for j in (i + 1)..n {
                s.add_clause([!lits[i], !lits[j]]);
            }
        }
        // Forbid the first n-1 choices.
        for l in lits.iter().take(n - 1) {
            s.add_clause([!*l]);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v[n - 1]), Some(true));
    }

    /// The arena cost model: clone bytes grow with the literal payload, and
    /// `snapshot_bytes` is derived from lengths only, so two solvers with the
    /// same content report the same cost.
    #[test]
    fn snapshot_bytes_track_the_arena() {
        let (mut s, v) = make_solver(4);
        let before = s.snapshot_bytes();
        let watchers_before = s.watcher_bytes();
        s.add_clause([lit(&v, 1), lit(&v, 2), lit(&v, 3)]);
        let after = s.snapshot_bytes();
        // One clause: 2 header words + 3 literal words, plus two fresh
        // watcher blocks of the minimum capacity (4 slots each).
        let watcher_delta = s.watcher_bytes() - watchers_before;
        assert_eq!(
            watcher_delta,
            (2 * 4 * std::mem::size_of::<Watcher>()) as u64
        );
        assert_eq!(after - before, 5 * 4 + watcher_delta);
        assert_eq!(s.arena_words(), 5);
        let clone = s.clone();
        assert_eq!(clone.snapshot_bytes(), after);
        assert_eq!(clone.watcher_bytes(), s.watcher_bytes());
    }

    /// `snapshot_bytes` is pure length arithmetic: two solvers that executed
    /// the same operation sequence — including the watcher-block growth and
    /// swap-removes it implies — report byte-identical clone costs.
    #[test]
    fn identical_length_state_reports_identical_bytes() {
        let build = || {
            let (mut s, v) = make_solver(6);
            for i in 1..=4 {
                s.add_clause([lit(&v, -i), lit(&v, i + 1), lit(&v, 6)]);
            }
            s.add_clause([lit(&v, 1), lit(&v, 2)]);
            assert_eq!(s.solve_with_assumptions(&[lit(&v, -6)]), SolveResult::Sat);
            s
        };
        let (a, b) = (build(), build());
        assert_eq!(a.snapshot_bytes(), b.snapshot_bytes());
        assert_eq!(a.watcher_bytes(), b.watcher_bytes());
        assert!(a.watcher_bytes() > 0);
        // The watcher arena is part of — never exceeds — the clone cost.
        assert!(a.watcher_bytes() < a.snapshot_bytes());
    }

    /// Retiring a literal that guard clauses *watch* flags them dead on the
    /// spot: the dead count is maintained eagerly, so the threshold check in
    /// `collect_garbage_if` needs no database scan.
    #[test]
    fn root_units_mark_watching_clauses_dead_eagerly() {
        let (mut s, v) = make_solver(3);
        // Binary guard clauses watch both literals, so retiring !3 (making
        // it true) marks them satisfied-dead eagerly.
        s.add_clause([lit(&v, -3), lit(&v, 1)]);
        s.add_clause([lit(&v, -3), lit(&v, 2)]);
        assert_eq!(s.num_clauses(), 2);
        s.add_clause([lit(&v, -3)]);
        assert_eq!(s.num_clauses(), 0, "watched-satisfied clauses flagged dead");
        // The physical words are still in the arena until compaction.
        assert!(s.arena_words() > 0);
        let collected = s.collect_garbage();
        assert_eq!(collected, 2);
        assert_eq!(s.arena_words(), 0);
        assert!(s.stats().arena_words_reclaimed >= 8);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    /// Compaction relocates surviving clauses and patches the watcher lists
    /// through the relocation map: propagation keeps working — and keeps
    /// answering correctly — right after a sweep that moved every survivor.
    #[test]
    fn compaction_relocates_watchers_and_preserves_propagation() {
        let (mut s, v) = make_solver(6);
        // A guarded block that will die, in front of a live implication
        // chain whose clauses must all relocate downward.
        s.add_clause([lit(&v, -5), lit(&v, 1), lit(&v, 2)]);
        s.add_clause([lit(&v, -5), lit(&v, 3), lit(&v, 4)]);
        s.add_clause([lit(&v, -1), lit(&v, 2)]);
        s.add_clause([lit(&v, -2), lit(&v, 3)]);
        s.add_clause([lit(&v, -3), lit(&v, 4)]);
        let words_before = s.arena_words();
        s.add_clause([lit(&v, -5)]); // retire the guard
        let collected = s.collect_garbage();
        assert_eq!(collected, 2);
        assert!(s.arena_words() < words_before);
        assert_eq!(s.num_clauses(), 3);
        // The relocated watchers must still drive the implication chain.
        assert_eq!(s.solve_with_assumptions(&[lit(&v, 1)]), SolveResult::Sat);
        assert_eq!(s.value(v[1]), Some(true));
        assert_eq!(s.value(v[2]), Some(true));
        assert_eq!(s.value(v[3]), Some(true));
        assert_eq!(
            s.solve_with_assumptions(&[lit(&v, 1), lit(&v, -4)]),
            SolveResult::Unsat
        );
    }

    /// Top-level assignments strip falsified tail literals during compaction
    /// without disturbing the watched positions.
    #[test]
    fn compaction_strips_falsified_literals_from_survivors() {
        let (mut s, v) = make_solver(4);
        s.add_clause([lit(&v, 1), lit(&v, 2), lit(&v, 3)]);
        s.add_clause([lit(&v, -4)]); // unrelated root unit
        s.add_clause([lit(&v, -3)]); // falsifies the tail literal
        s.collect_garbage();
        assert_eq!(s.num_clauses(), 1);
        // Header (2 words) + the two surviving literals.
        assert_eq!(s.arena_words(), 4);
        assert_eq!(s.solve_with_assumptions(&[lit(&v, -1)]), SolveResult::Sat);
        assert_eq!(s.value(v[1]), Some(true));
    }

    /// `collect_garbage`'s `found_empty` path: a clause whose every literal
    /// is false at the top level makes the formula UNSAT.  Complete
    /// propagation normally turns such a clause into a conflict long before
    /// GC sees it, so this white-box test plants the assignment directly —
    /// the path exists purely to stay sound if that invariant ever breaks,
    /// and this pins its behaviour.
    #[test]
    fn collect_garbage_found_empty_makes_the_solver_unsat() {
        let (mut s, v) = make_solver(2);
        s.add_clause([lit(&v, 1), lit(&v, 2)]);
        assert_eq!(s.num_clauses(), 1);
        // Falsify both literals behind propagation's back.
        s.assigns[v[0].index() as usize] = Some(false);
        s.assigns[v[1].index() as usize] = Some(false);
        let collected = s.collect_garbage();
        assert_eq!(collected, 1, "the empty survivor is collected");
        assert_eq!(s.num_clauses(), 0);
        assert!(s.is_known_unsat());
        assert_eq!(s.solve(), SolveResult::Unsat);
        // GC on an already-unsat solver is a no-op, not a second sweep.
        assert_eq!(s.collect_garbage(), 0);
    }

    /// `collect_garbage`'s unit-uncovering path: stripping top-level-false
    /// literals can leave a single survivor, which must be enqueued and
    /// propagated (not silently dropped with the clause).  As above, the
    /// assignment is planted white-box — after complete propagation a
    /// watched literal pair can never both be false without a conflict.
    #[test]
    fn collect_garbage_enqueues_units_uncovered_by_stripping() {
        let (mut s, v) = make_solver(3);
        // (x1 | x2 | x3); x2 and x3 become false without trail entries.
        s.add_clause([lit(&v, 1), lit(&v, 2), lit(&v, 3)]);
        s.assigns[v[1].index() as usize] = Some(false);
        s.assigns[v[2].index() as usize] = Some(false);
        let collected = s.collect_garbage();
        assert_eq!(collected, 1, "the unit's clause leaves the arena");
        assert_eq!(s.num_clauses(), 0);
        // The uncovered unit x1 was enqueued at the top level...
        assert_eq!(s.assigns[v[0].index() as usize], Some(true));
        // ...and the solver stays consistent.
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v[0]), Some(true));
        assert_eq!(s.solve_with_assumptions(&[lit(&v, -1)]), SolveResult::Unsat);
    }

    /// Two clauses uncovering *contradicting* units: the first enqueues,
    /// the second finds its literal already false — a contradiction the
    /// units loop must turn into UNSAT, not an enqueue.
    #[test]
    fn collect_garbage_detects_contradicting_uncovered_units() {
        let (mut s, v) = make_solver(3);
        s.add_clause([lit(&v, 1), lit(&v, 2), lit(&v, 3)]);
        s.add_clause([lit(&v, -1), lit(&v, 2), lit(&v, 3)]);
        s.assigns[v[1].index() as usize] = Some(false);
        s.assigns[v[2].index() as usize] = Some(false);
        let collected = s.collect_garbage();
        assert_eq!(collected, 2, "both unit-uncovering clauses leave the arena");
        assert!(s.is_known_unsat());
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn accumulate_and_delta_cover_every_counter() {
        let mut a = SolverStats {
            decisions: 1,
            propagations: 2,
            conflicts: 3,
            restarts: 4,
            learnt_clauses: 5,
            removed_clauses: 6,
            solves: 7,
            gc_runs: 8,
            clauses_collected: 9,
            learnt_lbd_sum: 10,
            fork_count: 11,
            bytes_cloned: 12,
            watcher_bytes_cloned: 13,
            arena_words_reclaimed: 14,
            race_solves: 15,
            race_wins: 16,
            race_cancels: 17,
            race_wasted_conflicts: 18,
            race_cancel_latency_us: 19,
        };
        let b = a;
        a.accumulate(&b);
        assert_eq!(a.fork_count, 22);
        assert_eq!(a.bytes_cloned, 24);
        assert_eq!(a.watcher_bytes_cloned, 26);
        assert_eq!(a.arena_words_reclaimed, 28);
        assert_eq!(a.race_solves, 30);
        assert_eq!(a.race_wins, 32);
        assert_eq!(a.race_cancels, 34);
        assert_eq!(a.race_wasted_conflicts, 36);
        assert_eq!(a.race_cancel_latency_us, 38);
        let delta = a.delta_since(&b);
        assert_eq!(delta, b);
    }
}
