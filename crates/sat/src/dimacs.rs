//! Minimal DIMACS CNF import/export.
//!
//! The detection flow itself never touches DIMACS, but the format is handy for
//! debugging individual property queries with external solvers and for
//! regression-testing the solver against reference instances.

use crate::literal::{Lit, Var};
use crate::solver::Solver;
use std::error::Error;
use std::fmt;

/// Error returned by [`parse_dimacs`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseDimacsError {
    /// A token could not be parsed as an integer literal.
    InvalidToken(String),
    /// A clause referenced a variable above the declared variable count.
    VariableOutOfRange(i64),
    /// The final clause was not terminated with a `0`.
    UnterminatedClause,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDimacsError::InvalidToken(t) => write!(f, "invalid DIMACS token `{t}`"),
            ParseDimacsError::VariableOutOfRange(v) => {
                write!(f, "variable {v} exceeds the declared variable count")
            }
            ParseDimacsError::UnterminatedClause => write!(f, "unterminated clause"),
        }
    }
}

impl Error for ParseDimacsError {}

/// Parses a DIMACS CNF document into a fresh [`Solver`].
///
/// Comment lines (`c …`) and the problem line (`p cnf …`) are skipped; the
/// variable count is grown on demand, so a missing or understated problem line
/// is tolerated.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] if a token is not an integer or the last
/// clause is not `0`-terminated.
///
/// # Example
///
/// ```
/// use htd_sat::{parse_dimacs, SolveResult};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut solver = parse_dimacs("p cnf 2 2\n1 2 0\n-1 0\n")?;
/// assert_eq!(solver.solve(), SolveResult::Sat);
/// # Ok(())
/// # }
/// ```
pub fn parse_dimacs(input: &str) -> Result<Solver, ParseDimacsError> {
    let mut solver = Solver::new();
    let mut clause: Vec<Lit> = Vec::new();
    let mut in_clause = false;
    for line in input.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('p') {
            continue;
        }
        for tok in line.split_ascii_whitespace() {
            let value: i64 = tok
                .parse()
                .map_err(|_| ParseDimacsError::InvalidToken(tok.to_string()))?;
            if value == 0 {
                solver.add_clause(clause.drain(..));
                in_clause = false;
                continue;
            }
            in_clause = true;
            let var_index = value.unsigned_abs() - 1;
            if var_index > u64::from(u32::MAX) {
                return Err(ParseDimacsError::VariableOutOfRange(value));
            }
            while (solver.num_vars() as u64) <= var_index {
                solver.new_var();
            }
            let var = Var::from_index(var_index as u32);
            clause.push(Lit::new(var, value < 0));
        }
    }
    if in_clause {
        return Err(ParseDimacsError::UnterminatedClause);
    }
    Ok(solver)
}

/// Serialises a set of clauses into DIMACS CNF text.
///
/// `num_vars` is the declared variable count of the problem line; clauses use
/// the 1-based DIMACS literal convention.
///
/// # Example
///
/// ```
/// use htd_sat::{to_dimacs, Lit, Var};
///
/// let a = Var::from_index(0);
/// let b = Var::from_index(1);
/// let text = to_dimacs(2, &[vec![Lit::pos(a), Lit::neg(b)]]);
/// assert!(text.contains("p cnf 2 1"));
/// assert!(text.contains("1 -2 0"));
/// ```
#[must_use]
pub fn to_dimacs(num_vars: usize, clauses: &[Vec<Lit>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("p cnf {} {}\n", num_vars, clauses.len()));
    for clause in clauses {
        for lit in clause {
            out.push_str(&lit.to_string());
            out.push(' ');
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    #[test]
    fn parse_simple_sat_instance() {
        let mut s = parse_dimacs("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        assert_eq!(s.num_vars(), 3);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn parse_unsat_instance() {
        let mut s = parse_dimacs("p cnf 1 2\n1 0\n-1 0\n").unwrap();
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn parse_grows_variables_beyond_header() {
        let s = parse_dimacs("p cnf 1 1\n5 0\n").unwrap();
        assert_eq!(s.num_vars(), 5);
    }

    #[test]
    fn unterminated_clause_is_an_error() {
        assert_eq!(
            parse_dimacs("p cnf 2 1\n1 2\n").err(),
            Some(ParseDimacsError::UnterminatedClause)
        );
    }

    #[test]
    fn invalid_token_is_an_error() {
        assert!(matches!(
            parse_dimacs("1 x 0\n"),
            Err(ParseDimacsError::InvalidToken(_))
        ));
    }

    #[test]
    fn dimacs_roundtrip() {
        let a = Var::from_index(0);
        let b = Var::from_index(1);
        let clauses = vec![
            vec![Lit::pos(a), Lit::pos(b)],
            vec![Lit::neg(a), Lit::pos(b)],
            vec![Lit::neg(b)],
        ];
        let text = to_dimacs(2, &clauses);
        let mut s = parse_dimacs(&text).unwrap();
        assert_eq!(s.solve(), SolveResult::Unsat);
    }
}
