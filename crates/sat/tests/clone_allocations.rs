//! Pins the O(bytes) fork cost model at the allocator: cloning a [`Solver`]
//! performs a fixed number of heap allocations — one `memcpy`-backed buffer
//! clone per flat store (clause arena, watcher arena data + range table,
//! per-variable columns, trail, heap) — regardless of how many variables or
//! clauses the solver holds.  A per-literal or per-clause watcher
//! representation would scale the allocation count with the formula and
//! fail this test immediately.
//!
//! The whole file is a single `#[test]` on purpose: the counting allocator
//! is process-global, and a sibling test running on another thread would
//! pollute the counts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use htd_sat::{Lit, SolveResult, Solver, Var};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the `System` allocator plus an atomic
// counter bump — every `GlobalAlloc` obligation is `System`'s own.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards the caller's layout contract to `System` unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same contract as this fn — delegated verbatim.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: forwards the caller's layout contract to `System` unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same contract as this fn — delegated verbatim.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: forwards the caller's layout contract to `System` unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same contract as this fn — delegated verbatim.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_during<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let value = f();
    (value, ALLOCATIONS.load(Ordering::Relaxed) - before)
}

/// Builds a chain formula over `num_vars` variables and runs one query so
/// the trail, phases and watcher lists are all warm.
fn chain_solver(num_vars: usize) -> Solver {
    let mut solver = Solver::new();
    let vars: Vec<Var> = (0..num_vars).map(|_| solver.new_var()).collect();
    for w in vars.windows(2) {
        solver.add_clause([Lit::neg(w[0]), Lit::pos(w[1])]);
        solver.add_clause([Lit::pos(w[0]), Lit::pos(w[1])]);
    }
    assert_eq!(solver.solve(), SolveResult::Sat);
    solver
}

/// An upper bound on the flat buffers a clone copies.  The solver holds
/// about fourteen; the slack absorbs container changes without inviting
/// per-clause growth (which would add thousands at the large scale below).
const MAX_CLONE_ALLOCATIONS: u64 = 24;

#[test]
fn clone_allocation_count_is_flat_in_the_formula_size() {
    let small = chain_solver(8);
    let large = chain_solver(4096);
    assert!(
        large.snapshot_bytes() > 100 * small.snapshot_bytes(),
        "the scales must differ enough to expose per-clause allocations"
    );

    let (small_clone, small_allocs) = allocations_during(|| small.clone());
    let (large_clone, large_allocs) = allocations_during(|| large.clone());

    assert_eq!(
        small_allocs, large_allocs,
        "clone allocation count must not depend on formula size"
    );
    assert!(
        large_allocs <= MAX_CLONE_ALLOCATIONS,
        "clone made {large_allocs} allocations; expected a fixed handful"
    );

    // The clones are real solvers, not shallow copies.
    drop(small);
    drop(large);
    let mut small_clone = small_clone;
    let mut large_clone = large_clone;
    assert_eq!(small_clone.solve(), SolveResult::Sat);
    assert_eq!(large_clone.solve(), SolveResult::Sat);
}
