//! Property-based tests for clause garbage collection: compacting the clause
//! arena — dropping clauses satisfied at the top level, stripping falsified
//! literals, rebuilding watches — must never change any SAT/UNSAT answer,
//! under arbitrary assumption sequences and arbitrary top-level unit
//! retirements (the activation-literal pattern of the incremental miter).

use htd_sat::{Lit, SatBackend, SolveResult, Solver, Var};
use proptest::prelude::*;

/// A clause is a list of (variable index, negated) pairs.
type RawClause = Vec<(u8, bool)>;

fn clause_strategy(num_vars: u8) -> impl Strategy<Value = RawClause> {
    prop::collection::vec((0..num_vars, any::<bool>()), 1..=4)
}

/// One scripted step: an optional literal retirement (a top-level unit
/// clause) followed by a query under assumptions.
type ScriptStep = (Option<(u8, bool)>, RawClause);

/// A formula plus a script of queries; each query optionally retires one
/// literal with a top-level unit clause first, then solves under assumptions.
fn script_strategy() -> impl Strategy<Value = (u8, Vec<RawClause>, Vec<ScriptStep>)> {
    (4u8..=8).prop_flat_map(|nv| {
        (
            Just(nv),
            prop::collection::vec(clause_strategy(nv), 4..=32),
            prop::collection::vec(
                (
                    (any::<bool>(), 0..nv, any::<bool>())
                        .prop_map(|(retire, v, neg)| retire.then_some((v, neg))),
                    prop::collection::vec((0..nv, any::<bool>()), 0..=3),
                ),
                1..=6,
            ),
        )
    })
}

fn lits(vars: &[Var], raw: &[(u8, bool)]) -> Vec<Lit> {
    raw.iter()
        .map(|&(v, negated)| Lit::new(vars[v as usize], negated))
        .collect()
}

fn build(num_vars: u8, clauses: &[RawClause]) -> (Solver, Vec<Var>) {
    let mut solver = Solver::new();
    let vars: Vec<Var> = (0..num_vars).map(|_| solver.new_var()).collect();
    for clause in clauses {
        solver.add_clause(lits(&vars, clause));
    }
    (solver, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Twin solvers over the same formula and script: one garbage-collects
    /// after every step, the other never does.  Answers must agree at every
    /// step.
    #[test]
    fn gc_never_changes_answers((num_vars, clauses, script) in script_strategy()) {
        let (mut plain, plain_vars) = build(num_vars, &clauses);
        let (mut gced, gc_vars) = build(num_vars, &clauses);

        for (retire, assumptions) in &script {
            if let Some((v, negated)) = retire {
                // Retire a literal with a top-level unit — the activation-
                // literal pattern that creates permanently dead clauses.
                plain.add_clause([Lit::new(plain_vars[*v as usize], *negated)]);
                gced.add_clause([Lit::new(gc_vars[*v as usize], *negated)]);
            }
            gced.collect_garbage();

            let expected = plain.solve_with_assumptions(&lits(&plain_vars, assumptions));
            let actual = gced.solve_with_assumptions(&lits(&gc_vars, assumptions));
            prop_assert_eq!(expected, actual);
            prop_assert_eq!(plain.is_known_unsat(), gced.is_known_unsat());
        }
    }

    /// Forking mid-script: the parent runs the first half of the script,
    /// forks, and then parent and child run the remaining steps
    /// independently — answering identically at every step, because a fork
    /// is a byte-for-byte snapshot of the arena-backed clause store.  The
    /// fork counters prove the cost model: the child records exactly one
    /// fork of exactly `snapshot_bytes()` bytes (a handful of flat-buffer
    /// memcpys — never a per-clause allocation), and child solves never
    /// add fork bytes of their own.
    #[test]
    fn forking_mid_script_preserves_answers_and_costs_bytes((num_vars, clauses, script) in script_strategy()) {
        let (mut parent, vars) = build(num_vars, &clauses);
        let split = script.len() / 2;
        for (retire, assumptions) in &script[..split] {
            if let Some((v, negated)) = retire {
                parent.add_clause([Lit::new(vars[*v as usize], *negated)]);
            }
            let _ = parent.solve_with_assumptions(&lits(&vars, assumptions));
        }
        parent.collect_garbage();

        let parent_bytes = parent.snapshot_bytes();
        let parent_forks = parent.stats().fork_count;
        let mut child = SatBackend::fork(&parent).expect("the bundled solver forks");
        // One fork, costing exactly the parent's snapshot bytes.
        prop_assert_eq!(child.stats().solver.fork_count, parent_forks + 1);
        prop_assert_eq!(
            child.stats().solver.bytes_cloned - parent.stats().bytes_cloned,
            parent_bytes
        );
        prop_assert_eq!(parent.stats().fork_count, parent_forks, "fork leaves the parent untouched");

        let bytes_after_fork = child.stats().solver.bytes_cloned;
        for (retire, assumptions) in &script[split..] {
            if let Some((v, negated)) = retire {
                let unit = Lit::new(vars[*v as usize], *negated);
                parent.add_clause([unit]);
                child.add_clause(&[unit]);
            }
            let assumptions = lits(&vars, assumptions);
            let expected = parent.solve_with_assumptions(&assumptions);
            let actual = child.solve_under(&assumptions).expect("bundled solver is total");
            prop_assert_eq!(expected, actual);
        }
        // Solving on the child allocates no further snapshots: every byte in
        // `bytes_cloned` was paid at fork time.
        prop_assert_eq!(child.stats().solver.bytes_cloned, bytes_after_fork);
    }

    /// Interleaving the three operations that rewrite the flat watcher
    /// arena — forking, garbage collection (block compaction), and learnt-
    /// clause detaching (swap-remove, forced by a tiny learnt limit) —
    /// under arbitrary scripts.  At every step the freshly forked child
    /// answers exactly as the parent does, and the fork counters pin the
    /// cost model: each fork records exactly `snapshot_bytes()` bytes, of
    /// which exactly `watcher_bytes()` were spent on the watcher arena.
    #[test]
    fn fork_gc_detach_interleaving_preserves_answers_and_watcher_costs(
        (num_vars, clauses, script) in script_strategy()
    ) {
        let (mut parent, vars) = build(num_vars, &clauses);
        // Force learnt-database reduction at the first restart so queries
        // exercise the swap-remove detach path on the watcher arena.
        parent.set_learnt_limit(1.0);
        for (step, (retire, assumptions)) in script.iter().enumerate() {
            if let Some((v, negated)) = retire {
                parent.add_clause([Lit::new(vars[*v as usize], *negated)]);
            }
            if step % 2 == 0 {
                parent.collect_garbage();
            }
            let forks_before = parent.stats().fork_count;
            let snapshot = parent.snapshot_bytes();
            let watcher = parent.watcher_bytes();
            let mut child = SatBackend::fork(&parent).expect("the bundled solver forks");
            prop_assert_eq!(child.stats().solver.fork_count, forks_before + 1);
            prop_assert_eq!(
                child.stats().solver.bytes_cloned - parent.stats().bytes_cloned,
                snapshot
            );
            prop_assert_eq!(
                child.stats().solver.watcher_bytes_cloned
                    - parent.stats().watcher_bytes_cloned,
                watcher
            );
            prop_assert!(watcher <= snapshot, "watcher bytes are a slice of the snapshot");

            let assumptions = lits(&vars, assumptions);
            let expected = parent.solve_with_assumptions(&assumptions);
            let actual = child.solve_under(&assumptions).expect("bundled solver is total");
            prop_assert_eq!(expected, actual);
            // Compacting after the query must not change what the parent
            // answers (the child is dropped untouched — forks are
            // independent snapshots).
            if step % 2 == 1 {
                parent.collect_garbage();
                prop_assert_eq!(parent.solve_with_assumptions(&assumptions), expected);
            }
        }
    }

    /// Models returned after garbage collection still satisfy the original
    /// formula (compaction must not lose constraints).
    #[test]
    fn models_after_gc_satisfy_the_original_formula((num_vars, clauses, script) in script_strategy()) {
        let (mut solver, vars) = build(num_vars, &clauses);
        let mut retired: Vec<Lit> = Vec::new();
        for (retire, assumptions) in &script {
            if let Some((v, negated)) = retire {
                let unit = Lit::new(vars[*v as usize], *negated);
                solver.add_clause([unit]);
                retired.push(unit);
            }
            solver.collect_garbage();
            if solver.solve_with_assumptions(&lits(&vars, assumptions)) == SolveResult::Sat {
                let value = |l: Lit| {
                    solver
                        .value(l.var())
                        .map(|b| if l.is_negated() { !b } else { b })
                };
                for clause in &clauses {
                    let satisfied = lits(&vars, clause)
                        .iter()
                        .any(|&l| value(l).unwrap_or(false));
                    prop_assert!(satisfied, "model violates original clause {clause:?}");
                }
                for &unit in &retired {
                    prop_assert_eq!(value(unit), Some(true), "model violates retired unit");
                }
            }
        }
    }
}

/// Deterministic regression: collection reports its work through the stats
/// counters and physically shrinks the database.
#[test]
fn gc_counters_and_shrinkage() {
    let mut solver = Solver::new();
    let vars: Vec<Var> = (0..8).map(|_| solver.new_var()).collect();
    // An activation literal guarding a block of clauses.
    let act = solver.new_var();
    for w in vars.windows(2) {
        solver.add_clause([Lit::neg(act), Lit::pos(w[0]), Lit::pos(w[1])]);
    }
    let clauses_before = solver.num_clauses();
    assert!(clauses_before >= 7);
    // Retire the activation literal: every guarded clause dies.
    solver.add_clause([Lit::neg(act)]);
    let collected = solver.collect_garbage();
    assert_eq!(collected, clauses_before as u64);
    assert_eq!(solver.num_clauses(), 0);
    let stats = solver.stats();
    assert_eq!(stats.gc_runs, 1);
    assert_eq!(stats.clauses_collected, collected);
    assert_eq!(solver.solve(), SolveResult::Sat);
}

/// Literal stripping through the public API: a falsified literal inside a
/// surviving clause is removed by the sweep (`arena_words_reclaimed` grows
/// with zero clauses collected), the answers are unchanged, and a second
/// sweep right after is a no-op — the compaction is idempotent.
///
/// The sweep's two degenerate outcomes (a survivor stripping to *zero* or
/// *one* literal — `found_empty` and the unit-uncovering re-enqueue) are
/// unreachable through this API: complete top-level propagation always
/// turns such clauses into conflicts or units first, so they are pinned by
/// white-box tests next to `Solver::collect_garbage` instead.
#[test]
fn stripping_reclaims_words_without_collecting_and_is_idempotent() {
    let mut solver = Solver::new();
    let vars: Vec<Var> = (0..4).map(|_| solver.new_var()).collect();
    solver.add_clause([Lit::pos(vars[0]), Lit::pos(vars[1]), Lit::pos(vars[2])]);
    solver.add_clause([Lit::neg(vars[2])]); // falsifies the tail literal
    solver.add_clause([Lit::pos(vars[3])]); // unrelated root unit
    let collected = solver.collect_garbage();
    assert_eq!(collected, 0, "the stripped clause survives");
    assert_eq!(solver.num_clauses(), 1);
    let stats = solver.stats();
    assert_eq!(stats.gc_runs, 1);
    assert!(
        stats.arena_words_reclaimed > 0,
        "stripping must reclaim the falsified literal's word"
    );

    // Idempotence: nothing left to strip or collect.
    let words_after_first = solver.arena_words();
    assert_eq!(solver.collect_garbage(), 0);
    assert_eq!(solver.arena_words(), words_after_first);
    assert_eq!(
        solver.stats().arena_words_reclaimed,
        stats.arena_words_reclaimed
    );

    // Answers are those of the original formula.
    assert_eq!(
        solver.solve_with_assumptions(&[Lit::neg(vars[0])]),
        SolveResult::Sat
    );
    assert_eq!(solver.value(vars[1]), Some(true), "x3 false forces x2");
    assert_eq!(
        solver.solve_with_assumptions(&[Lit::neg(vars[0]), Lit::neg(vars[1])]),
        SolveResult::Unsat
    );
}

/// Fork cost is proportional to the *live* arena, not the historical clause
/// count: retiring a cone and compacting shrinks the bytes every subsequent
/// fork copies, and the counters record exactly `snapshot_bytes()` per fork.
#[test]
fn fork_cost_shrinks_with_the_live_arena() {
    let mut solver = Solver::new();
    let vars: Vec<Var> = (0..64).map(|_| solver.new_var()).collect();
    let act = solver.new_var();
    for w in vars.windows(2) {
        solver.add_clause([Lit::neg(act), Lit::pos(w[0]), Lit::pos(w[1])]);
    }
    let fat = solver.snapshot_bytes();
    let fat_fork = SatBackend::fork(&solver).expect("bundled solver forks");
    assert_eq!(fat_fork.stats().solver.fork_count, 1);
    assert_eq!(fat_fork.stats().solver.bytes_cloned, fat);

    // Retire the guarded cone and compact: the arena shrinks, and with it
    // the cost of the next fork.
    solver.add_clause([Lit::neg(act)]);
    solver.collect_garbage();
    assert!(solver.stats().arena_words_reclaimed > 0);
    let slim = solver.snapshot_bytes();
    assert!(
        slim < fat,
        "compaction must shrink the fork cost ({slim} < {fat})"
    );
    let slim_fork = SatBackend::fork(&solver).expect("bundled solver forks");
    assert_eq!(slim_fork.stats().solver.bytes_cloned, slim);
}

/// Database reduction with LBD scoring stays correct when forced on a small,
/// conflict-heavy formula, and the proportional watcher detach keeps the
/// solver consistent across further queries.
#[test]
fn forced_reduce_db_keeps_answers_correct() {
    // Pigeonhole PHP(5,4): 5 pigeons, 4 holes — UNSAT with real conflict
    // work, enough learnt clauses to trigger a forced reduction.
    let pigeons = 5usize;
    let holes = 4usize;
    let mut solver = Solver::new();
    let vars: Vec<Var> = (0..pigeons * holes).map(|_| solver.new_var()).collect();
    let lit = |p: usize, h: usize| Lit::pos(vars[p * holes + h]);
    for p in 0..pigeons {
        let clause: Vec<Lit> = (0..holes).map(|h| lit(p, h)).collect();
        solver.add_clause(clause);
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                solver.add_clause([!lit(p1, h), !lit(p2, h)]);
            }
        }
    }
    // Force learnt-database reduction at the very first restart.
    solver.set_learnt_limit(1.0);
    assert_eq!(solver.solve(), SolveResult::Unsat);
    let stats = solver.stats();
    assert!(stats.conflicts > 0);
    assert!(
        stats.learnt_lbd_sum > 0,
        "learnt clauses must carry LBD scores"
    );
}

/// An interrupt check that always fires abandons the query without corrupting
/// the solver; clearing it restores normal solving.
#[test]
fn interrupts_abandon_queries_cleanly() {
    let mut solver = Solver::new();
    let vars: Vec<Var> = (0..12).map(|_| solver.new_var()).collect();
    // xor chain forcing real search.
    for w in vars.windows(2) {
        solver.add_clause([Lit::pos(w[0]), Lit::pos(w[1])]);
        solver.add_clause([Lit::neg(w[0]), Lit::neg(w[1])]);
    }
    solver.set_interrupt(std::sync::Arc::new(|| true));
    assert_eq!(solver.solve(), SolveResult::Interrupted);
    solver.clear_interrupt();
    assert_eq!(solver.solve(), SolveResult::Sat);
}
