//! Property-based equivalence of the `SatBackend` abstraction with the
//! direct `Solver` API: driving one long-lived backend through many
//! incremental queries must answer exactly like a fresh solver built from
//! scratch for every query.

use htd_sat::{Lit, SatBackend, SolveResult, Solver, Var};
use proptest::prelude::*;

/// A clause is a list of (variable index, negated) pairs.
type RawClause = Vec<(u8, bool)>;

fn clause_strategy(num_vars: u8) -> impl Strategy<Value = RawClause> {
    prop::collection::vec((0..num_vars, any::<bool>()), 1..=4)
}

/// A staged formula: several batches of clauses plus one assumption seed per
/// batch, modelling the flow's "add clauses, query under assumptions, add
/// more clauses" usage pattern.
fn staged_formula() -> impl Strategy<Value = (u8, Vec<(Vec<RawClause>, u8)>)> {
    (2u8..=6).prop_flat_map(|nv| {
        prop::collection::vec(
            (
                prop::collection::vec(clause_strategy(nv), 1..=8),
                any::<u8>(),
            ),
            1..=4,
        )
        .prop_map(move |stages| (nv, stages))
    })
}

fn to_lits(vars: &[Var], clause: &RawClause) -> Vec<Lit> {
    clause
        .iter()
        .map(|&(v, neg)| Lit::new(vars[v as usize % vars.len()], neg))
        .collect()
}

fn assumptions_from_seed(vars: &[Var], seed: u8) -> Vec<Lit> {
    // Up to two assumption literals derived deterministically from the seed.
    let v0 = (seed as usize) % vars.len();
    let v1 = (seed as usize / 16) % vars.len();
    let mut lits = vec![Lit::new(vars[v0], seed & 1 == 1)];
    if v1 != v0 {
        lits.push(Lit::new(vars[v1], seed & 2 == 2));
    }
    lits
}

/// Reference result: a fresh solver over all clauses seen so far, with the
/// assumptions added as units.
fn fresh_solve(num_vars: u8, clauses: &[RawClause], assumptions: &[Lit]) -> SolveResult {
    let mut solver = Solver::new();
    let vars: Vec<Var> = (0..num_vars).map(|_| solver.new_var()).collect();
    for clause in clauses {
        solver.add_clause(to_lits(&vars, clause));
    }
    for &lit in assumptions {
        solver.add_clause([lit]);
    }
    solver.solve()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn incremental_backend_matches_fresh_solves((num_vars, stages) in staged_formula()) {
        let mut backend = Solver::new();
        let vars: Vec<Var> = (0..num_vars).map(|_| SatBackend::new_var(&mut backend)).collect();
        let mut all_clauses: Vec<RawClause> = Vec::new();

        for (batch, seed) in &stages {
            for clause in batch {
                let lits = to_lits(&vars, clause);
                SatBackend::add_clause(&mut backend, &lits);
                all_clauses.push(clause.clone());
            }
            let assumptions = assumptions_from_seed(&vars, *seed);
            let incremental = SatBackend::solve_under(&mut backend, &assumptions).unwrap();
            let reference = fresh_solve(num_vars, &all_clauses, &assumptions);
            prop_assert_eq!(incremental, reference,
                "incremental backend diverged from the fresh solve");

            // A SAT model read through the trait must satisfy every clause.
            if incremental == SolveResult::Sat {
                for clause in &all_clauses {
                    let satisfied = to_lits(&vars, clause).iter().any(|l| {
                        SatBackend::model_value(&backend, l.var())
                            .map(|value| l.apply(value))
                            .unwrap_or(false)
                    });
                    prop_assert!(satisfied, "model violates clause {:?}", clause);
                }
            }
        }

        // Assumptions never persist: the backend's plain verdict equals the
        // fresh solve without assumptions.
        let plain = SatBackend::solve_under(&mut backend, &[]).unwrap();
        prop_assert_eq!(plain, fresh_solve(num_vars, &all_clauses, &[]));
    }
}

#[test]
fn backend_stats_track_queries_and_clauses() {
    let mut backend = Solver::new();
    let a = SatBackend::new_var(&mut backend);
    let b = SatBackend::new_var(&mut backend);
    SatBackend::add_clause(&mut backend, &[Lit::pos(a), Lit::pos(b)]);
    SatBackend::solve_under(&mut backend, &[]).unwrap();
    SatBackend::solve_under(&mut backend, &[Lit::neg(a)]).unwrap();
    let stats = SatBackend::stats(&backend);
    assert_eq!(stats.vars, 2);
    assert_eq!(stats.clauses, 1);
    assert_eq!(stats.queries, 2);
}
