//! Property-based tests: the CDCL solver agrees with a brute-force truth-table
//! enumeration on random small CNF formulas, and models it returns actually
//! satisfy the formula.

use htd_sat::{Lit, SolveResult, Solver, Var};
use proptest::prelude::*;

/// A clause is a list of (variable index, negated) pairs.
type RawClause = Vec<(u8, bool)>;

fn clause_strategy(num_vars: u8) -> impl Strategy<Value = RawClause> {
    prop::collection::vec((0..num_vars, any::<bool>()), 1..=4)
}

fn formula_strategy() -> impl Strategy<Value = (u8, Vec<RawClause>)> {
    (2u8..=8).prop_flat_map(|nv| {
        prop::collection::vec(clause_strategy(nv), 1..=24).prop_map(move |cls| (nv, cls))
    })
}

fn brute_force_sat(num_vars: u8, clauses: &[RawClause]) -> bool {
    let n = num_vars as u32;
    for assignment in 0u32..(1 << n) {
        let value = |v: u8| assignment & (1 << v) != 0;
        if clauses
            .iter()
            .all(|clause| clause.iter().any(|&(v, negated)| value(v) != negated))
        {
            return true;
        }
    }
    false
}

fn run_solver(num_vars: u8, clauses: &[RawClause]) -> (SolveResult, Solver) {
    let mut solver = Solver::new();
    let vars: Vec<Var> = (0..num_vars).map(|_| solver.new_var()).collect();
    for clause in clauses {
        let lits: Vec<Lit> = clause
            .iter()
            .map(|&(v, negated)| Lit::new(vars[v as usize], negated))
            .collect();
        solver.add_clause(lits);
    }
    let result = solver.solve();
    (result, solver)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solver_agrees_with_brute_force((num_vars, clauses) in formula_strategy()) {
        let expected = brute_force_sat(num_vars, &clauses);
        let (result, _) = run_solver(num_vars, &clauses);
        prop_assert_eq!(result == SolveResult::Sat, expected);
    }

    #[test]
    fn returned_models_satisfy_the_formula((num_vars, clauses) in formula_strategy()) {
        let (result, solver) = run_solver(num_vars, &clauses);
        if result == SolveResult::Sat {
            for clause in &clauses {
                let satisfied = clause.iter().any(|&(v, negated)| {
                    let value = solver
                        .value(Var::from_index(u32::from(v)))
                        .expect("model must assign every variable");
                    value != negated
                });
                prop_assert!(satisfied, "model does not satisfy clause {:?}", clause);
            }
        }
    }

    #[test]
    fn solving_under_assumptions_matches_adding_units(
        (num_vars, clauses) in formula_strategy(),
        assumption_bits in any::<u8>(),
    ) {
        // Pick up to two assumption literals derived from the seed byte.
        let v0 = assumption_bits % num_vars;
        let v1 = (assumption_bits / 16) % num_vars;
        let assumptions = vec![
            (v0, assumption_bits & 1 == 1),
            (v1, assumption_bits & 2 == 2),
        ];
        // Skip contradictory assumption pairs on the same variable: as units
        // they are trivially unsat, as assumptions as well, but the comparison
        // below is still meaningful, so no skip is actually needed.
        let (_, mut with_assumptions) = run_solver(num_vars, &clauses);
        let assumption_lits: Vec<Lit> = assumptions
            .iter()
            .map(|&(v, neg)| Lit::new(Var::from_index(u32::from(v)), neg))
            .collect();
        let assumed = with_assumptions.solve_with_assumptions(&assumption_lits);

        let mut clauses_with_units = clauses.clone();
        for (v, neg) in assumptions {
            clauses_with_units.push(vec![(v, neg)]);
        }
        let expected = brute_force_sat(num_vars, &clauses_with_units);
        prop_assert_eq!(assumed == SolveResult::Sat, expected);

        // The solver must remain usable (and consistent) afterwards.
        let baseline = brute_force_sat(num_vars, &clauses);
        prop_assert_eq!(with_assumptions.solve() == SolveResult::Sat, baseline);
    }
}

#[test]
fn large_random_3sat_instances_near_threshold() {
    // Deterministic stress test: 3-SAT at clause/variable ratio ~4.2 forces
    // real search. We only check that models returned are valid.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for instance in 0..10 {
        let num_vars = 60;
        let num_clauses = 252;
        let mut solver = Solver::new();
        let vars: Vec<Var> = (0..num_vars).map(|_| solver.new_var()).collect();
        let mut clauses = Vec::new();
        for _ in 0..num_clauses {
            let mut clause = Vec::new();
            while clause.len() < 3 {
                let v = rng.gen_range(0..num_vars);
                let neg = rng.gen_bool(0.5);
                if !clause.iter().any(|&(cv, _)| cv == v) {
                    clause.push((v, neg));
                }
            }
            let lits: Vec<Lit> = clause.iter().map(|&(v, n)| Lit::new(vars[v], n)).collect();
            solver.add_clause(lits.clone());
            clauses.push(lits);
        }
        if solver.solve() == SolveResult::Sat {
            for clause in &clauses {
                assert!(
                    clause.iter().any(|&l| {
                        let val = solver.value(l.var()).unwrap();
                        l.apply(val)
                    }),
                    "instance {instance}: model violates a clause"
                );
            }
        }
    }
}
