//! Clone-throughput microbenchmark for the fork path: how fast a warm
//! solver snapshots at the two scales the detection flow actually forks at
//! — the AES benchmarks (tens-of-KiB arenas) and BasicRSA (a ~3.7 MB
//! arena, the largest bundled design).  A fork is a handful of flat-buffer
//! memcpys, so the numbers here should track memory bandwidth, not clause
//! count; a per-clause or per-literal rebuild shows up immediately as a
//! collapse at the BasicRSA scale.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use htd_sat::{Lit, SatBackend, SolveResult, Solver, Var};

/// Grows a chain formula until the solver's snapshot reaches at least
/// `target_bytes`, then runs one query so the trail, saved phases and
/// watcher lists are warm — the state a mid-flow fork copies.
fn warm_solver(target_bytes: u64) -> Solver {
    let mut solver = Solver::new();
    let mut vars: Vec<Var> = (0..3).map(|_| solver.new_var()).collect();
    while solver.snapshot_bytes() < target_bytes {
        vars.push(solver.new_var());
        let n = vars.len();
        solver.add_clause([
            Lit::neg(vars[n - 3]),
            Lit::neg(vars[n - 2]),
            Lit::pos(vars[n - 1]),
        ]);
        solver.add_clause([Lit::pos(vars[n - 3]), Lit::pos(vars[n - 1])]);
    }
    assert_eq!(solver.solve(), SolveResult::Sat);
    solver
}

fn fork_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fork");
    group.sample_size(20);

    for (label, target) in [("aes-64KiB", 64 << 10), ("basicrsa-3.7MB", 3_700_000)] {
        let solver = warm_solver(target);
        let bytes = solver.snapshot_bytes();
        let watcher = solver.watcher_bytes();
        group.bench_with_input(
            BenchmarkId::new("clone", format!("{label}/{bytes}B")),
            &solver,
            |b, s| b.iter(|| black_box(s.clone())),
        );
        group.bench_with_input(
            BenchmarkId::new("fork", format!("{label}/{bytes}B")),
            &solver,
            |b, s| b.iter(|| black_box(SatBackend::fork(s).expect("bundled solver forks"))),
        );
        // Printed so a run records the arena split alongside the timings.
        println!("{label}: snapshot {bytes} B of which watcher arena {watcher} B");
    }
    group.finish();
}

criterion_group!(benches, fork_bench);
criterion_main!(benches);
