//! # htd-trusthub
//!
//! Trust-Hub-style accelerator benchmarks and the hardware-Trojan insertion
//! framework used to evaluate the golden-free detection flow.
//!
//! The DATE'24 paper evaluates its method on the accelerator IPs of the
//! Trust-Hub benchmark suite (25 AES variants, 3 BasicRSA variants, an RS232
//! UART case study, plus HT-free versions).  The original Verilog sources and
//! the commercial property checker are not available here, so this crate
//! provides word-level RTL models with the same *structure*:
//!
//! * [`aes`] — a pipelined AES-128 encryption accelerator (validated against
//!   the FIPS-197 reference in [`aes_ref`]),
//! * [`rsa`] — a BasicRSA square-and-multiply modular exponentiator,
//! * [`uart`] — an RS232 UART transmitter/receiver,
//! * [`trojan`] — trigger classes (plaintext sequences, encryption counters,
//!   cycle counters) and payload classes (power side channel, leakage
//!   current, RF, DoS, bit flips, key leaks) matching Table I of the paper,
//! * [`registry`] — one [`registry::Benchmark`] per Table I row plus the
//!   HT-free references, with the expected detection mechanism attached.
//!
//! # Example
//!
//! ```
//! use htd_trusthub::registry::{Benchmark, ExpectedDetection};
//!
//! # fn main() -> Result<(), htd_rtl::DesignError> {
//! let benchmark = Benchmark::AesT2500;
//! let info = benchmark.info();
//! assert_eq!(info.payload_label, "bit flip");
//! assert_eq!(info.expected, ExpectedDetection::FanoutProperty(21));
//! let design = benchmark.build()?;
//! assert!(design.design().num_signals() > 40);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod aes_ref;
pub mod registry;
pub mod rsa;
pub mod trojan;
pub mod uart;
