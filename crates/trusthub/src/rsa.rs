//! A BasicRSA-style modular-exponentiation accelerator at RTL, with optional
//! hardware Trojans — the stand-in for the Trust-Hub BasicRSA-T benchmarks.
//!
//! # Microarchitecture
//!
//! The accelerator computes `cypher = indata ^ inexp mod inmod` over
//! [`WORD_BITS`]-bit operands with a classic LSB-first square-and-multiply
//! datapath: a load cycle (on the `ds` data strobe) followed by one exponent
//! bit per cycle.  The modular multiplications are combinational
//! (shift-and-conditional-subtract reduction), so an exponentiation takes
//! [`LATENCY`] cycles in total.
//!
//! Unlike the AES pipeline, this design has *control state* (a busy flag, a
//! bit counter) whose value legitimately depends on earlier inputs.  That is
//! exactly the situation in which the paper reports spurious counterexamples
//! for the RSA benchmarks (two of them, resolved by the engineer with
//! equality assumptions); [`benign_state`] provides the corresponding waiver
//! list.

use htd_rtl::{Design, DesignError, ExprId, SignalId, ValidatedDesign};

use crate::trojan::{build_trigger, Payload, TrojanSpec};

/// Operand width of the accelerator in bits.
///
/// Real RSA uses 1024-bit and larger moduli; 16 bits keep the formal models
/// and the simulator fast while preserving the structure (datapath, FSM,
/// secret exponent) that the detection method interacts with.
pub const WORD_BITS: u32 = 16;

/// Cycles from asserting `ds` to `ready` (1 load cycle + one cycle per
/// exponent bit).
pub const LATENCY: u64 = 1 + WORD_BITS as u64;

/// Software reference: `base ^ exp mod modulus` (for `modulus > 1`).
#[must_use]
pub fn modexp_ref(base: u64, exp: u64, modulus: u64) -> u64 {
    if modulus <= 1 {
        return 0;
    }
    let mut result = 1u64;
    let mut b = base % modulus;
    let mut e = exp;
    while e > 0 {
        if e & 1 == 1 {
            result = result * b % modulus;
        }
        b = b * b % modulus;
        e >>= 1;
    }
    result
}

/// Builds the BasicRSA accelerator, optionally infected with a Trojan.
///
/// # Errors
///
/// Propagates [`DesignError`] from the RTL builder.
///
/// # Example
///
/// ```
/// use htd_trusthub::rsa::{build_rsa, modexp_ref, LATENCY};
/// use htd_rtl::sim::Simulator;
///
/// # fn main() -> Result<(), htd_rtl::DesignError> {
/// let design = build_rsa("basicrsa_clean", None)?;
/// let mut sim = Simulator::new(&design);
/// sim.set_input_by_name("indata", 0x1234)?;
/// sim.set_input_by_name("inexp", 0x0007)?;
/// sim.set_input_by_name("inmod", 0xfff1)?;
/// sim.set_input_by_name("ds", 1)?;
/// sim.step()?;
/// sim.set_input_by_name("ds", 0)?;
/// sim.run(LATENCY)?;
/// assert_eq!(sim.peek_by_name("cypher")?, u128::from(modexp_ref(0x1234, 7, 0xfff1)));
/// assert_eq!(sim.peek_by_name("ready")?, 1);
/// # Ok(())
/// # }
/// ```
pub fn build_rsa(name: &str, trojan: Option<&TrojanSpec>) -> Result<ValidatedDesign, DesignError> {
    let w = WORD_BITS;
    let mut d = Design::new(name);
    let indata = d.add_input("indata", w)?;
    let inexp = d.add_input("inexp", w)?;
    let inmod = d.add_input("inmod", w)?;
    let ds = d.add_input("ds", 1)?;
    let indata_e = d.signal(indata);
    let inexp_e = d.signal(inexp);
    let inmod_e = d.signal(inmod);
    let ds_e = d.signal(ds);

    let armed = match trojan {
        Some(spec) => Some(build_trigger(&mut d, indata_e, &spec.trigger)?),
        None => None,
    };

    // State registers.
    let base = d.add_register("rsa_base", w, 0)?;
    let exp = d.add_register("rsa_exp", w, 0)?;
    let modulus = d.add_register("rsa_mod", w, 1)?;
    let result = d.add_register("rsa_result", w, 1)?;
    let count = d.add_register("rsa_count", 5, 0)?;
    let busy = d.add_register("rsa_busy", 1, 0)?;
    let ready = d.add_register("rsa_ready", 1, 0)?;

    let busy_e = d.signal(busy);
    let not_busy = d.not(busy_e);
    let load = d.and(ds_e, not_busy)?;
    let last_bit = d.eq_const(d.signal(count), u128::from(w) - 1)?;
    let done = d.and(busy_e, last_bit)?;

    // busy / ready / count.
    let one1 = d.ones(1)?;
    let zero1 = d.zero(1)?;
    let busy_after_done = d.mux(done, zero1, busy_e)?;
    let busy_next = d.mux(load, one1, busy_after_done)?;
    d.set_register_next(busy, busy_next)?;
    let ready_after_done = d.mux(done, one1, d.signal(ready))?;
    let ready_next = d.mux(load, zero1, ready_after_done)?;
    d.set_register_next(ready, ready_next)?;
    let one5 = d.constant(1, 5)?;
    let count_inc = d.add(d.signal(count), one5)?;
    let count_running = d.mux(busy_e, count_inc, d.signal(count))?;
    let zero5 = d.zero(5)?;
    let count_next = d.mux(load, zero5, count_running)?;
    d.set_register_next(count, count_next)?;

    // modulus / exponent.
    let mod_next = d.mux(load, inmod_e, d.signal(modulus))?;
    d.set_register_next(modulus, mod_next)?;
    let zero_w = d.zero(w)?;
    let exp_shifted = {
        let hi = d.slice(d.signal(exp), w - 1, 1)?;
        let z1 = d.zero(1)?;
        d.concat(z1, hi)?
    };
    let _ = zero_w;
    let exp_running = d.mux(busy_e, exp_shifted, d.signal(exp))?;
    let exp_next = d.mux(load, inexp_e, exp_running)?;
    d.set_register_next(exp, exp_next)?;

    // base: loaded with indata mod inmod, squared each busy cycle.
    let base_e = d.signal(base);
    let result_e = d.signal(result);
    let modulus_e = d.signal(modulus);
    let indata_reduced = modular_reduce(&mut d, indata_e, inmod_e)?;
    let base_squared = modmul(&mut d, base_e, base_e, modulus_e)?;
    let base_running = d.mux(busy_e, base_squared, base_e)?;
    let base_next = d.mux(load, indata_reduced, base_running)?;
    d.set_register_next(base, base_next)?;

    // result: starts at 1, multiplied by base when the current exponent bit
    // is set.
    let exp_bit = d.bit(d.signal(exp), 0)?;
    let multiplied = modmul(&mut d, result_e, base_e, modulus_e)?;
    let take_multiply = d.and(busy_e, exp_bit)?;
    let result_running = d.mux(take_multiply, multiplied, d.signal(result))?;
    let one_w = d.constant(1, w)?;
    let mut result_next = d.mux(load, one_w, result_running)?;

    // Trojan payloads on the result path.
    if let (Some(spec), Some(armed)) = (trojan, armed) {
        match spec.payload {
            Payload::DenialOfService => {
                let zero = d.zero(w)?;
                result_next = d.mux(armed, zero, result_next)?;
            }
            Payload::CiphertextBitFlip { .. } => {
                let flip = d.zero_ext(armed, w)?;
                result_next = d.xor(result_next, flip)?;
            }
            _ => {}
        }
    }
    d.set_register_next(result, result_next)?;

    // Outputs.
    let mut cypher = d.signal(result);
    if let (Some(spec), Some(armed)) = (trojan, armed) {
        if spec.payload == Payload::LeakToOutput {
            // Leak the secret exponent input on the cypher port once armed —
            // the BasicRSA-T300 behaviour.
            cypher = d.mux(armed, inexp_e, cypher)?;
        }
    }
    d.add_output("cypher", cypher)?;
    d.add_output("ready", d.signal(ready))?;
    if let (Some(spec), Some(armed)) = (trojan, armed) {
        if spec.payload == Payload::RfAntenna {
            // Leak the exponent LSB on an unused pin (BasicRSA-T400 analogue).
            let bit = d.bit(inexp_e, 0)?;
            let beacon = d.and(armed, bit)?;
            d.add_output("leak_pin", beacon)?;
        }
    }

    d.validated()
}

/// `value mod modulus` for a `WORD_BITS`-bit value (combinational).
fn modular_reduce(d: &mut Design, value: ExprId, modulus: ExprId) -> Result<ExprId, DesignError> {
    let wide = d.zero_ext(value, 2 * WORD_BITS)?;
    reduce_wide(d, wide, modulus)
}

/// Modular multiplication `a * b mod modulus` with `a, b < modulus`
/// (combinational shift-and-subtract reduction).
fn modmul(d: &mut Design, a: ExprId, b: ExprId, modulus: ExprId) -> Result<ExprId, DesignError> {
    let wa = d.zero_ext(a, 2 * WORD_BITS)?;
    let wb = d.zero_ext(b, 2 * WORD_BITS)?;
    let product = d.mul(wa, wb)?;
    reduce_wide(d, product, modulus)
}

/// Reduces a `2*WORD_BITS`-bit value modulo a `WORD_BITS`-bit modulus using
/// one conditional subtraction per bit position (restoring reduction).  The
/// input must be smaller than `modulus << WORD_BITS`.
fn reduce_wide(d: &mut Design, value: ExprId, modulus: ExprId) -> Result<ExprId, DesignError> {
    let wide_mod = d.zero_ext(modulus, 2 * WORD_BITS)?;
    let mut acc = value;
    for shift in (0..WORD_BITS).rev() {
        let amount = d.constant(u128::from(shift), 2 * WORD_BITS)?;
        let shifted = d.shl(wide_mod, amount)?;
        let fits = d.cmp_ule(shifted, acc)?;
        let subtracted = d.sub(acc, shifted)?;
        acc = d.mux(fits, subtracted, acc)?;
    }
    d.slice(acc, WORD_BITS - 1, 0)
}

/// The benign control/datapath registers of the accelerator (everything that
/// is not Trojan state).  Handing these to the detector as waivers reproduces
/// the engineer's counterexample triage reported for the RSA benchmarks in
/// the paper.
#[must_use]
pub fn benign_state(design: &ValidatedDesign) -> Vec<SignalId> {
    let d = design.design();
    d.registers()
        .into_iter()
        .filter(|&r| !d.signal_name(r).starts_with("trojan_"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trojan::Trigger;
    use htd_rtl::sim::Simulator;

    fn run_exponentiation(
        design: &ValidatedDesign,
        base: u64,
        exp: u64,
        modulus: u64,
    ) -> (u128, u128) {
        let mut sim = Simulator::new(design);
        sim.set_input_by_name("indata", u128::from(base)).unwrap();
        sim.set_input_by_name("inexp", u128::from(exp)).unwrap();
        sim.set_input_by_name("inmod", u128::from(modulus)).unwrap();
        sim.set_input_by_name("ds", 1).unwrap();
        sim.step().unwrap();
        sim.set_input_by_name("ds", 0).unwrap();
        sim.run(LATENCY).unwrap();
        (
            sim.peek_by_name("cypher").unwrap(),
            sim.peek_by_name("ready").unwrap(),
        )
    }

    #[test]
    fn clean_rtl_matches_reference() {
        let design = build_rsa("rsa_clean", None).unwrap();
        let cases = [
            (0x1234u64, 7u64, 0xfff1u64),
            (2, 16, 65521),
            (0xbeef, 0xcafe, 0xfffd),
            (1, 1, 3),
            (65535, 65535, 65521),
        ];
        for (base, exp, modulus) in cases {
            let (cypher, ready) = run_exponentiation(&design, base, exp, modulus);
            assert_eq!(ready, 1);
            assert_eq!(
                cypher,
                u128::from(modexp_ref(base, exp, modulus)),
                "modexp({base}, {exp}, {modulus})"
            );
        }
    }

    #[test]
    fn back_to_back_exponentiations() {
        let design = build_rsa("rsa_b2b", None).unwrap();
        let mut sim = Simulator::new(&design);
        for (base, exp, modulus) in [(11u64, 13u64, 1009u64), (200, 33, 65521)] {
            sim.set_input_by_name("indata", u128::from(base)).unwrap();
            sim.set_input_by_name("inexp", u128::from(exp)).unwrap();
            sim.set_input_by_name("inmod", u128::from(modulus)).unwrap();
            sim.set_input_by_name("ds", 1).unwrap();
            sim.step().unwrap();
            sim.set_input_by_name("ds", 0).unwrap();
            sim.run(LATENCY).unwrap();
            assert_eq!(
                sim.peek_by_name("cypher").unwrap(),
                u128::from(modexp_ref(base, exp, modulus))
            );
        }
    }

    #[test]
    fn leak_to_output_trojan_reveals_exponent_when_armed() {
        let spec = TrojanSpec::new(
            Trigger::InputChangeCounter { threshold: 2 },
            Payload::LeakToOutput,
        );
        let design = build_rsa("rsa_t300_like", Some(&spec)).unwrap();
        let mut sim = Simulator::new(&design);
        let secret_exp = 0x4321u128;
        // Three different messages arm the input-change counter.
        for (i, msg) in [0x1111u128, 0x2222, 0x3333].iter().enumerate() {
            sim.set_input_by_name("indata", *msg).unwrap();
            sim.set_input_by_name("inexp", secret_exp).unwrap();
            sim.set_input_by_name("inmod", 0xfff1).unwrap();
            sim.set_input_by_name("ds", 1).unwrap();
            sim.step().unwrap();
            sim.set_input_by_name("ds", 0).unwrap();
            sim.run(LATENCY).unwrap();
            let cypher = sim.peek_by_name("cypher").unwrap();
            if i < 1 {
                assert_ne!(cypher, secret_exp, "leak before the trigger armed");
            }
        }
        // Armed now: the output exposes the secret exponent directly.
        assert_eq!(sim.peek_by_name("cypher").unwrap(), secret_exp);
    }

    #[test]
    fn dos_trojan_zeroes_result_when_armed() {
        let spec = TrojanSpec::new(
            Trigger::PlaintextSequence(vec![0xDEAD]),
            Payload::DenialOfService,
        );
        let design = build_rsa("rsa_t200_like", Some(&spec)).unwrap();
        let mut sim = Simulator::new(&design);
        // Arm the trigger with the magic message.
        sim.set_input_by_name("indata", 0xDEAD).unwrap();
        sim.set_input_by_name("inexp", 5).unwrap();
        sim.set_input_by_name("inmod", 0xfff1).unwrap();
        sim.set_input_by_name("ds", 1).unwrap();
        sim.step().unwrap();
        sim.set_input_by_name("ds", 0).unwrap();
        sim.run(LATENCY).unwrap();
        assert_eq!(sim.peek_by_name("cypher").unwrap(), 0);
    }

    #[test]
    fn benign_state_lists_only_rsa_registers() {
        let spec = TrojanSpec::new(
            Trigger::InputChangeCounter { threshold: 4 },
            Payload::LeakToOutput,
        );
        let design = build_rsa("rsa_waivers", Some(&spec)).unwrap();
        let d = design.design();
        let benign = benign_state(&design);
        assert!(!benign.is_empty());
        assert!(benign.iter().all(|&s| d.signal_name(s).starts_with("rsa_")));
    }
}
