//! Hardware-Trojan building blocks: trigger and payload classes.
//!
//! Table I of the paper classifies the Trust-Hub accelerator Trojans by their
//! trigger (what arms them) and their payload (what they do once armed).
//! This module models those classes; the per-benchmark combinations live in
//! [`crate::registry`].

use htd_rtl::{Design, DesignError, ExprId};

/// Trigger classes of the Trust-Hub accelerator Trojans.
///
/// Triggers that observe the primary inputs (plaintext sequences, input
/// counters) leave their state in the input fan-out cone, so the detection
/// flow catches the diverging trigger state with the **init property**.
/// Input-independent triggers (free-running counters started at reset) are
/// invisible to the input-cone properties; the Trojan is then caught either
/// where its payload touches the cone (a deep **fanout property**) or by the
/// final **coverage check**.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// An FSM that arms after observing a specific sequence of plaintext
    /// values in order (the AES-T1400 style trigger).
    PlaintextSequence(Vec<u128>),
    /// A counter of processed encryptions, incremented whenever the plaintext
    /// changes; arms at `threshold`.
    InputChangeCounter {
        /// Number of encryptions after which the Trojan arms.
        threshold: u64,
    },
    /// A counter of occurrences of one specific plaintext value; arms at
    /// `threshold`.
    ValueCounter {
        /// The plaintext value being counted.
        value: u128,
        /// Number of occurrences after which the Trojan arms.
        threshold: u64,
    },
    /// A free-running cycle counter started by reset, independent of the
    /// inputs (the AES-T2500 / AES-T1900 style trigger); arms at `threshold`.
    CycleCounter {
        /// Number of clock cycles after which the Trojan arms.
        threshold: u64,
    },
}

impl Trigger {
    /// `true` if the trigger observes the primary inputs (and is therefore
    /// reachable from them in the structural analysis).
    #[must_use]
    pub fn is_input_dependent(&self) -> bool {
        !matches!(self, Trigger::CycleCounter { .. })
    }

    /// Short label matching the "Trigger" column of Table I.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Trigger::PlaintextSequence(_) => "plaintext seq.",
            Trigger::InputChangeCounter { .. } => "# encryptions",
            Trigger::ValueCounter { .. } => "# values",
            Trigger::CycleCounter { .. } => "# clock cycles",
        }
    }
}

/// Payload classes of the Trust-Hub accelerator Trojans.
///
/// Every payload — including the physical side channels — has an RTL
/// representation (Sec. IV-C of the paper): a leakage shift register, a
/// toggling register bank, an antenna driver, a corrupted data path.  That RTL
/// artefact is what the 2-safety properties catch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload {
    /// Power side channel: a shift register that, when armed, absorbs
    /// key-dependent bits every cycle and thereby modulates the dynamic power
    /// (the MOLES / AES-T100 family).
    PowerSideChannel,
    /// Leakage-current side channel: a register bank that toggles constantly
    /// once armed.
    LeakageCurrent,
    /// Key bits modulated onto an otherwise unused output pin, creating an RF
    /// beacon.
    RfAntenna,
    /// Denial of service: the ciphertext output is suppressed once armed.
    DenialOfService,
    /// Denial of service through a free-running oscillator enable that stays
    /// entirely outside the input cone (AES-T1900); only the coverage check
    /// can point at it.
    DosOscillator,
    /// Flip the least-significant bit of the pipeline register at the given
    /// structural level (2..=21), or of the ciphertext output for level 22.
    CiphertextBitFlip {
        /// Structural fan-out level of the corrupted signal (see
        /// `crate::aes` for the level map).
        level: usize,
    },
    /// Leak the secret (key / exponent) to a primary output once armed.
    LeakToOutput,
}

impl Payload {
    /// Short label matching the "Payload" column of Table I.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Payload::PowerSideChannel => "PSC",
            Payload::LeakageCurrent => "LC",
            Payload::RfAntenna => "RF",
            Payload::DenialOfService | Payload::DosOscillator => "DoS",
            Payload::CiphertextBitFlip { .. } => "bit flip",
            Payload::LeakToOutput => "OUT",
        }
    }
}

/// A complete Trojan: a trigger plus a payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrojanSpec {
    /// What arms the Trojan.
    pub trigger: Trigger,
    /// What it does once armed.
    pub payload: Payload,
}

impl TrojanSpec {
    /// Creates a Trojan specification.
    #[must_use]
    pub fn new(trigger: Trigger, payload: Payload) -> Self {
        TrojanSpec { trigger, payload }
    }
}

/// Builds the trigger circuit inside `d` and returns the 1-bit "armed"
/// condition.
///
/// `observed` is the primary-input expression the trigger watches (the
/// plaintext for the AES benchmarks, the message word for the RSA
/// benchmarks); input-independent triggers ignore it.  All trigger state
/// registers are named with a `trojan_` prefix so benign-state helpers can
/// exclude them.
///
/// # Errors
///
/// Propagates builder errors (e.g. a sequence value wider than `observed`).
pub fn build_trigger(
    d: &mut Design,
    observed: ExprId,
    trigger: &Trigger,
) -> Result<ExprId, DesignError> {
    match trigger {
        Trigger::PlaintextSequence(values) => {
            let n = values.len() as u128;
            let width = counter_width(values.len() as u64);
            let state = d.add_register("trojan_trigger_state", width, 0)?;
            let state_e = d.signal(state);
            let armed = d.eq_const(state_e, n)?;
            // Does the observed input match the value expected next?
            let mut match_current = d.zero(1)?;
            for (i, &value) in values.iter().enumerate() {
                let at_i = d.eq_const(state_e, i as u128)?;
                let observed_is = d.eq_const(observed, value)?;
                let both = d.and(at_i, observed_is)?;
                match_current = d.or(match_current, both)?;
            }
            let one = d.constant(1, width)?;
            let advanced = d.add(state_e, one)?;
            let zero = d.zero(width)?;
            let step = d.mux(match_current, advanced, zero)?;
            let hold = d.constant(n, width)?;
            let next = d.mux(armed, hold, step)?;
            d.set_register_next(state, next)?;
            Ok(armed)
        }
        Trigger::InputChangeCounter { threshold } => {
            let width = d.expr_width(observed);
            let prev = d.add_register("trojan_prev_input", width, 0)?;
            d.set_register_next(prev, observed)?;
            let changed = d.cmp_ne(observed, d.signal(prev))?;
            saturating_counter(d, "trojan_enc_count", *threshold, changed)
        }
        Trigger::ValueCounter { value, threshold } => {
            let hit = d.eq_const(observed, *value)?;
            saturating_counter(d, "trojan_value_count", *threshold, hit)
        }
        Trigger::CycleCounter { threshold } => {
            let always = d.ones(1)?;
            saturating_counter(d, "trojan_cycle_count", *threshold, always)
        }
    }
}

/// A counter register that increments when `increment` (1 bit) is set and
/// saturates at `threshold`; returns the 1-bit "reached threshold" condition.
///
/// # Errors
///
/// Propagates builder errors.
pub fn saturating_counter(
    d: &mut Design,
    name: &str,
    threshold: u64,
    increment: ExprId,
) -> Result<ExprId, DesignError> {
    let width = counter_width(threshold);
    let counter = d.add_register(name, width, 0)?;
    let counter_e = d.signal(counter);
    let at_threshold = d.eq_const(counter_e, u128::from(threshold))?;
    let inc = d.zero_ext(increment, width)?;
    let bumped = d.add(counter_e, inc)?;
    let next = d.mux(at_threshold, counter_e, bumped)?;
    d.set_register_next(counter, next)?;
    Ok(at_threshold)
}

/// Smallest register width that can hold `max_value`.
#[must_use]
pub fn counter_width(max_value: u64) -> u32 {
    (64 - max_value.leading_zeros()).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_widths() {
        assert_eq!(counter_width(0), 1);
        assert_eq!(counter_width(1), 1);
        assert_eq!(counter_width(2), 2);
        assert_eq!(counter_width(3), 2);
        assert_eq!(counter_width(255), 8);
        assert_eq!(counter_width(256), 9);
    }

    #[test]
    fn saturating_counter_arms_and_holds() {
        use htd_rtl::sim::Simulator;
        let mut d = Design::new("sat");
        let en = d.add_input("en", 1).unwrap();
        let en_e = d.signal(en);
        let armed = saturating_counter(&mut d, "count", 3, en_e).unwrap();
        d.add_output("armed", armed).unwrap();
        let design = d.validated().unwrap();
        let mut sim = Simulator::new(&design);
        sim.set_input_by_name("en", 1).unwrap();
        for cycle in 0..6 {
            let expect_armed = cycle >= 3;
            assert_eq!(
                sim.peek_by_name("armed").unwrap() == 1,
                expect_armed,
                "cycle {cycle}"
            );
            sim.step().unwrap();
        }
        // Counter saturates: stays armed even though increments continue.
        assert_eq!(sim.peek_by_name("armed").unwrap(), 1);
    }

    #[test]
    fn input_dependence_classification() {
        assert!(Trigger::PlaintextSequence(vec![1, 2]).is_input_dependent());
        assert!(Trigger::InputChangeCounter { threshold: 4 }.is_input_dependent());
        assert!(Trigger::ValueCounter {
            value: 3,
            threshold: 2
        }
        .is_input_dependent());
        assert!(!Trigger::CycleCounter { threshold: 8 }.is_input_dependent());
    }

    #[test]
    fn labels_match_table_terms() {
        assert_eq!(Trigger::PlaintextSequence(vec![]).label(), "plaintext seq.");
        assert_eq!(
            Trigger::CycleCounter { threshold: 1 }.label(),
            "# clock cycles"
        );
        assert_eq!(Payload::PowerSideChannel.label(), "PSC");
        assert_eq!(Payload::CiphertextBitFlip { level: 22 }.label(), "bit flip");
        assert_eq!(Payload::DosOscillator.label(), "DoS");
        assert_eq!(Payload::LeakToOutput.label(), "OUT");
    }
}
