//! The benchmark registry: every accelerator row of Table I plus the HT-free
//! reference designs.
//!
//! Each [`Benchmark`] knows how to build its (possibly infected) RTL design,
//! which payload/trigger class it represents (the paper's Table I columns),
//! and by which mechanism the detection flow is expected to catch it.
//!
//! ## Substitution notes (see also DESIGN.md)
//!
//! * The designs are our own word-level models of a pipelined AES-128, a
//!   BasicRSA modular exponentiator and an RS232 UART — not the Trust-Hub
//!   Verilog sources.  Trigger and payload classes are reproduced
//!   structurally, which is all the detection method interacts with.
//! * The Trust-Hub AES-T2600/T2800 triggers count *internal* values, which
//!   makes them input-independent from the point of view of the structural
//!   input-cone analysis; they are modelled here as free-running counters so
//!   that, as in the paper, the detection happens at the intermediate fanout
//!   property where their bit-flip payload touches the pipeline.
//! * Exact fanout-property indices depend on the pipeline microarchitecture;
//!   ours is built so the ciphertext sits at structural level 22, matching
//!   the paper's "fanout property 21" for AES-T2500/T2700.

use htd_rtl::{DesignError, SignalId, ValidatedDesign};

use crate::trojan::{Payload, Trigger, TrojanSpec};
use crate::{aes, rsa, uart};

/// Which accelerator a benchmark is based on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BaseDesign {
    /// The pipelined AES-128 encryption accelerator.
    Aes,
    /// The BasicRSA modular-exponentiation accelerator.
    BasicRsa,
    /// The RS232 UART case study.
    Rs232,
}

/// The detection mechanism a benchmark is expected to exercise.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExpectedDetection {
    /// The init property fails.
    InitProperty,
    /// The fanout property with this index fails.
    FanoutProperty(usize),
    /// Some fanout property fails (index depends on microarchitecture).
    AnyFanoutProperty,
    /// All properties hold; the coverage check reports uncovered signals.
    CoverageCheck,
    /// The design is Trojan-free and must verify secure.
    Secure,
}

/// Static description of one benchmark.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkInfo {
    /// Trust-Hub style name (e.g. `AES-T1400`).
    pub name: &'static str,
    /// The accelerator the Trojan is inserted into.
    pub base: BaseDesign,
    /// The "Payload" column of Table I.
    pub payload_label: &'static str,
    /// The "Trigger" column of Table I.
    pub trigger_label: &'static str,
    /// The "Detected by" column of Table I (the paper's result).
    pub paper_detected_by: &'static str,
    /// The mechanism our reproduction expects to fire.
    pub expected: ExpectedDetection,
    /// The Trojan inserted into the base design (`None` for HT-free designs).
    pub trojan: Option<TrojanSpec>,
}

/// All benchmarks of the evaluation: the 28 infected Table I rows, the
/// HT-free reference designs, and the UART case study.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Benchmark {
    AesT100,
    AesT1000,
    AesT1100,
    AesT1200,
    AesT1300,
    AesT1400,
    AesT1500,
    AesT1600,
    AesT1700,
    AesT1800,
    AesT1900,
    AesT2000,
    AesT2100,
    AesT2500,
    AesT2600,
    AesT2700,
    AesT2800,
    AesT200,
    AesT300,
    AesT400,
    AesT500,
    AesT600,
    AesT700,
    AesT800,
    AesT900,
    BasicRsaT200,
    BasicRsaT300,
    BasicRsaT400,
    Rs232T2400,
    AesHtFree,
    BasicRsaHtFree,
    Rs232HtFree,
}

/// Deterministic plaintext-sequence trigger values for a benchmark.
fn plaintext_sequence(seed: u64, length: usize) -> Vec<u128> {
    (0..length)
        .map(|i| {
            let x = u128::from(seed) * 0x9e37_79b9_7f4a_7c15 + i as u128 * 0x0123_4567_89ab_cdef;
            x | 1 // never the all-zero block, which is the reset value of the pipeline
        })
        .collect()
}

impl Benchmark {
    /// The 28 infected benchmarks, in the order of Table I of the paper.
    #[must_use]
    pub fn table1() -> Vec<Benchmark> {
        use Benchmark::*;
        vec![
            AesT100,
            AesT1000,
            AesT1100,
            AesT1200,
            AesT1300,
            AesT1400,
            AesT1500,
            AesT1600,
            AesT1700,
            AesT1800,
            AesT1900,
            AesT2000,
            AesT2100,
            AesT2500,
            AesT2600,
            AesT2700,
            AesT2800,
            AesT200,
            AesT300,
            AesT400,
            AesT500,
            AesT600,
            AesT700,
            AesT800,
            AesT900,
            BasicRsaT200,
            BasicRsaT300,
            BasicRsaT400,
        ]
    }

    /// The HT-free reference designs verified secure in Sec. VI of the paper.
    #[must_use]
    pub fn ht_free() -> Vec<Benchmark> {
        vec![
            Benchmark::AesHtFree,
            Benchmark::BasicRsaHtFree,
            Benchmark::Rs232HtFree,
        ]
    }

    /// All benchmarks (infected, case study, and HT-free).
    #[must_use]
    pub fn all() -> Vec<Benchmark> {
        let mut all = Self::table1();
        all.push(Benchmark::Rs232T2400);
        all.extend(Self::ht_free());
        all
    }

    /// The Trust-Hub style name of the benchmark.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.info().name
    }

    /// Full static description (labels, Trojan specification, expected
    /// detection mechanism).
    #[must_use]
    pub fn info(&self) -> BenchmarkInfo {
        use Benchmark::*;
        use ExpectedDetection as E;
        use Payload as P;
        use Trigger as T;

        let psc = |name, seed, paper| {
            aes_row(
                name,
                "PSC",
                "plaintext seq.",
                paper,
                E::InitProperty,
                TrojanSpec::new(
                    T::PlaintextSequence(plaintext_sequence(seed, 2 + (seed as usize % 3))),
                    P::PowerSideChannel,
                ),
            )
        };
        let psc_count = |name, threshold, paper| {
            aes_row(
                name,
                "PSC",
                "# encryptions",
                paper,
                E::InitProperty,
                TrojanSpec::new(T::InputChangeCounter { threshold }, P::PowerSideChannel),
            )
        };

        match self {
            AesT100 => psc("AES-T100", 1, "init property"),
            AesT1000 => psc("AES-T1000", 10, "init property"),
            AesT1100 => psc("AES-T1100", 11, "init property"),
            AesT1200 => psc_count("AES-T1200", 128, "init property"),
            AesT1300 => psc("AES-T1300", 13, "init property"),
            AesT1400 => aes_row(
                "AES-T1400",
                "PSC",
                "plaintext seq.",
                "init property",
                E::InitProperty,
                TrojanSpec::new(
                    T::PlaintextSequence(plaintext_sequence(14, 4)),
                    P::PowerSideChannel,
                ),
            ),
            AesT1500 => psc_count("AES-T1500", 4096, "init property"),
            AesT1600 => aes_row(
                "AES-T1600",
                "RF",
                "plaintext seq.",
                "init property",
                E::InitProperty,
                TrojanSpec::new(
                    T::PlaintextSequence(plaintext_sequence(16, 3)),
                    P::RfAntenna,
                ),
            ),
            AesT1700 => aes_row(
                "AES-T1700",
                "RF",
                "# encryptions",
                "init property",
                E::InitProperty,
                TrojanSpec::new(T::InputChangeCounter { threshold: 64 }, P::RfAntenna),
            ),
            AesT1800 => aes_row(
                "AES-T1800",
                "DoS",
                "plaintext seq.",
                "init property",
                E::InitProperty,
                TrojanSpec::new(
                    T::PlaintextSequence(plaintext_sequence(18, 2)),
                    P::DenialOfService,
                ),
            ),
            AesT1900 => aes_row(
                "AES-T1900",
                "DoS",
                "# encryptions",
                "coverage check",
                E::CoverageCheck,
                TrojanSpec::new(T::CycleCounter { threshold: 500_000 }, P::DosOscillator),
            ),
            AesT2000 => aes_row(
                "AES-T2000",
                "LC",
                "plaintext seq.",
                "init property",
                E::InitProperty,
                TrojanSpec::new(
                    T::PlaintextSequence(plaintext_sequence(20, 3)),
                    P::LeakageCurrent,
                ),
            ),
            AesT2100 => aes_row(
                "AES-T2100",
                "LC",
                "# encryptions",
                "init property",
                E::InitProperty,
                TrojanSpec::new(T::InputChangeCounter { threshold: 256 }, P::LeakageCurrent),
            ),
            AesT2500 => aes_row(
                "AES-T2500",
                "bit flip",
                "# clock cycles",
                "fanout property 21",
                E::FanoutProperty(21),
                TrojanSpec::new(
                    T::CycleCounter {
                        threshold: 1_000_000,
                    },
                    P::CiphertextBitFlip {
                        level: aes::OUTPUT_LEVEL,
                    },
                ),
            ),
            AesT2600 => aes_row(
                "AES-T2600",
                "bit flip",
                "# values",
                "fanout property 7",
                E::FanoutProperty(7),
                TrojanSpec::new(
                    T::CycleCounter { threshold: 65_536 },
                    P::CiphertextBitFlip { level: 8 },
                ),
            ),
            AesT2700 => aes_row(
                "AES-T2700",
                "bit flip",
                "# clock cycles",
                "fanout property 21",
                E::FanoutProperty(21),
                TrojanSpec::new(
                    T::CycleCounter { threshold: 250_000 },
                    P::CiphertextBitFlip {
                        level: aes::OUTPUT_LEVEL,
                    },
                ),
            ),
            AesT2800 => aes_row(
                "AES-T2800",
                "bit flip",
                "# values",
                "fanout property 11",
                E::FanoutProperty(11),
                TrojanSpec::new(
                    T::CycleCounter { threshold: 131_072 },
                    P::CiphertextBitFlip { level: 12 },
                ),
            ),
            AesT200 => psc("AES-T200", 2, "init property"),
            AesT300 => psc("AES-T300", 3, "init property"),
            AesT400 => aes_row(
                "AES-T400",
                "RF",
                "plaintext seq.",
                "init property",
                E::InitProperty,
                TrojanSpec::new(T::PlaintextSequence(plaintext_sequence(4, 2)), P::RfAntenna),
            ),
            AesT500 => aes_row(
                "AES-T500",
                "DoS",
                "plaintext seq.",
                "init property",
                E::InitProperty,
                TrojanSpec::new(
                    T::PlaintextSequence(plaintext_sequence(5, 3)),
                    P::DenialOfService,
                ),
            ),
            AesT600 => aes_row(
                "AES-T600",
                "LC",
                "plaintext seq.",
                "init property",
                E::InitProperty,
                TrojanSpec::new(
                    T::PlaintextSequence(plaintext_sequence(6, 2)),
                    P::LeakageCurrent,
                ),
            ),
            AesT700 => psc("AES-T700", 7, "init property"),
            AesT800 => psc("AES-T800", 8, "init property"),
            AesT900 => psc_count("AES-T900", 32, "init property"),
            BasicRsaT200 => BenchmarkInfo {
                name: "BasicRSA-T200",
                base: BaseDesign::BasicRsa,
                payload_label: "DoS",
                trigger_label: "plaintext seq.",
                paper_detected_by: "init property",
                expected: E::InitProperty,
                trojan: Some(TrojanSpec::new(
                    T::PlaintextSequence(vec![0x2bad, 0xbeef]),
                    P::DenialOfService,
                )),
            },
            BasicRsaT300 => BenchmarkInfo {
                name: "BasicRSA-T300",
                base: BaseDesign::BasicRsa,
                payload_label: "OUT",
                trigger_label: "# encryptions",
                paper_detected_by: "init property",
                expected: E::InitProperty,
                trojan: Some(TrojanSpec::new(
                    T::InputChangeCounter { threshold: 8 },
                    P::LeakToOutput,
                )),
            },
            BasicRsaT400 => BenchmarkInfo {
                name: "BasicRSA-T400",
                base: BaseDesign::BasicRsa,
                payload_label: "OUT",
                trigger_label: "# encryptions",
                paper_detected_by: "init property",
                expected: E::InitProperty,
                trojan: Some(TrojanSpec::new(
                    T::InputChangeCounter { threshold: 16 },
                    P::RfAntenna,
                )),
            },
            Rs232T2400 => BenchmarkInfo {
                name: "RS232-T2400",
                base: BaseDesign::Rs232,
                payload_label: "bit flip",
                trigger_label: "# clock cycles",
                paper_detected_by: "fanout property",
                expected: E::AnyFanoutProperty,
                trojan: Some(TrojanSpec::new(
                    T::CycleCounter { threshold: 100_000 },
                    P::CiphertextBitFlip { level: 1 },
                )),
            },
            AesHtFree => BenchmarkInfo {
                name: "AES (HT-free)",
                base: BaseDesign::Aes,
                payload_label: "-",
                trigger_label: "-",
                paper_detected_by: "secure",
                expected: E::Secure,
                trojan: None,
            },
            BasicRsaHtFree => BenchmarkInfo {
                name: "BasicRSA (HT-free)",
                base: BaseDesign::BasicRsa,
                payload_label: "-",
                trigger_label: "-",
                paper_detected_by: "secure",
                expected: E::Secure,
                trojan: None,
            },
            Rs232HtFree => BenchmarkInfo {
                name: "RS232 (HT-free)",
                base: BaseDesign::Rs232,
                payload_label: "-",
                trigger_label: "-",
                paper_detected_by: "secure",
                expected: E::Secure,
                trojan: None,
            },
        }
    }

    /// Builds the benchmark's RTL design.
    ///
    /// # Errors
    ///
    /// Propagates [`DesignError`] from the underlying design generators.
    pub fn build(&self) -> Result<ValidatedDesign, DesignError> {
        let info = self.info();
        let rtl_name: String = info
            .name
            .to_ascii_lowercase()
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        match info.base {
            BaseDesign::Aes => aes::build_aes(&rtl_name, info.trojan.as_ref()),
            BaseDesign::BasicRsa => rsa::build_rsa(&rtl_name, info.trojan.as_ref()),
            BaseDesign::Rs232 => uart::build_uart(&rtl_name, info.trojan.as_ref()),
        }
    }

    /// The benign-state waiver list appropriate for this benchmark's base
    /// design (the registers a verification engineer would disqualify as
    /// Trojan candidates; see Sec. V-B of the paper).
    #[must_use]
    pub fn benign_state(&self, design: &ValidatedDesign) -> Vec<SignalId> {
        match self.info().base {
            // The pipelined AES is data-driven: no waivers are needed at all.
            BaseDesign::Aes => Vec::new(),
            BaseDesign::BasicRsa => rsa::benign_state(design),
            BaseDesign::Rs232 => uart::benign_state(design),
        }
    }
}

fn aes_row(
    name: &'static str,
    payload_label: &'static str,
    trigger_label: &'static str,
    paper_detected_by: &'static str,
    expected: ExpectedDetection,
    trojan: TrojanSpec,
) -> BenchmarkInfo {
    BenchmarkInfo {
        name,
        base: BaseDesign::Aes,
        payload_label,
        trigger_label,
        paper_detected_by,
        expected,
        trojan: Some(trojan),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_28_rows_in_paper_order() {
        let rows = Benchmark::table1();
        assert_eq!(rows.len(), 28);
        assert_eq!(rows.first().unwrap().name(), "AES-T100");
        assert_eq!(rows.last().unwrap().name(), "BasicRSA-T400");
        let aes_rows = rows
            .iter()
            .filter(|b| b.info().base == BaseDesign::Aes)
            .count();
        let rsa_rows = rows
            .iter()
            .filter(|b| b.info().base == BaseDesign::BasicRsa)
            .count();
        assert_eq!(aes_rows, 25);
        assert_eq!(rsa_rows, 3);
    }

    #[test]
    fn every_infected_benchmark_has_a_trojan_and_labels() {
        for b in Benchmark::table1() {
            let info = b.info();
            assert!(info.trojan.is_some(), "{} has no trojan", info.name);
            assert!(!info.payload_label.is_empty());
            assert!(!info.trigger_label.is_empty());
            assert_ne!(info.expected, ExpectedDetection::Secure);
        }
        for b in Benchmark::ht_free() {
            assert!(b.info().trojan.is_none());
            assert_eq!(b.info().expected, ExpectedDetection::Secure);
        }
    }

    #[test]
    fn expected_detection_matches_paper_column() {
        for b in Benchmark::table1() {
            let info = b.info();
            match info.expected {
                ExpectedDetection::InitProperty => {
                    assert_eq!(info.paper_detected_by, "init property", "{}", info.name);
                }
                ExpectedDetection::FanoutProperty(k) => {
                    assert_eq!(
                        info.paper_detected_by,
                        format!("fanout property {k}"),
                        "{}",
                        info.name
                    );
                }
                ExpectedDetection::CoverageCheck => {
                    assert_eq!(info.paper_detected_by, "coverage check", "{}", info.name);
                }
                ExpectedDetection::AnyFanoutProperty | ExpectedDetection::Secure => {
                    panic!("unexpected class for a Table I row: {}", info.name)
                }
            }
        }
    }

    #[test]
    fn all_benchmarks_build_valid_designs() {
        // Building every design exercises all trigger/payload combinations;
        // validation (widths, combinational loops, completeness) must pass.
        for b in Benchmark::all() {
            let design = b
                .build()
                .unwrap_or_else(|e| panic!("{} failed to build: {e}", b.name()));
            assert!(design.design().num_signals() > 0);
        }
    }

    #[test]
    fn trojan_registers_are_clearly_named() {
        for b in Benchmark::table1() {
            let design = b.build().unwrap();
            let d = design.design();
            let has_trojan_reg = d
                .registers()
                .iter()
                .any(|&r| d.signal_name(r).starts_with("trojan_"));
            let corrupts_output_only = matches!(
                b.info().trojan.as_ref().map(|t| &t.payload),
                Some(
                    Payload::CiphertextBitFlip { .. }
                        | Payload::DenialOfService
                        | Payload::LeakToOutput
                        | Payload::RfAntenna
                )
            );
            assert!(
                has_trojan_reg || corrupts_output_only,
                "{} has neither trojan state nor an output-corrupting payload",
                b.name()
            );
            // Waivers never include trojan state.
            let benign = b.benign_state(&design);
            assert!(benign
                .iter()
                .all(|&s| !d.signal_name(s).starts_with("trojan_")));
        }
    }

    #[test]
    fn plaintext_sequences_are_deterministic_and_nonzero() {
        let a = plaintext_sequence(14, 4);
        let b = plaintext_sequence(14, 4);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| v != 0));
        assert_ne!(plaintext_sequence(1, 2), plaintext_sequence(2, 2));
    }
}
