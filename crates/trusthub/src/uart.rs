//! An RS232 UART (transmitter + receiver) at RTL, with an optional hardware
//! Trojan — the stand-in for the Trust-Hub RS232-T2400 case study.
//!
//! The UART is deliberately *not* a non-interfering accelerator: its baud
//! counters, bit counters and busy flags depend on the history of earlier
//! inputs.  The paper uses exactly such a design to demonstrate that the
//! method still works for IPs with more complex control behaviour, at the cost
//! of a few spurious counterexamples that the engineer discharges with
//! equality assumptions; [`benign_state`] provides that waiver list.

use htd_rtl::{Design, DesignError, SignalId, ValidatedDesign};

use crate::trojan::{build_trigger, Payload, TrojanSpec};

/// Clock cycles per UART bit (kept small so simulations stay short).
pub const BAUD_DIVISOR: u64 = 4;

/// Number of bit slots in a frame: start bit, 8 data bits, stop bit.
pub const FRAME_BITS: u64 = 10;

/// Cycles needed to transmit one frame.
pub const FRAME_CYCLES: u64 = BAUD_DIVISOR * FRAME_BITS;

/// Builds the UART, optionally infected with a Trojan that corrupts the
/// serial line once armed.
///
/// # Errors
///
/// Propagates [`DesignError`] from the RTL builder.
///
/// # Example
///
/// ```
/// use htd_trusthub::uart::{build_uart, FRAME_CYCLES};
/// use htd_rtl::sim::Simulator;
///
/// # fn main() -> Result<(), htd_rtl::DesignError> {
/// let design = build_uart("uart_clean", None)?;
/// let mut sim = Simulator::new(&design);
/// // Idle line is high.
/// assert_eq!(sim.peek_by_name("txd")?, 1);
/// sim.set_input_by_name("tx_data", 0xA5)?;
/// sim.set_input_by_name("tx_start", 1)?;
/// sim.step()?;
/// sim.set_input_by_name("tx_start", 0)?;
/// // The start bit pulls the line low.
/// assert_eq!(sim.peek_by_name("txd")?, 0);
/// sim.run(FRAME_CYCLES)?;
/// // Back to idle after the frame.
/// assert_eq!(sim.peek_by_name("txd")?, 1);
/// # Ok(())
/// # }
/// ```
pub fn build_uart(name: &str, trojan: Option<&TrojanSpec>) -> Result<ValidatedDesign, DesignError> {
    let mut d = Design::new(name);
    let tx_data = d.add_input("tx_data", 8)?;
    let tx_start = d.add_input("tx_start", 1)?;
    let rxd = d.add_input("rxd", 1)?;
    let tx_data_e = d.signal(tx_data);
    let tx_start_e = d.signal(tx_start);
    let rxd_e = d.signal(rxd);

    let armed = match trojan {
        Some(spec) => {
            let observed = d.zero_ext(tx_data_e, 128)?;
            Some(build_trigger(&mut d, observed, &spec.trigger)?)
        }
        None => None,
    };

    // ------------------------------------------------------------------
    // Transmitter
    // ------------------------------------------------------------------
    let tx_shift = d.add_register("tx_shift", 10, 0x3ff)?;
    let tx_bits = d.add_register("tx_bits", 4, 0)?;
    let tx_baud = d.add_register("tx_baud", 3, 0)?;
    let tx_busy = d.add_register("tx_busy", 1, 0)?;

    let busy_e = d.signal(tx_busy);
    let idle = d.not(busy_e);
    let load = d.and(tx_start_e, idle)?;
    let baud_e = d.signal(tx_baud);
    let baud_tick = d.eq_const(baud_e, BAUD_DIVISOR as u128 - 1)?;
    let advancing = d.and(busy_e, baud_tick)?;
    let bits_e = d.signal(tx_bits);
    let on_last_bit = d.eq_const(bits_e, 1)?;
    let frame_done = d.and(advancing, on_last_bit)?;

    // Baud counter.
    let one3 = d.constant(1, 3)?;
    let baud_inc = d.add(baud_e, one3)?;
    let zero3 = d.zero(3)?;
    let baud_wrapped = d.mux(baud_tick, zero3, baud_inc)?;
    let baud_running = d.mux(busy_e, baud_wrapped, zero3)?;
    let baud_next = d.mux(load, zero3, baud_running)?;
    d.set_register_next(tx_baud, baud_next)?;

    // Bit counter.
    let one4 = d.constant(1, 4)?;
    let bits_dec = d.sub(bits_e, one4)?;
    let bits_advanced = d.mux(advancing, bits_dec, bits_e)?;
    let full_frame = d.constant(FRAME_BITS as u128, 4)?;
    let bits_next = d.mux(load, full_frame, bits_advanced)?;
    d.set_register_next(tx_bits, bits_next)?;

    // Busy flag.
    let one1 = d.ones(1)?;
    let zero1 = d.zero(1)?;
    let busy_after_done = d.mux(frame_done, zero1, busy_e)?;
    let busy_next = d.mux(load, one1, busy_after_done)?;
    d.set_register_next(tx_busy, busy_next)?;

    // Shift register: {stop = 1, data[7:0], start = 0}, sent LSB first.
    let shift_e = d.signal(tx_shift);
    let frame = {
        let stop = d.ones(1)?;
        let start = d.zero(1)?;
        d.concat_all(&[stop, tx_data_e, start])?
    };
    let shifted = {
        let high9 = d.slice(shift_e, 9, 1)?;
        let fill = d.ones(1)?;
        d.concat(fill, high9)?
    };
    let shift_advanced = d.mux(advancing, shifted, shift_e)?;
    let shift_next = d.mux(load, frame, shift_advanced)?;
    d.set_register_next(tx_shift, shift_next)?;

    // Serial output: shift LSB while busy, idle high otherwise; the Trojan
    // payload corrupts this line once armed.
    let line_bit = d.bit(shift_e, 0)?;
    let idle_high = d.ones(1)?;
    let mut txd = d.mux(busy_e, line_bit, idle_high)?;
    if let (Some(spec), Some(armed)) = (trojan, armed) {
        match spec.payload {
            Payload::CiphertextBitFlip { .. } => {
                txd = d.xor(txd, armed)?;
            }
            Payload::DenialOfService => {
                let forced_low = d.zero(1)?;
                txd = d.mux(armed, forced_low, txd)?;
            }
            _ => {}
        }
    }
    d.add_output("txd", txd)?;

    // ------------------------------------------------------------------
    // Receiver (simplified sampling: one sample per baud interval)
    // ------------------------------------------------------------------
    let rx_busy = d.add_register("rx_busy", 1, 0)?;
    let rx_baud = d.add_register("rx_baud", 3, 0)?;
    let rx_bits = d.add_register("rx_bits", 4, 0)?;
    let rx_shift = d.add_register("rx_shift", 8, 0)?;
    let rx_data = d.add_register("rx_data", 8, 0)?;
    let rx_valid = d.add_register("rx_valid", 1, 0)?;

    let rx_busy_e = d.signal(rx_busy);
    let rx_idle = d.not(rx_busy_e);
    let start_edge = {
        let low = d.not(rxd_e);
        d.and(rx_idle, low)?
    };
    let rx_baud_e = d.signal(rx_baud);
    let rx_wrap = d.eq_const(rx_baud_e, BAUD_DIVISOR as u128 - 1)?;
    // Sample in the middle of each bit slot so the small phase offset between
    // transmitter and receiver does not matter.
    let rx_mid = d.eq_const(rx_baud_e, (BAUD_DIVISOR / 2) as u128 - 1)?;
    let rx_advancing = d.and(rx_busy_e, rx_mid)?;
    let rx_bits_e = d.signal(rx_bits);
    let rx_last = d.eq_const(rx_bits_e, 1)?;
    let rx_done = d.and(rx_advancing, rx_last)?;

    let rx_baud_inc = d.add(rx_baud_e, one3)?;
    let rx_baud_wrapped = d.mux(rx_wrap, zero3, rx_baud_inc)?;
    let rx_baud_running = d.mux(rx_busy_e, rx_baud_wrapped, zero3)?;
    let rx_baud_next = d.mux(start_edge, zero3, rx_baud_running)?;
    d.set_register_next(rx_baud, rx_baud_next)?;

    let rx_bits_dec = d.sub(rx_bits_e, one4)?;
    let rx_bits_advanced = d.mux(rx_advancing, rx_bits_dec, rx_bits_e)?;
    let rx_full = d.constant(FRAME_BITS as u128, 4)?;
    let rx_bits_next = d.mux(start_edge, rx_full, rx_bits_advanced)?;
    d.set_register_next(rx_bits, rx_bits_next)?;

    let rx_busy_after_done = d.mux(rx_done, zero1, rx_busy_e)?;
    let rx_busy_next = d.mux(start_edge, one1, rx_busy_after_done)?;
    d.set_register_next(rx_busy, rx_busy_next)?;

    // Shift the sampled line bit into the MSB (LSB arrives first).
    let rx_shift_e = d.signal(rx_shift);
    let rx_sampled = {
        let high7 = d.slice(rx_shift_e, 7, 1)?;
        d.concat(rxd_e, high7)?
    };
    let rx_shift_next = d.mux(rx_advancing, rx_sampled, rx_shift_e)?;
    d.set_register_next(rx_shift, rx_shift_next)?;

    let rx_data_next = d.mux(rx_done, rx_shift_e, d.signal(rx_data))?;
    d.set_register_next(rx_data, rx_data_next)?;
    let rx_valid_after = d.mux(start_edge, zero1, d.signal(rx_valid))?;
    let rx_valid_next = d.mux(rx_done, one1, rx_valid_after)?;
    d.set_register_next(rx_valid, rx_valid_next)?;

    d.add_output("rx_data_out", d.signal(rx_data))?;
    d.add_output("rx_valid_out", d.signal(rx_valid))?;

    d.validated()
}

/// The benign control/datapath registers of the UART (everything that is not
/// Trojan state) — the waiver list for the counterexample triage reported in
/// the paper's UART case study.
#[must_use]
pub fn benign_state(design: &ValidatedDesign) -> Vec<SignalId> {
    let d = design.design();
    d.registers()
        .into_iter()
        .filter(|&r| !d.signal_name(r).starts_with("trojan_"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trojan::Trigger;
    use htd_rtl::sim::Simulator;

    /// Collects the txd waveform while transmitting one byte.
    fn transmit(design: &ValidatedDesign, byte: u8) -> Vec<u128> {
        let mut sim = Simulator::new(design);
        sim.set_input_by_name("tx_data", u128::from(byte)).unwrap();
        sim.set_input_by_name("tx_start", 1).unwrap();
        sim.set_input_by_name("rxd", 1).unwrap();
        sim.step().unwrap();
        sim.set_input_by_name("tx_start", 0).unwrap();
        let mut wave = Vec::new();
        for _ in 0..FRAME_CYCLES + 2 {
            wave.push(sim.peek_by_name("txd").unwrap());
            sim.step().unwrap();
        }
        wave
    }

    fn decode_frame(wave: &[u128]) -> (u128, u8, u128) {
        // Sample the middle of each bit slot.
        let sample = |slot: u64| wave[(slot * BAUD_DIVISOR + BAUD_DIVISOR / 2) as usize];
        let start = sample(0);
        let mut data = 0u8;
        for bit in 0..8u64 {
            data |= (sample(1 + bit) as u8) << bit;
        }
        let stop = sample(9);
        (start, data, stop)
    }

    #[test]
    fn transmitter_sends_correct_frames() {
        let design = build_uart("uart_tx", None).unwrap();
        for byte in [0x00u8, 0xff, 0xA5, 0x5A, 0x81] {
            let wave = transmit(&design, byte);
            let (start, data, stop) = decode_frame(&wave);
            assert_eq!(start, 0, "start bit for {byte:#x}");
            assert_eq!(data, byte, "data bits for {byte:#x}");
            assert_eq!(stop, 1, "stop bit for {byte:#x}");
        }
    }

    #[test]
    fn line_idles_high_before_and_after_frames() {
        let design = build_uart("uart_idle", None).unwrap();
        let mut sim = Simulator::new(&design);
        sim.set_input_by_name("rxd", 1).unwrap();
        assert_eq!(sim.peek_by_name("txd").unwrap(), 1);
        sim.run(5).unwrap();
        assert_eq!(sim.peek_by_name("txd").unwrap(), 1);
    }

    #[test]
    fn receiver_recovers_transmitted_byte_via_loopback() {
        let design = build_uart("uart_loop", None).unwrap();
        let mut sim = Simulator::new(&design);
        let byte = 0xC3u8;
        sim.set_input_by_name("tx_data", u128::from(byte)).unwrap();
        sim.set_input_by_name("tx_start", 1).unwrap();
        sim.set_input_by_name("rxd", 1).unwrap();
        sim.step().unwrap();
        sim.set_input_by_name("tx_start", 0).unwrap();
        // Feed txd back into rxd each cycle.
        for _ in 0..(FRAME_CYCLES + BAUD_DIVISOR * 2) {
            let txd = sim.peek_by_name("txd").unwrap();
            sim.set_input_by_name("rxd", txd).unwrap();
            sim.step().unwrap();
        }
        assert_eq!(sim.peek_by_name("rx_valid_out").unwrap(), 1);
        assert_eq!(sim.peek_by_name("rx_data_out").unwrap(), u128::from(byte));
    }

    #[test]
    fn trojan_corrupts_the_line_after_the_trigger_fires() {
        let spec = TrojanSpec::new(
            Trigger::CycleCounter { threshold: 100 },
            Payload::CiphertextBitFlip { level: 1 },
        );
        let design = build_uart("uart_t2400_like", Some(&spec)).unwrap();
        let mut sim = Simulator::new(&design);
        sim.set_input_by_name("rxd", 1).unwrap();
        // Before the trigger threshold the idle line is high...
        assert_eq!(sim.peek_by_name("txd").unwrap(), 1);
        sim.run(101).unwrap();
        // ...after it, the idle line reads low: the frame is corrupted.
        assert_eq!(sim.peek_by_name("txd").unwrap(), 0);
    }

    #[test]
    fn benign_state_covers_all_uart_registers() {
        let design = build_uart("uart_waivers", None).unwrap();
        let benign = benign_state(&design);
        assert_eq!(benign.len(), design.design().registers().len());
    }
}
