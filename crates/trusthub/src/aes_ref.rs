//! Software reference model of AES-128 encryption (FIPS-197).
//!
//! Used to validate the RTL accelerator of [`crate::aes`] cycle-by-cycle: the
//! pipelined hardware must produce exactly these ciphertexts for the
//! plaintext/key pairs fed into it.  The reference also exposes the S-box and
//! round-key schedule so the RTL generator and the Trojan payloads (which leak
//! round-key bits) can share one source of truth.

/// The AES S-box.
pub const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// The round constants of the AES-128 key schedule.
pub const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Converts a 128-bit value (big-endian byte order: bits `[127:120]` are byte
/// 0) into the 16-byte block used by the byte-oriented reference.
#[must_use]
pub fn block_from_u128(value: u128) -> [u8; 16] {
    let mut out = [0u8; 16];
    for (i, byte) in out.iter_mut().enumerate() {
        *byte = ((value >> (120 - 8 * i)) & 0xff) as u8;
    }
    out
}

/// Converts a 16-byte block back into a 128-bit value (inverse of
/// [`block_from_u128`]).
#[must_use]
pub fn block_to_u128(block: &[u8; 16]) -> u128 {
    block
        .iter()
        .fold(0u128, |acc, &b| (acc << 8) | u128::from(b))
}

fn xtime(b: u8) -> u8 {
    let shifted = b << 1;
    if b & 0x80 != 0 {
        shifted ^ 0x1b
    } else {
        shifted
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn shift_rows(state: &mut [u8; 16]) {
    let old = *state;
    for row in 0..4usize {
        for col in 0..4usize {
            state[4 * col + row] = old[4 * ((col + row) % 4) + row];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for col in 0..4 {
        let a = [
            state[4 * col],
            state[4 * col + 1],
            state[4 * col + 2],
            state[4 * col + 3],
        ];
        let all = a[0] ^ a[1] ^ a[2] ^ a[3];
        let old = a;
        for i in 0..4 {
            state[4 * col + i] = old[i] ^ all ^ xtime(old[i] ^ old[(i + 1) % 4]);
        }
    }
}

fn add_round_key(state: &mut [u8; 16], round_key: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(round_key) {
        *s ^= k;
    }
}

/// Expands a 128-bit key into the 11 round keys of AES-128.
#[must_use]
pub fn key_schedule(key: [u8; 16]) -> [[u8; 16]; 11] {
    let mut round_keys = [[0u8; 16]; 11];
    round_keys[0] = key;
    for round in 1..=10 {
        let prev = round_keys[round - 1];
        let mut next = [0u8; 16];
        // Word 0: prev word 0 ^ SubWord(RotWord(prev word 3)) ^ rcon.
        let rot = [prev[13], prev[14], prev[15], prev[12]];
        for i in 0..4 {
            next[i] = prev[i] ^ SBOX[rot[i] as usize] ^ if i == 0 { RCON[round - 1] } else { 0 };
        }
        for word in 1..4 {
            for i in 0..4 {
                next[4 * word + i] = next[4 * (word - 1) + i] ^ prev[4 * word + i];
            }
        }
        round_keys[round] = next;
    }
    round_keys
}

/// The state of one AES-128 encryption *after* `rounds` full rounds (round 0
/// being the initial AddRoundKey).  `rounds == 10` yields the ciphertext.
///
/// Exposed so the RTL pipeline can be validated stage by stage, not only at
/// the ciphertext.
#[must_use]
pub fn encrypt_partial(plaintext: [u8; 16], key: [u8; 16], rounds: usize) -> [u8; 16] {
    let round_keys = key_schedule(key);
    let mut state = plaintext;
    add_round_key(&mut state, &round_keys[0]);
    for (round, round_key) in round_keys
        .iter()
        .enumerate()
        .take(rounds.min(10) + 1)
        .skip(1)
    {
        sub_bytes(&mut state);
        shift_rows(&mut state);
        if round != 10 {
            mix_columns(&mut state);
        }
        add_round_key(&mut state, round_key);
    }
    state
}

/// AES-128 block encryption.
///
/// # Example
///
/// ```
/// use htd_trusthub::aes_ref::{block_from_u128, block_to_u128, encrypt};
///
/// let plaintext = block_from_u128(0x3243f6a8_885a308d_313198a2_e0370734);
/// let key = block_from_u128(0x2b7e1516_28aed2a6_abf71588_09cf4f3c);
/// let ciphertext = encrypt(plaintext, key);
/// assert_eq!(block_to_u128(&ciphertext), 0x3925841d_02dc09fb_dc118597_196a0b32);
/// ```
#[must_use]
pub fn encrypt(plaintext: [u8; 16], key: [u8; 16]) -> [u8; 16] {
    encrypt_partial(plaintext, key, 10)
}

/// Convenience wrapper operating directly on 128-bit values.
#[must_use]
pub fn encrypt_u128(plaintext: u128, key: u128) -> u128 {
    block_to_u128(&encrypt(block_from_u128(plaintext), block_from_u128(key)))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS-197 Appendix B example vector.
    #[test]
    fn fips_197_appendix_b_vector() {
        let pt = 0x3243f6a8_885a308d_313198a2_e0370734u128;
        let key = 0x2b7e1516_28aed2a6_abf71588_09cf4f3cu128;
        assert_eq!(encrypt_u128(pt, key), 0x3925841d_02dc09fb_dc118597_196a0b32);
    }

    /// FIPS-197 Appendix C.1 (AES-128) known-answer test.
    #[test]
    fn fips_197_appendix_c1_vector() {
        let pt = 0x00112233_44556677_8899aabb_ccddeeffu128;
        let key = 0x00010203_04050607_08090a0b_0c0d0e0fu128;
        assert_eq!(encrypt_u128(pt, key), 0x69c4e0d8_6a7b0430_d8cdb780_70b4c55a);
    }

    #[test]
    fn all_zero_plaintext_and_key() {
        // Well-known AES-128 vector for the all-zero block and key.
        assert_eq!(encrypt_u128(0, 0), 0x66e94bd4_ef8a2c3b_884cfa59_ca342b2e);
    }

    #[test]
    fn block_conversion_roundtrip() {
        for value in [0u128, 1, u128::MAX, 0x0123456789abcdef_0fedcba987654321] {
            assert_eq!(block_to_u128(&block_from_u128(value)), value);
        }
        let block = block_from_u128(0x0102030405060708_090a0b0c0d0e0f10);
        assert_eq!(block[0], 0x01);
        assert_eq!(block[15], 0x10);
    }

    #[test]
    fn key_schedule_matches_fips_example() {
        // FIPS-197 Appendix A.1: first and last round keys for the example key.
        let keys = key_schedule(block_from_u128(0x2b7e1516_28aed2a6_abf71588_09cf4f3c));
        assert_eq!(
            block_to_u128(&keys[1]),
            0xa0fafe17_88542cb1_23a33939_2a6c7605
        );
        assert_eq!(
            block_to_u128(&keys[10]),
            0xd014f9a8_c9ee2589_e13f0cc8_b6630ca6
        );
    }

    #[test]
    fn partial_rounds_compose() {
        let pt = block_from_u128(0x3243f6a8_885a308d_313198a2_e0370734);
        let key = block_from_u128(0x2b7e1516_28aed2a6_abf71588_09cf4f3c);
        // Round 1 state from FIPS-197 Appendix B ("Start of Round 2").
        let after_round1 = encrypt_partial(pt, key, 1);
        assert_eq!(
            block_to_u128(&after_round1),
            0xa49c7ff2_689f352b_6b5bea43_026a5049
        );
        // Running all 10 rounds through encrypt_partial equals encrypt.
        assert_eq!(encrypt_partial(pt, key, 10), encrypt(pt, key));
    }

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 256];
        for &v in SBOX.iter() {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }
}
