//! A pipelined AES-128 encryption accelerator at RTL, with optional hardware
//! Trojans — the stand-in for the Trust-Hub AES-T benchmark family.
//!
//! # Microarchitecture
//!
//! The accelerator is a fully unrolled, two-stages-per-round pipeline that
//! accepts a new (plaintext, key) pair every clock cycle — a *non-interfering*
//! design in the sense of the paper: the ciphertext produced for one input is
//! independent of any earlier or later input.
//!
//! | structural level | registers | contents |
//! |---|---|---|
//! | 1 | `state_r0`, `key_r0` | initial AddRoundKey, key capture |
//! | 2·r | `state_sub_r{r}`, `key_r{r}` | SubBytes+ShiftRows of round *r*, round key *r* |
//! | 2·r+1 | `state_r{r}`, `key_pipe_r{r}` | MixColumns+AddRoundKey of round *r* |
//! | 22 | `ciphertext` (output) | combinational read of `state_r10` |
//!
//! The structural level is exactly the `fanouts_CCk` level of the detection
//! flow, so a payload injected at level *k* is detected by
//! `fanout_property_{k-1}` — a ciphertext bit flip (level 22) by
//! `fanout_property_21`, matching the AES-T2500 row of Table I.
//!
//! The pipeline latency is [`PIPELINE_LATENCY`] cycles: an input accepted in
//! cycle *t* appears as the ciphertext output in cycle *t + 21*.

use htd_rtl::{Design, DesignError, ExprId, SignalId, ValidatedDesign};

use crate::aes_ref::{RCON, SBOX};
use crate::trojan::{build_trigger, Payload, TrojanSpec};

/// Number of cycles between accepting an input and presenting its ciphertext.
pub const PIPELINE_LATENCY: u64 = 21;

/// Structural level of the ciphertext output (see the module docs).
pub const OUTPUT_LEVEL: usize = 22;

/// Builds the AES-128 accelerator, optionally infected with a Trojan.
///
/// The clean design (`trojan == None`) is the HT-free reference the paper
/// also verifies; it is bit-exact against the software model in
/// [`crate::aes_ref`].
///
/// # Errors
///
/// Propagates [`DesignError`] from the RTL builder; with valid parameters the
/// construction always succeeds.
///
/// # Example
///
/// ```
/// use htd_trusthub::aes::{build_aes, PIPELINE_LATENCY};
/// use htd_trusthub::aes_ref::encrypt_u128;
/// use htd_rtl::sim::Simulator;
///
/// # fn main() -> Result<(), htd_rtl::DesignError> {
/// let design = build_aes("aes_clean", None)?;
/// let mut sim = Simulator::new(&design);
/// sim.set_input_by_name("plaintext", 0)?;
/// sim.set_input_by_name("key", 0)?;
/// sim.run(PIPELINE_LATENCY)?;
/// assert_eq!(sim.peek_by_name("ciphertext")?, encrypt_u128(0, 0));
/// # Ok(())
/// # }
/// ```
pub fn build_aes(name: &str, trojan: Option<&TrojanSpec>) -> Result<ValidatedDesign, DesignError> {
    let mut d = Design::new(name);
    let plaintext = d.add_input("plaintext", 128)?;
    let key = d.add_input("key", 128)?;
    let pt_e = d.signal(plaintext);
    let key_e = d.signal(key);

    // Trigger logic (adds its own state registers).
    let armed = match trojan {
        Some(spec) => Some(build_trigger(&mut d, pt_e, &spec.trigger)?),
        None => None,
    };

    // Level 1: initial AddRoundKey and key capture.
    let s0 = d.add_register("state_r0", 128, 0)?;
    let mut s0_next = d.xor(pt_e, key_e)?;
    s0_next = apply_bitflip(&mut d, trojan, armed, 1, s0_next)?;
    d.set_register_next(s0, s0_next)?;
    let k0 = d.add_register("key_r0", 128, 0)?;
    d.set_register_next(k0, key_e)?;

    // Rounds 1..=10, two pipeline stages each.
    let mut prev_state = d.signal(s0);
    let mut prev_key = d.signal(k0);
    for round in 1..=10usize {
        // Stage A: SubBytes + ShiftRows, and the key schedule step.
        let substituted = sub_bytes(&mut d, prev_state)?;
        let mut shifted = shift_rows(&mut d, substituted)?;
        shifted = apply_bitflip(&mut d, trojan, armed, 2 * round, shifted)?;
        let stage_a = d.add_register(format!("state_sub_r{round}"), 128, 0)?;
        d.set_register_next(stage_a, shifted)?;
        let round_key = key_expand(&mut d, round, prev_key)?;
        let key_a = d.add_register(format!("key_r{round}"), 128, 0)?;
        d.set_register_next(key_a, round_key)?;

        // Stage B: MixColumns (except round 10) + AddRoundKey.
        let stage_a_value = d.signal(stage_a);
        let mixed = if round < 10 {
            mix_columns(&mut d, stage_a_value)?
        } else {
            stage_a_value
        };
        let mut stage_b_next = d.xor(mixed, d.signal(key_a))?;
        stage_b_next = apply_bitflip(&mut d, trojan, armed, 2 * round + 1, stage_b_next)?;
        let stage_b = d.add_register(format!("state_r{round}"), 128, 0)?;
        d.set_register_next(stage_b, stage_b_next)?;
        let key_b = d.add_register(format!("key_pipe_r{round}"), 128, 0)?;
        d.set_register_next(key_b, d.signal(key_a))?;

        prev_state = d.signal(stage_b);
        prev_key = d.signal(key_b);
    }

    // Ciphertext output (level 22), possibly corrupted by the payload.
    let mut ciphertext = prev_state;
    if let (Some(spec), Some(armed)) = (trojan, armed) {
        match spec.payload {
            Payload::DenialOfService => {
                let zero = d.zero(128)?;
                ciphertext = d.mux(armed, zero, ciphertext)?;
            }
            Payload::CiphertextBitFlip { level } if level >= OUTPUT_LEVEL => {
                let flip = d.zero_ext(armed, 128)?;
                ciphertext = d.xor(ciphertext, flip)?;
            }
            Payload::LeakToOutput => {
                ciphertext = d.mux(armed, key_e, ciphertext)?;
            }
            _ => {}
        }
    }
    d.add_output("ciphertext", ciphertext)?;

    // Payload side structures that are not on the ciphertext path.
    if let (Some(spec), Some(armed)) = (trojan, armed) {
        build_payload_structures(&mut d, spec, armed, pt_e, key_e)?;
    }

    d.validated()
}

/// XORs the armed bit into the LSB of a 128-bit stage value if the payload is
/// a bit flip at exactly this structural level.
fn apply_bitflip(
    d: &mut Design,
    trojan: Option<&TrojanSpec>,
    armed: Option<ExprId>,
    level: usize,
    value: ExprId,
) -> Result<ExprId, DesignError> {
    let (Some(spec), Some(armed)) = (trojan, armed) else {
        return Ok(value);
    };
    match spec.payload {
        Payload::CiphertextBitFlip { level: l } if l == level && l < OUTPUT_LEVEL => {
            let flip = d.zero_ext(armed, 128)?;
            d.xor(value, flip)
        }
        _ => Ok(value),
    }
}

/// Adds the payload structures that live next to the data path (leakage
/// registers, antenna pins, oscillators).
fn build_payload_structures(
    d: &mut Design,
    spec: &TrojanSpec,
    armed: ExprId,
    plaintext: ExprId,
    key: ExprId,
) -> Result<(), DesignError> {
    match spec.payload {
        Payload::PowerSideChannel => {
            // A shift register that absorbs one key/plaintext-dependent bit
            // per cycle while armed: its switching activity is the power side
            // channel; its RTL representation is what the flow detects.
            let leak = d.add_register("trojan_leak_shift", 16, 0)?;
            let key_byte = d.slice(key, 127, 120)?;
            let key_parity = d.red_xor(key_byte);
            let pt_bit = d.bit(plaintext, 0)?;
            let leak_bit = d.xor(key_parity, pt_bit)?;
            let low = d.slice(d.signal(leak), 14, 0)?;
            let shifted = d.concat(low, leak_bit)?;
            let next = d.mux(armed, shifted, d.signal(leak))?;
            d.set_register_next(leak, next)?;
        }
        Payload::LeakageCurrent => {
            let bank = d.add_register("trojan_lc_bank", 32, 0)?;
            let toggled = d.not(d.signal(bank));
            let next = d.mux(armed, toggled, d.signal(bank))?;
            d.set_register_next(bank, next)?;
        }
        Payload::RfAntenna => {
            // Key bit modulated onto an otherwise unused pin.
            let key_bit = d.bit(key, 0)?;
            let beacon = d.and(armed, key_bit)?;
            d.add_output("rf_antenna", beacon)?;
        }
        Payload::DosOscillator => {
            // A self-sustaining oscillator enable entirely outside the input
            // cone (AES-T1900): only the coverage check can point at it.
            let enable = d.add_register("trojan_osc_en", 1, 0)?;
            let enable_next = d.or(d.signal(enable), armed)?;
            d.set_register_next(enable, enable_next)?;
            let osc = d.add_register("trojan_osc", 1, 0)?;
            let inverted = d.not(d.signal(osc));
            let osc_next = d.mux(d.signal(enable), inverted, d.signal(osc))?;
            d.set_register_next(osc, osc_next)?;
        }
        Payload::DenialOfService | Payload::CiphertextBitFlip { .. } | Payload::LeakToOutput => {
            // Handled on the ciphertext path in `build_aes`.
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// AES round function building blocks
// ---------------------------------------------------------------------------

fn sbox_table() -> Vec<u128> {
    SBOX.iter().map(|&b| u128::from(b)).collect()
}

/// Byte `i` (0 = most significant) of a 128-bit expression.
fn get_byte(d: &mut Design, value: ExprId, i: usize) -> Result<ExprId, DesignError> {
    let hi = 127 - 8 * i as u32;
    d.slice(value, hi, hi - 7)
}

fn from_bytes(d: &mut Design, bytes: &[ExprId]) -> Result<ExprId, DesignError> {
    d.concat_all(bytes)
}

fn sub_bytes(d: &mut Design, state: ExprId) -> Result<ExprId, DesignError> {
    let mut out = Vec::with_capacity(16);
    for i in 0..16 {
        let byte = get_byte(d, state, i)?;
        out.push(d.rom(sbox_table(), byte, 8)?);
    }
    from_bytes(d, &out)
}

fn shift_rows(d: &mut Design, state: ExprId) -> Result<ExprId, DesignError> {
    let mut bytes = Vec::with_capacity(16);
    for i in 0..16 {
        bytes.push(get_byte(d, state, i)?);
    }
    let mut shifted = bytes.clone();
    for row in 0..4 {
        for col in 0..4 {
            shifted[4 * col + row] = bytes[4 * ((col + row) % 4) + row];
        }
    }
    from_bytes(d, &shifted)
}

/// GF(2^8) doubling (the `xtime` operation).
fn xtime(d: &mut Design, byte: ExprId) -> Result<ExprId, DesignError> {
    let low7 = d.slice(byte, 6, 0)?;
    let zero = d.zero(1)?;
    let doubled = d.concat(low7, zero)?;
    let poly = d.constant(0x1b, 8)?;
    let reduced = d.xor(doubled, poly)?;
    let msb = d.bit(byte, 7)?;
    d.mux(msb, reduced, doubled)
}

fn mix_columns(d: &mut Design, state: ExprId) -> Result<ExprId, DesignError> {
    let mut bytes = Vec::with_capacity(16);
    for i in 0..16 {
        bytes.push(get_byte(d, state, i)?);
    }
    let mut out = bytes.clone();
    for col in 0..4 {
        let a = [
            bytes[4 * col],
            bytes[4 * col + 1],
            bytes[4 * col + 2],
            bytes[4 * col + 3],
        ];
        let a01 = d.xor(a[0], a[1])?;
        let a23 = d.xor(a[2], a[3])?;
        let all = d.xor(a01, a23)?;
        for i in 0..4 {
            let pair = d.xor(a[i], a[(i + 1) % 4])?;
            let doubled = xtime(d, pair)?;
            let partial = d.xor(a[i], all)?;
            out[4 * col + i] = d.xor(partial, doubled)?;
        }
    }
    from_bytes(d, &out)
}

/// One AES-128 key-schedule step: round key `round` from round key `round-1`.
fn key_expand(d: &mut Design, round: usize, prev_key: ExprId) -> Result<ExprId, DesignError> {
    let w0 = d.slice(prev_key, 127, 96)?;
    let w1 = d.slice(prev_key, 95, 64)?;
    let w2 = d.slice(prev_key, 63, 32)?;
    let w3 = d.slice(prev_key, 31, 0)?;
    // RotWord: rotate left by one byte.
    let low24 = d.slice(w3, 23, 0)?;
    let high8 = d.slice(w3, 31, 24)?;
    let rotated = d.concat(low24, high8)?;
    // SubWord.
    let mut sub_bytes_of_word = Vec::with_capacity(4);
    for i in 0..4 {
        let hi = 31 - 8 * i as u32;
        let byte = d.slice(rotated, hi, hi - 7)?;
        sub_bytes_of_word.push(d.rom(sbox_table(), byte, 8)?);
    }
    let substituted = d.concat_all(&sub_bytes_of_word)?;
    let rcon = d.constant(u128::from(RCON[round - 1]) << 24, 32)?;
    let t = d.xor(substituted, rcon)?;
    let n0 = d.xor(w0, t)?;
    let n1 = d.xor(n0, w1)?;
    let n2 = d.xor(n1, w2)?;
    let n3 = d.xor(n2, w3)?;
    d.concat_all(&[n0, n1, n2, n3])
}

/// The benign (non-Trojan) state registers of the accelerator, useful as the
/// waiver list when analysing *interfering* variants; the clean pipelined AES
/// needs no waivers at all.
#[must_use]
pub fn benign_state(design: &ValidatedDesign) -> Vec<SignalId> {
    let d = design.design();
    d.registers()
        .into_iter()
        .filter(|&r| !d.signal_name(r).starts_with("trojan_"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes_ref::encrypt_u128;
    use crate::trojan::Trigger;
    use htd_rtl::sim::Simulator;
    use htd_rtl::stats::DesignStats;

    fn run_clean(plaintext: u128, key: u128) -> u128 {
        let design = build_aes("aes_clean", None).unwrap();
        let mut sim = Simulator::new(&design);
        sim.set_input_by_name("plaintext", plaintext).unwrap();
        sim.set_input_by_name("key", key).unwrap();
        sim.run(PIPELINE_LATENCY).unwrap();
        sim.peek_by_name("ciphertext").unwrap()
    }

    #[test]
    fn clean_rtl_matches_reference_on_fips_vector() {
        let pt = 0x3243f6a8_885a308d_313198a2_e0370734u128;
        let key = 0x2b7e1516_28aed2a6_abf71588_09cf4f3cu128;
        assert_eq!(run_clean(pt, key), encrypt_u128(pt, key));
    }

    #[test]
    fn clean_rtl_matches_reference_on_random_vectors() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..3 {
            let pt: u128 = rng.gen();
            let key: u128 = rng.gen();
            assert_eq!(run_clean(pt, key), encrypt_u128(pt, key));
        }
    }

    #[test]
    fn pipeline_streams_one_block_per_cycle() {
        let design = build_aes("aes_stream", None).unwrap();
        let mut sim = Simulator::new(&design);
        let inputs: Vec<(u128, u128)> = (0..4)
            .map(|i| (0x1111 * (i + 1) as u128, 0x2222 * (i + 3) as u128))
            .collect();
        let mut outputs = Vec::new();
        for cycle in 0..(inputs.len() as u64 + PIPELINE_LATENCY) {
            let (pt, key) = inputs.get(cycle as usize).copied().unwrap_or((0, 0));
            sim.set_input_by_name("plaintext", pt).unwrap();
            sim.set_input_by_name("key", key).unwrap();
            sim.step().unwrap();
            if cycle + 1 >= PIPELINE_LATENCY {
                outputs.push(sim.peek_by_name("ciphertext").unwrap());
            }
        }
        for (i, &(pt, key)) in inputs.iter().enumerate() {
            assert_eq!(outputs[i], encrypt_u128(pt, key), "block {i}");
        }
    }

    #[test]
    fn design_statistics_are_plausible() {
        let design = build_aes("aes_stats", None).unwrap();
        let stats = DesignStats::of(&design);
        assert_eq!(stats.inputs, 2);
        assert_eq!(stats.outputs, 1);
        // 2 level-1 registers + 4 per round * 10 rounds.
        assert_eq!(stats.registers, 42);
        assert_eq!(stats.state_bits, 42 * 128);
        assert_eq!(stats.structural_depth, OUTPUT_LEVEL);
    }

    #[test]
    fn bit_flip_trojan_corrupts_ciphertext_only_when_armed() {
        let spec = TrojanSpec::new(
            Trigger::CycleCounter { threshold: 30 },
            Payload::CiphertextBitFlip {
                level: OUTPUT_LEVEL,
            },
        );
        let design = build_aes("aes_t2500_like", Some(&spec)).unwrap();
        let mut sim = Simulator::new(&design);
        let pt = 0xdeadbeef_cafebabe_01234567_89abcdefu128;
        let key = 0x0f0e0d0c_0b0a0908_07060504_03020100u128;
        sim.set_input_by_name("plaintext", pt).unwrap();
        sim.set_input_by_name("key", key).unwrap();
        // Before the counter reaches its threshold the output is correct.
        sim.run(PIPELINE_LATENCY).unwrap();
        assert_eq!(
            sim.peek_by_name("ciphertext").unwrap(),
            encrypt_u128(pt, key)
        );
        // After the trigger threshold the LSB is flipped.
        sim.run(30).unwrap();
        assert_eq!(
            sim.peek_by_name("ciphertext").unwrap(),
            encrypt_u128(pt, key) ^ 1
        );
    }

    #[test]
    fn plaintext_sequence_trigger_arms_in_order_only() {
        let sequence = vec![0x11u128, 0x22, 0x33];
        let spec = TrojanSpec::new(
            Trigger::PlaintextSequence(sequence.clone()),
            Payload::DenialOfService,
        );
        let design = build_aes("aes_t1400_like", Some(&spec)).unwrap();
        let mut sim = Simulator::new(&design);
        let d = design.design();
        let state = d.require("trojan_trigger_state").unwrap();

        // Feeding the sequence out of order does not arm the trigger.
        for &v in &[0x22u128, 0x11, 0x33] {
            sim.set_input_by_name("plaintext", v).unwrap();
            sim.set_input_by_name("key", 0).unwrap();
            sim.step().unwrap();
        }
        assert_ne!(sim.peek(state), sequence.len() as u128);

        // Feeding it in order arms the trigger, and it stays armed.
        sim.reset();
        for &v in &sequence {
            sim.set_input_by_name("plaintext", v).unwrap();
            sim.step().unwrap();
        }
        assert_eq!(sim.peek(state), sequence.len() as u128);
        sim.set_input_by_name("plaintext", 0x77).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.peek(state), sequence.len() as u128);
    }

    #[test]
    fn dos_payload_suppresses_ciphertext_when_armed() {
        let spec = TrojanSpec::new(
            Trigger::PlaintextSequence(vec![0xAA]),
            Payload::DenialOfService,
        );
        let design = build_aes("aes_dos", Some(&spec)).unwrap();
        let mut sim = Simulator::new(&design);
        let pt = 0x55u128;
        sim.set_input_by_name("plaintext", pt).unwrap();
        sim.set_input_by_name("key", 0).unwrap();
        sim.run(PIPELINE_LATENCY).unwrap();
        assert_eq!(sim.peek_by_name("ciphertext").unwrap(), encrypt_u128(pt, 0));
        // Arm the trigger; the output is forced to zero.
        sim.set_input_by_name("plaintext", 0xAA).unwrap();
        sim.step().unwrap();
        assert_eq!(sim.peek_by_name("ciphertext").unwrap(), 0);
    }

    #[test]
    fn psc_payload_shifts_key_dependent_bits_once_armed() {
        let spec = TrojanSpec::new(
            Trigger::ValueCounter {
                value: 0x1,
                threshold: 2,
            },
            Payload::PowerSideChannel,
        );
        let design = build_aes("aes_psc", Some(&spec)).unwrap();
        let mut sim = Simulator::new(&design);
        let d = design.design();
        let leak = d.require("trojan_leak_shift").unwrap();
        // Not armed yet: the leak register stays at its reset value.
        sim.set_input_by_name("plaintext", 0x1).unwrap();
        sim.set_input_by_name("key", 0xff << 120).unwrap();
        sim.run(2).unwrap();
        assert_eq!(sim.peek(leak), 0);
        // The value counter has now reached 2 -> armed; key-parity bits
        // (parity(0xff) = 0, xor plaintext bit 1 = 1) shift in.
        sim.run(5).unwrap();
        assert_ne!(sim.peek(leak), 0);
    }

    #[test]
    fn rf_antenna_emits_key_bit_when_armed() {
        let spec = TrojanSpec::new(Trigger::PlaintextSequence(vec![0x5]), Payload::RfAntenna);
        let design = build_aes("aes_rf", Some(&spec)).unwrap();
        let mut sim = Simulator::new(&design);
        sim.set_input_by_name("key", 0x1).unwrap();
        sim.set_input_by_name("plaintext", 0x5).unwrap();
        assert_eq!(sim.peek_by_name("rf_antenna").unwrap(), 0);
        sim.step().unwrap();
        assert_eq!(sim.peek_by_name("rf_antenna").unwrap(), 1);
    }

    #[test]
    fn benign_state_excludes_trojan_registers() {
        let spec = TrojanSpec::new(
            Trigger::CycleCounter { threshold: 10 },
            Payload::DosOscillator,
        );
        let design = build_aes("aes_waivers", Some(&spec)).unwrap();
        let benign = benign_state(&design);
        let d = design.design();
        assert!(benign
            .iter()
            .all(|&s| !d.signal_name(s).starts_with("trojan_")));
        assert_eq!(benign.len(), 42);
    }
}
