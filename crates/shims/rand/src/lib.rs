//! A minimal, dependency-free stand-in for the subset of the `rand` 0.8 API
//! this workspace uses (`StdRng`, `SeedableRng`, `Rng::{gen, gen_range,
//! gen_bool}`).
//!
//! The container building this repository has no network access, so the real
//! crates.io `rand` cannot be fetched; the callers only need a seeded,
//! deterministic, reasonably-distributed generator, which xoshiro256++ over a
//! SplitMix64-expanded seed provides.  The streams differ from the real
//! `StdRng` (ChaCha12), which is fine: every caller seeds explicitly and only
//! relies on determinism, not on a specific stream.

#![forbid(unsafe_code)]

/// Core source of randomness: a 64-bit word stream.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an [`RngCore`] word stream.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i128 {
    #[allow(clippy::cast_possible_wrap)]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Standard for [u64; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        std::array::from_fn(|_| rng.next_u64())
    }
}

/// Integer types samplable from a half-open or inclusive range.
///
/// The single blanket `SampleRange` impl below mirrors the real crate's impl
/// structure, which matters for type inference at call sites like
/// `vars[rng.gen_range(0..n)]`.
pub trait SampleUniform: Copy {
    /// A value uniform in `[low, high)` (`high` exclusive).
    fn sample_between<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// `self + 1`, saturating; used to widen inclusive ranges.
    fn successor(self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_between<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample from an empty range");
                let span = (high as i128 - low as i128) as u128;
                let offset = u128::sample(rng) % span;
                (low as i128 + offset as i128) as $t
            }
            fn successor(self) -> Self {
                self.saturating_add(1)
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from an empty range");
        if end.successor() <= end {
            // `end` is the maximum of the type; halve the range odds-free by
            // branching on whether we hit the endpoint exactly.
            if start.successor() > start && u128::sample(rng) % 2 == 0 {
                return end;
            }
            return T::sample_between(start, end, rng);
        }
        T::sample_between(start, end.successor(), rng)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` uniformly.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits, the standard conversion to [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = rng.gen_range(0..=4);
            assert!(w <= 4);
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(2);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
