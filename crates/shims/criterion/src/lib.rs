//! A minimal, dependency-free stand-in for the subset of the `criterion` API
//! this workspace's benchmarks use.
//!
//! The container building this repository has no network access, so the real
//! crates.io `criterion` cannot be fetched.  The shim keeps the bench sources
//! unchanged (`criterion_group!`, `criterion_main!`, `benchmark_group`,
//! `bench_with_input`, `Bencher::iter`) and prints a simple min/mean/max
//! wall-clock summary per benchmark instead of criterion's full statistics.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    #[must_use]
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter (for groups benchmarking one function).
    #[must_use]
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times a closure repeatedly.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` `sample_size` times (after one warm-up), recording the
    /// wall-clock time of each run.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, not recorded
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of recorded runs per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `routine` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher, input);
        self.criterion
            .report(&format!("{}/{}", self.name, id.id), &bencher.samples);
        self
    }

    /// Benchmarks a routine without an input value.
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        self.criterion
            .report(&format!("{}/{}", self.name, id.into()), &bencher.samples);
        self
    }

    /// Ends the group (required by the criterion API; a no-op here).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    lines: Vec<String>,
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: 20,
        };
        routine(&mut bencher);
        self.report(&id.into(), &bencher.samples);
        self
    }

    fn report(&mut self, id: &str, samples: &[Duration]) {
        let mut line = String::new();
        if samples.is_empty() {
            let _ = write!(line, "{id:<60} (no samples)");
        } else {
            let min = samples.iter().min().expect("non-empty");
            let max = samples.iter().max().expect("non-empty");
            let total: Duration = samples.iter().sum();
            let mean = total / samples.len() as u32;
            let _ = write!(
                line,
                "{id:<60} [{} {} {}] ({} samples)",
                format_duration(*min),
                format_duration(mean),
                format_duration(*max),
                samples.len()
            );
        }
        println!("{line}");
        self.lines.push(line);
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", d.as_secs_f64())
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_record_samples() {
        let mut c = Criterion::default();
        {
            let mut group = c.benchmark_group("demo");
            group.sample_size(3);
            group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &n| {
                b.iter(|| n * n)
            });
            group.bench_function("noop", |b| b.iter(|| ()));
            group.finish();
        }
        assert_eq!(c.lines.len(), 2);
        assert!(c.lines[0].contains("demo/square/7"));
    }

    #[test]
    fn format_duration_picks_sensible_units() {
        assert!(format_duration(Duration::from_nanos(12)).contains("ns"));
        assert!(format_duration(Duration::from_micros(12)).contains("µs"));
        assert!(format_duration(Duration::from_millis(12)).contains("ms"));
        assert!(format_duration(Duration::from_secs(2)).contains(" s"));
    }
}
