//! A minimal, dependency-free stand-in for the subset of the `proptest` API
//! this workspace uses.
//!
//! The container building this repository has no network access, so the real
//! crates.io `proptest` cannot be fetched.  This shim keeps the same surface
//! (`proptest!`, `prop_assert*!`, `prop_oneof!`, `Strategy` combinators,
//! `any`, `prop::collection::vec`) but generates values only — there is no
//! shrinking and no failure persistence.  Tests are deterministic: the RNG is
//! seeded from the test name, so a failure reproduces on every run.

#![forbid(unsafe_code)]

/// Test-runner types: configuration, error, RNG.
pub mod test_runner {
    use std::fmt;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed test case (produced by the `prop_assert*!` macros).
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        #[must_use]
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic RNG driving value generation (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG seeded from a test name, so runs are reproducible.
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: hash }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling bound");
            self.next_u64() % bound
        }
    }
}

/// The `Strategy` trait and its combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike the real proptest there is no value tree and no shrinking: a
    /// strategy simply draws a value from the RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Recursive strategies: `self` is the leaf case and `recurse` builds
        /// one additional level from the strategy for the level below.
        ///
        /// `_desired_size` and `_expected_branch_size` are accepted for API
        /// compatibility; generation depth is bounded by `depth` alone.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                // Mix the leaf back in at every level so expected size stays
                // bounded even for wide branches.
                let level = recurse(current).boxed();
                current = Union::new(vec![leaf.clone(), level]).boxed();
            }
            current
        }

        /// Erases the strategy type (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        #[must_use]
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T: 'static> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let index = rng.below(self.arms.len() as u64) as usize;
            self.arms[index].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = u128::from(rng.next_u64()) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = u128::from(rng.next_u64()) % span;
                    (start as i128 + offset as i128) as $t
                }
            }
        )*};
    }
    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// `any::<T>()` and the `Arbitrary` trait.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy for any value of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive size range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for vectors with elements from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose length lies in `size`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Module alias matching `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

/// The common import surface: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (`{:?}` != `{:?}`)", format!($($fmt)*), left, right),
            ));
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Defines property-based tests.
///
/// Mirrors the real macro's common form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, flag in any::<bool>()) {
///         prop_assert!(x < 100 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat_param in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $pat =
                                    $crate::strategy::Strategy::generate(&($strat), &mut rng);
                            )+
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(error) = outcome {
                        ::core::panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            error
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(u8),
        Node(Box<Tree>, Box<Tree>),
    }

    fn tree() -> impl Strategy<Value = Tree> {
        any::<u8>()
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..10, y in 1usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vectors_respect_the_size_range(v in prop::collection::vec(any::<u64>(), 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5, "len = {}", v.len());
        }

        #[test]
        fn oneof_and_recursion_generate(t in tree(), w in prop_oneof![Just(1u32), Just(4)]) {
            prop_assert!(w == 1 || w == 4);
            // Every tree bottoms out in leaves by construction.
            fn depth(t: &Tree) -> usize {
                match t {
                    Tree::Leaf(_) => 0,
                    Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
                }
            }
            prop_assert!(depth(&t) <= 3 + 2);
        }

        #[test]
        fn flat_map_threads_values((n, v) in (1u8..=4).prop_flat_map(|n| {
            prop::collection::vec(any::<bool>(), n as usize..=n as usize)
                .prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(v.len(), n as usize);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("seed");
        let mut b = crate::test_runner::TestRng::deterministic("seed");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
