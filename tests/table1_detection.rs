//! Integration test for experiment E1 (Table I): the detection flow catches
//! every benchmark Trojan with the mechanism the paper reports.
//!
//! A representative subset runs under `cargo test`; the full 28-row sweep is
//! `#[ignore]`d (run it with `cargo test -- --ignored`) because the debug
//! build of the AES pipeline properties is slow, and it is also exercised by
//! the release-mode `table1` example and benchmark.

use golden_free_htd::detect::{DetectedBy, DetectionOutcome, DetectorConfig, SessionBuilder};
use golden_free_htd::trusthub::registry::{Benchmark, ExpectedDetection};

fn run_benchmark(benchmark: Benchmark) -> (DetectionOutcome, usize) {
    let design = benchmark.build().expect("benchmark builds");
    let config = DetectorConfig {
        benign_state: benchmark.benign_state(&design),
        ..DetectorConfig::default()
    };
    let report = SessionBuilder::new(design.clone())
        .config(config)
        .build()
        .expect("detector accepts the design")
        .run()
        .expect("flow completes");
    (report.outcome, report.spurious_resolved)
}

fn assert_expected(benchmark: Benchmark) {
    let info = benchmark.info();
    let (outcome, _) = run_benchmark(benchmark);
    let detected = outcome.detected_by();
    let ok = match info.expected {
        ExpectedDetection::Secure => detected.is_none(),
        ExpectedDetection::InitProperty => detected == Some(DetectedBy::InitProperty),
        ExpectedDetection::FanoutProperty(k) => detected == Some(DetectedBy::FanoutProperty(k)),
        ExpectedDetection::AnyFanoutProperty => {
            matches!(detected, Some(DetectedBy::FanoutProperty(_)))
        }
        ExpectedDetection::CoverageCheck => detected == Some(DetectedBy::CoverageCheck),
    };
    assert!(
        ok,
        "{}: expected {:?}, flow reported {:?}",
        info.name, info.expected, detected
    );
}

#[test]
fn psc_trojan_with_plaintext_sequence_trigger_is_caught_by_init_property() {
    assert_expected(Benchmark::AesT1400);
}

#[test]
fn psc_trojan_with_encryption_counter_trigger_is_caught_by_init_property() {
    assert_expected(Benchmark::AesT900);
}

#[test]
fn rf_trojan_is_caught_by_init_property() {
    assert_expected(Benchmark::AesT1600);
}

#[test]
fn input_independent_dos_oscillator_is_caught_by_coverage_check() {
    assert_expected(Benchmark::AesT1900);
}

#[test]
fn ciphertext_bit_flip_is_caught_by_fanout_property_21() {
    assert_expected(Benchmark::AesT2500);
}

#[test]
fn mid_pipeline_bit_flip_is_caught_by_fanout_property_7() {
    assert_expected(Benchmark::AesT2600);
}

#[test]
fn mid_pipeline_bit_flip_is_caught_by_fanout_property_11() {
    assert_expected(Benchmark::AesT2800);
}

#[test]
fn rsa_key_leak_is_caught_by_init_property() {
    assert_expected(Benchmark::BasicRsaT300);
}

#[test]
fn rsa_dos_is_caught_by_init_property() {
    assert_expected(Benchmark::BasicRsaT200);
}

#[test]
fn counterexamples_localise_trojan_state_or_corrupted_outputs() {
    for benchmark in [
        Benchmark::AesT1400,
        Benchmark::AesT2500,
        Benchmark::BasicRsaT300,
    ] {
        let (outcome, _) = run_benchmark(benchmark);
        match outcome {
            DetectionOutcome::PropertyFailed { counterexample, .. } => {
                let touches_trojan = counterexample.diffs.iter().any(|d| {
                    d.name.starts_with("trojan_") || d.name == "ciphertext" || d.name == "cypher"
                }) || counterexample
                    .differing_state()
                    .iter()
                    .any(|d| d.name.starts_with("trojan_"));
                assert!(
                    touches_trojan,
                    "{}: counterexample does not localise the trojan",
                    benchmark.name()
                );
            }
            other => panic!(
                "{}: expected a property failure, got {other:?}",
                benchmark.name()
            ),
        }
    }
}

/// The full Table I sweep (28 benchmarks).  Slow in debug builds, hence
/// ignored by default; the release-mode `table1` example runs the same sweep.
#[test]
#[ignore = "full sweep is slow in debug builds; run with --ignored or use the table1 example"]
fn full_table1_sweep_matches_paper() {
    for benchmark in Benchmark::table1() {
        assert_expected(benchmark);
    }
}
