//! Empirical validation of Theorem 1 (experiment E7).
//!
//! The theorem relates the decomposed init/fanout property set to the
//! aggregate *trojan property* of Fig. 3.  Two claims are exercised here:
//!
//! 1. **Completeness of the decomposition** (the security-relevant
//!    direction, valid for *every* design): whenever the aggregate property
//!    fails — i.e. the two miter instances can be driven apart by some
//!    starting state, which is what a triggered Trojan does — at least one
//!    decomposed property fails as well.  The iterative flow never misses a
//!    Trojan that the monolithic property would catch.
//!
//! 2. **Exactness on data-driven designs** (the class the paper targets,
//!    Sec. IV-B): when the structural side condition
//!    [`is_data_driven`](golden_free_htd::rtl::structural::is_data_driven)
//!    holds, the decomposition raises no false alarm either, so the two
//!    formulations agree exactly.  On designs violating the side condition
//!    the decomposition may fail spuriously — that is precisely the
//!    counterexample-analysis situation of Sec. V-B, exercised by the RSA and
//!    UART benchmarks below.

mod common;

use common::{build_design, design_recipe, layered_recipe};
use golden_free_htd::detect::aggregate::check_trojan_property;
use golden_free_htd::detect::{DetectionOutcome, DetectorConfig, SessionBuilder};
use golden_free_htd::rtl::structural::{data_driven_violations, is_data_driven};
use golden_free_htd::trusthub::registry::Benchmark;
use proptest::prelude::*;

/// Runs the decomposed flow in its plain Algorithm-1 form (no extra
/// assumptions, no waivers) and reports whether any property failed.
fn decomposed_fails(design: &golden_free_htd::rtl::ValidatedDesign) -> bool {
    let config = DetectorConfig {
        assume_previously_proven: false,
        ..DetectorConfig::default()
    };
    let report = SessionBuilder::new(design.clone())
        .config(config)
        .build()
        .expect("random designs have inputs and state")
        .run()
        .expect("flow completes");
    matches!(report.outcome, DetectionOutcome::PropertyFailed { .. })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Claim 1 on arbitrary random designs: the decomposition never misses a
    /// divergence the aggregate property detects.  When the design is
    /// additionally data-driven, the two formulations must agree exactly
    /// (claim 2).
    #[test]
    fn decomposition_never_misses_what_the_aggregate_catches(recipe in design_recipe()) {
        let design = build_design(&recipe);
        let aggregate_fails = !check_trojan_property(&design).holds();
        let decomposed = decomposed_fails(&design);
        if aggregate_fails {
            prop_assert!(
                decomposed,
                "decomposition missed a 2-safety violation the aggregate property found"
            );
        }
        if is_data_driven(&design) {
            prop_assert_eq!(
                decomposed,
                aggregate_fails,
                "Theorem 1 (iff form) violated on a data-driven design"
            );
        }
    }

    /// Claim 2 on designs built to satisfy the side condition by
    /// construction: layered pipelines where every stage reads only the
    /// previous stage and the shared inputs.  Under the cumulative antecedent
    /// the detection flow uses by default (Sec. V-B scenario 1, applied
    /// proactively), such designs satisfy the data-driven side condition, the
    /// flow agrees with the aggregate property, and both report the design
    /// secure — there is no state in which to hide a trigger.
    #[test]
    fn decomposition_is_exact_on_layered_designs(recipe in layered_recipe()) {
        let design = build_design(&recipe);
        prop_assert!(
            data_driven_violations(&design, true).is_empty(),
            "layered recipes satisfy the cumulative side condition"
        );
        let aggregate_fails = !check_trojan_property(&design).holds();
        let report = SessionBuilder::new(design.clone())
            .build()
            .expect("layered designs have inputs and state")
            .run()
            .expect("flow completes");
        let decomposed = matches!(report.outcome, DetectionOutcome::PropertyFailed { .. });
        prop_assert_eq!(decomposed, aggregate_fails);
        prop_assert!(!aggregate_fails, "a layered design has no state to hide a trigger in");
        prop_assert!(report.outcome.is_secure(), "no uncovered signals either");
    }
}

#[test]
fn decomposition_agrees_with_aggregate_on_the_rsa_benchmark() {
    // The RSA accelerator has interfering control state, so *both*
    // formulations must report a failure when no equality assumptions are
    // supplied (the spurious-counterexample situation), and the infected
    // variant must fail as well.
    for benchmark in [Benchmark::BasicRsaHtFree, Benchmark::BasicRsaT300] {
        let design = benchmark.build().unwrap();
        let aggregate_fails = !check_trojan_property(&design).holds();
        let decomposed = decomposed_fails(&design);
        assert_eq!(decomposed, aggregate_fails, "{}", benchmark.name());
        assert!(
            aggregate_fails,
            "{}: expected a 2-safety violation",
            benchmark.name()
        );
    }
}

#[test]
fn decomposition_agrees_with_aggregate_on_the_uart() {
    for benchmark in [Benchmark::Rs232HtFree, Benchmark::Rs232T2400] {
        let design = benchmark.build().unwrap();
        let aggregate_fails = !check_trojan_property(&design).holds();
        let decomposed = decomposed_fails(&design);
        assert_eq!(decomposed, aggregate_fails, "{}", benchmark.name());
    }
}

#[test]
fn infected_and_clean_small_designs_agree_across_formulations() {
    // A spot check of claim 1 on hand-built designs small enough to unroll
    // the aggregate property cheaply: a Trojan caught by the flow is also
    // caught by the aggregate property, and a clean design passes both.
    use golden_free_htd::rtl::Design;

    let infected = {
        let mut d = Design::new("timer_bomb");
        let input = d.add_input("in", 8).unwrap();
        let stage = d.add_register("stage", 8, 0).unwrap();
        let timer = d.add_register("timer", 4, 0).unwrap();
        let one = d.constant(1, 4).unwrap();
        let tick = d.add(d.signal(timer), one).unwrap();
        d.set_register_next(timer, tick).unwrap();
        let armed = d.eq_const(d.signal(timer), 15).unwrap();
        let flip = d.zero_ext(armed, 8).unwrap();
        let payload = d.xor(d.signal(input), flip).unwrap();
        d.set_register_next(stage, payload).unwrap();
        d.add_output("out", d.signal(stage)).unwrap();
        d.validated().unwrap()
    };
    let clean = {
        let mut d = Design::new("clean_latch");
        let input = d.add_input("in", 8).unwrap();
        let stage = d.add_register("stage", 8, 0).unwrap();
        d.set_register_next(stage, d.signal(input)).unwrap();
        d.add_output("out", d.signal(stage)).unwrap();
        d.validated().unwrap()
    };

    assert!(!check_trojan_property(&infected).holds());
    assert!(decomposed_fails(&infected));
    assert!(check_trojan_property(&clean).holds());
    assert!(!decomposed_fails(&clean));
}
