//! Equivalence suite for the portfolio backend: racing the builtin CDCL
//! solver against the IPASIR shim (`crates/ipasir-shim`, built as
//! `libipasir_htd.so`) must leave detection *reports* untouched while the
//! race telemetry shows real work happened.
//!
//! Under the default `deterministic-cex` policy the contract is strict:
//! SAT models come only from the primary member (member 0), racers may
//! accelerate UNSAT answers only, so a portfolio whose primary is the
//! builtin solver reports **byte-identically** to the builtin solver alone
//! — on every bundled benchmark, across the whole `--jobs` ×
//! level-pipelining schedule matrix.  As in the IPASIR suite, the
//! backend-*bookkeeping* counters (solver-internal work, per-check clause
//! tallies) are scrubbed before comparison: a race doubles fork traffic
//! and the cancel/latency counters are timing-dependent by nature.
//!
//! Under the opt-in `fastest-cex` policy the winner's model is taken
//! as-is, so the guarantee weakens to *normalized equivalence with models
//! scrubbed*: same verdict, same detecting property, same fanout levels,
//! same property traces — but counterexample contents may legitimately be
//! whichever member answered first.

use std::num::NonZeroUsize;
use std::path::PathBuf;

use golden_free_htd::detect::{
    BackendChoice, DetectionOutcome, DetectionReport, DetectorConfig, EngineChoice,
    PropertyScheduler, RacePolicy, SessionBuilder,
};
use golden_free_htd::ipc::{CheckOutcome, Counterexample};
use golden_free_htd::sat::SolverStats;
use golden_free_htd::trusthub::registry::Benchmark;

/// Locates the shim cdylib built by cargo (`HTD_IPASIR_LIB` overrides, for
/// CI legs that test a release build).  The root package has a
/// dev-dependency on `ipasir-shim`, so any `cargo test` invocation that
/// compiled this suite has also produced the shared object.
fn shim_library() -> PathBuf {
    // htd-lint: allow(strict-env): an opaque filesystem path consumed verbatim; there is nothing to parse strictly
    if let Ok(path) = std::env::var("HTD_IPASIR_LIB") {
        return PathBuf::from(path);
    }
    let exe = std::env::current_exe().expect("test binary has a path");
    // target/<profile>/deps/<test-binary> → target/<profile>
    let deps = exe.parent().expect("deps dir");
    let profile = deps.parent().expect("profile dir");
    for dir in [profile, deps] {
        let candidate = dir.join("libipasir_htd.so");
        if candidate.exists() {
            return candidate;
        }
    }
    panic!(
        "libipasir_htd.so not found next to {} — build it with `cargo build -p ipasir-shim` \
         (or point HTD_IPASIR_LIB at it)",
        exe.display()
    );
}

/// The racing pair under test everywhere below: builtin primary, shim racer.
fn racing_pair(policy: RacePolicy) -> BackendChoice {
    BackendChoice::portfolio(
        vec![
            BackendChoice::Builtin,
            BackendChoice::ipasir(shim_library()),
        ],
        policy,
    )
}

fn run_with(
    benchmark: Benchmark,
    backend: BackendChoice,
    jobs: usize,
    pipeline: bool,
) -> DetectionReport {
    let design = benchmark.build().expect("benchmark builds");
    let config = DetectorConfig {
        benign_state: benchmark.benign_state(&design),
        ..DetectorConfig::default()
    };
    let scheduler = PropertyScheduler::new(NonZeroUsize::new(jobs).expect("positive jobs"))
        .with_level_pipelining(pipeline)
        .with_oversubscription(true);
    SessionBuilder::new(design)
        .config(config)
        .backend(backend)
        .engine(EngineChoice::Scheduled(scheduler))
        .build()
        .expect("session builder accepts the design")
        .run()
        .expect("flow completes")
}

/// Normalizes a report for cross-backend comparison, exactly as the IPASIR
/// equivalence suite does: wall-clocks zeroed, solver-internal work
/// counters and per-check clause tallies scrubbed.  For a portfolio this
/// additionally covers the race telemetry (`race_*` lives in
/// `SolverStats`) — cancels and cancel latency depend on which member won
/// each timing race, which is exactly the non-determinism the
/// deterministic-cex policy keeps *out* of everything else in the report.
fn scrubbed(report: &DetectionReport) -> DetectionReport {
    let mut report = report.normalized();
    report.solver_totals = SolverStats::default();
    for trace in &mut report.properties {
        trace.report.stats.solver = SolverStats::default();
        trace.report.stats.cnf_clauses = 0;
    }
    report
}

/// The fastest-cex comparison: [`scrubbed`] plus counterexample *models*
/// blanked — the failing property name is kept (it identifies *what* was
/// detected), but frames, diffing signals, starting states and input
/// sequences may come from whichever member won the race.
fn models_scrubbed(report: &DetectionReport) -> DetectionReport {
    fn blank(cex: &mut Counterexample) {
        cex.frame = 0;
        cex.diffs.clear();
        cex.starting_state.clear();
        cex.inputs.clear();
    }
    let mut report = scrubbed(report);
    if let DetectionOutcome::PropertyFailed { counterexample, .. } = &mut report.outcome {
        blank(counterexample);
    }
    for trace in &mut report.properties {
        if let CheckOutcome::Fails(cex) = &mut trace.report.outcome {
            blank(cex);
        }
    }
    report
}

/// The headline acceptance test: under deterministic-cex, a portfolio
/// whose primary is the builtin solver reports byte-identically to the
/// builtin solver alone on every bundled benchmark, for every schedule in
/// the `--jobs {1,2,4}` × pipelining matrix.
#[test]
fn deterministic_cex_portfolios_report_identically_to_the_primary() {
    for benchmark in Benchmark::all() {
        let baseline = scrubbed(&run_with(benchmark, BackendChoice::Builtin, 1, true));
        for (jobs, pipeline) in [
            (1, true),
            (1, false),
            (2, true),
            (2, false),
            (4, true),
            (4, false),
        ] {
            let racing = racing_pair(RacePolicy::DeterministicCex);
            let portfolio = scrubbed(&run_with(benchmark, racing, jobs, pipeline));
            assert_eq!(
                baseline,
                portfolio,
                "{}: builtin and portfolio reports differ at --jobs {jobs} (pipeline: {pipeline})",
                benchmark.name()
            );
            // Belt and braces: the rendered form covers every field.
            assert_eq!(
                format!("{baseline:?}"),
                format!("{portfolio:?}"),
                "{}: rendered reports differ at --jobs {jobs} (pipeline: {pipeline})",
                benchmark.name()
            );
        }
    }
}

/// Under fastest-cex the winner's model is kept, so the reports must agree
/// once models are blanked: same verdict, same detecting property, same
/// fanout levels, same trace structure and resolution counts.
#[test]
fn fastest_cex_matches_the_primary_with_models_scrubbed() {
    for benchmark in [
        Benchmark::AesT100,
        Benchmark::Rs232T2400,
        Benchmark::Rs232HtFree,
        Benchmark::BasicRsaT200,
    ] {
        let baseline = models_scrubbed(&run_with(benchmark, BackendChoice::Builtin, 2, true));
        let racing = racing_pair(RacePolicy::FastestCex);
        let report = run_with(benchmark, racing, 2, true);
        // Whatever model won the race, the flow must have accepted a *real*
        // counterexample: the session re-verifies models before reporting.
        if let DetectionOutcome::PropertyFailed { counterexample, .. } = &report.outcome {
            assert!(
                !counterexample.diff_names().is_empty(),
                "{}: a detection carries at least one diverging signal",
                benchmark.name()
            );
        }
        assert_eq!(
            baseline,
            models_scrubbed(&report),
            "{}: fastest-cex portfolio diverges from builtin beyond the models",
            benchmark.name()
        );
    }
}

/// Race telemetry surfaces in `solver_totals`: a portfolio run counts its
/// races, a single-backend run keeps every race counter at zero (so v5
/// trajectory consumers see an all-zero column, not a missing one).
#[test]
fn race_counters_surface_in_solver_totals() {
    let racing = racing_pair(RacePolicy::DeterministicCex);
    let report = run_with(Benchmark::Rs232T2400, racing, 2, true);
    let totals = &report.solver_totals;
    assert!(totals.race_solves > 0, "the portfolio raced its queries");
    assert!(
        totals.race_wins <= totals.race_solves,
        "racer wins ({}) cannot exceed races ({})",
        totals.race_wins,
        totals.race_solves
    );
    if totals.race_cancels == 0 {
        assert_eq!(
            totals.race_cancel_latency_us, 0,
            "cancel latency is only accrued by cancels"
        );
    }

    let solo = run_with(Benchmark::Rs232T2400, BackendChoice::Builtin, 2, true);
    assert_eq!(solo.solver_totals.race_solves, 0);
    assert_eq!(solo.solver_totals.race_wins, 0);
    assert_eq!(solo.solver_totals.race_cancels, 0);
    assert_eq!(solo.solver_totals.race_wasted_conflicts, 0);
    assert_eq!(solo.solver_totals.race_cancel_latency_us, 0);
}

/// `detect --backend portfolio:…` wiring end to end: the CLI spec string
/// parses to the same choice the API builds, runs the flow, and reports
/// identically to the builtin backend under the default policy.
#[test]
fn detection_session_runs_on_the_portfolio_by_choice_string() {
    let library = shim_library();
    let spec = format!("portfolio:builtin,ipasir:{}", library.display());
    let choice: BackendChoice = spec.parse().expect("CLI syntax parses");
    assert_eq!(choice, racing_pair(RacePolicy::DeterministicCex));
    let report = run_with(Benchmark::AesT100, choice, 2, true);
    let builtin = run_with(Benchmark::AesT100, BackendChoice::Builtin, 2, true);
    assert_eq!(scrubbed(&report), scrubbed(&builtin));
    assert!(report.solver_totals.race_solves > 0);
    // The work counters are the *primary's* (so deterministic-cex totals
    // mirror a solo run); the racer's cost shows up only in `race_*`.
    assert!(report.solver_totals.fork_count > 0);
    assert!(report.solver_totals.bytes_cloned > 0);
}
