//! The fault-injection suite: every degradation path of the serve tier must
//! settle the job record and leave the pool serviceable.
//!
//! The faults come from two directions.  *Injected* ones use the
//! [`FaultSpec`] hooks compiled into the daemon (runner panics, forced
//! stream disconnects, artificial solve stalls, slow frame writes) — the
//! suite sets them programmatically through `ServeOptions::fault`, the same
//! spot the `HTD_SERVE_FAULT` variable feeds in test builds.  *Budget* ones
//! exercise the [`SolveBudget`] interrupt seam of all three SAT backends:
//! the builtin solver through a real loopback daemon, the DIMACS process
//! backend against a deliberately stalling child solver, and the IPASIR shim
//! through its terminate callback.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::time::Duration;

use golden_free_htd::detect::{
    BackendChoice, DetectError, DetectorConfig, EngineChoice, PropertyScheduler, SessionBuilder,
    SolveBudget,
};
use golden_free_htd::rtl::{netlist, Design};
use golden_free_htd::serve::client::{self, SubmitOptions};
use golden_free_htd::serve::server::{ServeOptions, Server};
use golden_free_htd::serve::{ClientError, FaultSpec, Json};

/// The 8-bit pass-through accelerator with a sequential Trojan (a
/// magic-value trigger FSM flipping the result's low bit) — small enough to
/// solve in milliseconds, rich enough to exercise real SAT queries.
fn infected_accelerator() -> String {
    let mut d = Design::new("acc_infected");
    let data_in = d.add_input("data_in", 8).unwrap();
    let result = d.add_register("result", 8, 0).unwrap();
    let trigger = d.add_register("trigger", 1, 0).unwrap();
    let seen = d.eq_const(d.signal(data_in), 0xAB).unwrap();
    let armed = d.or(d.signal(trigger), seen).unwrap();
    d.set_register_next(trigger, armed).unwrap();
    let flip = d.zero_ext(d.signal(trigger), 8).unwrap();
    let next = d.xor(d.signal(data_in), flip).unwrap();
    d.set_register_next(result, next).unwrap();
    d.add_output("data_out", d.signal(result)).unwrap();
    netlist::dump(&d.validated().unwrap())
}

fn test_options() -> ServeOptions {
    ServeOptions {
        addr: "127.0.0.1:0".to_owned(),
        max_jobs: NonZeroUsize::new(4).unwrap(),
        workers: NonZeroUsize::new(2).unwrap(),
        ..ServeOptions::default()
    }
}

/// Runs the flow on `netlist_text` session-level with an explicit backend
/// and budget — the path `htd serve` takes minus the HTTP framing, which is
/// how the non-builtin backends are exercised (the daemon's snapshot cache
/// is builtin-only by design).
fn run_budgeted(
    netlist_text: &str,
    backend: BackendChoice,
    budget: SolveBudget,
) -> Result<golden_free_htd::detect::DetectionReport, DetectError> {
    let design = netlist::parse(netlist_text).expect("netlist parses");
    let config = DetectorConfig {
        budget,
        ..DetectorConfig::default()
    };
    let scheduler =
        PropertyScheduler::new(NonZeroUsize::new(2).unwrap()).with_level_pipelining(true);
    let mut session = SessionBuilder::new(design)
        .config(config)
        .backend(backend)
        .engine(EngineChoice::Scheduled(scheduler))
        .build()?;
    session.run()
}

/// Locates the IPASIR shim cdylib built by cargo (the root package has a
/// dev-dependency on `ipasir-shim`, so any `cargo test` run has built it);
/// `HTD_IPASIR_LIB` overrides for release-build CI legs.
fn shim_library() -> PathBuf {
    // htd-lint: allow(strict-env): an opaque filesystem path consumed verbatim; there is nothing to parse strictly
    if let Ok(path) = std::env::var("HTD_IPASIR_LIB") {
        return PathBuf::from(path);
    }
    let exe = std::env::current_exe().expect("test binary has a path");
    let deps = exe.parent().expect("deps dir");
    let profile = deps.parent().expect("profile dir");
    for dir in [profile, deps] {
        let candidate = dir.join("libipasir_htd.so");
        if candidate.exists() {
            return candidate;
        }
    }
    panic!(
        "libipasir_htd.so not found next to {} — build it with `cargo build -p ipasir-shim` \
         (or point HTD_IPASIR_LIB at it)",
        exe.display()
    );
}

/// Polls `/stats` until no job is queued or running (or panics after ~5s).
fn wait_idle(addr: &str) {
    for _ in 0..100 {
        let served = client::stats(addr).expect("stats endpoint answers");
        let active = served.get("queue_depth").and_then(Json::as_u64).unwrap()
            + served.get("running").and_then(Json::as_u64).unwrap();
        if active == 0 {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("the daemon never went idle");
}

// ---------------------------------------------------------------------------
// Budget exhaustion on every backend's interrupt path.
// ---------------------------------------------------------------------------

#[test]
fn builtin_backend_budget_exhaustion_settles_through_the_daemon() {
    // The operator cap (not the request) carries the deadline here: a
    // generous server-side ceiling stays in place while one request asks for
    // an impossible zero-millisecond deadline and is clamped to it.
    let server = Server::start(ServeOptions {
        budget: SolveBudget {
            deadline: Some(Duration::from_secs(600)),
            conflict_ceiling: None,
        },
        ..test_options()
    })
    .expect("loopback server starts");
    let addr = server.addr().to_string();
    let infected = infected_accelerator();

    let options = SubmitOptions {
        deadline_ms: Some(0),
        ..SubmitOptions::default()
    };
    let mut frames = Vec::new();
    match client::submit_with_options(&addr, &infected, &options, &mut |line| {
        frames.push(line.to_owned());
    }) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, "budget_exhausted");
            assert!(message.contains("deadline"), "{message}");
        }
        other => panic!("expected budget_exhausted, got {other:?}"),
    }
    assert!(
        frames
            .iter()
            .any(|f| f.contains("\"event\":\"budget_exhausted\"")),
        "frames: {frames:?}"
    );

    // The runner is free again: an unbudgeted job (under the server's lavish
    // ceiling) completes on the same pool.
    let ok = client::submit(&addr, &infected, &mut |_| {}).expect("the pool serves the next job");
    assert!(
        ok.report_text.contains("TROJAN SUSPECTED"),
        "{}",
        ok.report_text
    );

    let served = client::stats(&addr).expect("stats endpoint answers");
    assert_eq!(
        served.get("budget_exhausted").and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(served.get("completed").and_then(Json::as_u64), Some(1));
    server.stop();
}

#[test]
#[cfg(unix)]
fn dimacs_backend_kills_a_stalled_child_at_the_deadline() {
    use std::os::unix::fs::PermissionsExt;

    // A "solver" that sleeps far past the deadline: the process backend's
    // poll loop must kill it and answer Interrupted, which the session maps
    // to BudgetExhausted.
    let script = std::env::temp_dir().join("htd_faults_sleeping_solver.sh");
    std::fs::write(&script, "#!/bin/sh\nsleep 30\necho 's UNSATISFIABLE'\n").unwrap();
    let mut perms = std::fs::metadata(&script).unwrap().permissions();
    perms.set_mode(0o755);
    std::fs::set_permissions(&script, perms).unwrap();

    let started = std::time::Instant::now();
    let err = run_budgeted(
        &infected_accelerator(),
        BackendChoice::dimacs(script.to_str().unwrap()),
        SolveBudget {
            deadline: Some(Duration::from_millis(150)),
            conflict_ceiling: None,
        },
    )
    .expect_err("the deadline must trip");
    match err {
        DetectError::BudgetExhausted { reason, .. } => assert_eq!(reason, "deadline"),
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "the child was killed at the deadline, not waited out ({:?})",
        started.elapsed()
    );
    std::fs::remove_file(script).ok();
}

#[test]
fn ipasir_backend_honours_the_deadline_through_the_terminate_seam() {
    let shim = shim_library();
    let err = run_budgeted(
        &infected_accelerator(),
        BackendChoice::ipasir(shim.to_str().unwrap()),
        SolveBudget {
            deadline: Some(Duration::ZERO),
            conflict_ceiling: None,
        },
    )
    .expect_err("a zero deadline must trip at the first query");
    match err {
        DetectError::BudgetExhausted { reason, conflicts } => {
            assert_eq!(reason, "deadline");
            assert_eq!(conflicts, 0, "nothing was solved under a zero deadline");
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
}

#[test]
fn a_conflict_ceiling_trips_with_the_conflicts_reason() {
    use golden_free_htd::trusthub::registry::Benchmark;
    // AES-T1400's properties need real search; a ceiling of zero conflicts
    // trips on the first one and reports how much was charged.
    let benchmark = Benchmark::AesT1400;
    let design = benchmark.build().expect("bundled benchmark builds");
    let config = DetectorConfig {
        benign_state: benchmark.benign_state(&design),
        budget: SolveBudget {
            deadline: None,
            conflict_ceiling: Some(0),
        },
        ..DetectorConfig::default()
    };
    let err = SessionBuilder::new(design)
        .config(config)
        .build()
        .expect("session builds")
        .run()
        .expect_err("the ceiling must trip");
    match err {
        DetectError::BudgetExhausted { reason, conflicts } => {
            assert_eq!(reason, "conflicts");
            assert!(conflicts > 0, "the tripping conflict was charged");
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Injected faults: panics, disconnects, stalls, slow clients.
// ---------------------------------------------------------------------------

#[test]
fn a_runner_panic_fails_that_job_and_the_pool_survives() {
    let server = Server::start(ServeOptions {
        fault: Some(FaultSpec::RunnerPanic),
        ..test_options()
    })
    .expect("loopback server starts");
    let addr = server.addr().to_string();
    let infected = infected_accelerator();

    // The first job hits the armed panic and fails with a structured
    // `internal` frame — not a hung socket, not a dead worker.
    match client::submit(&addr, &infected, &mut |_| {}) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, "internal");
            assert!(message.contains("panicked"), "{message}");
        }
        other => panic!("expected an internal error, got {other:?}"),
    }

    // The fault is one-shot: the same pool then serves a job to completion.
    let ok = client::submit(&addr, &infected, &mut |_| {}).expect("the pool survived the panic");
    assert!(
        ok.report_text.contains("TROJAN SUSPECTED"),
        "{}",
        ok.report_text
    );

    let served = client::stats(&addr).expect("stats endpoint answers");
    assert_eq!(served.get("failed").and_then(Json::as_u64), Some(1));
    assert_eq!(served.get("completed").and_then(Json::as_u64), Some(1));
    server.stop();
}

#[test]
fn a_mid_stream_disconnect_settles_the_job_and_frees_the_queue() {
    let server = Server::start(ServeOptions {
        // Force-close the subscriber's socket right after the first streamed
        // event frame.
        fault: Some(FaultSpec::StreamDisconnect(1)),
        ..test_options()
    })
    .expect("loopback server starts");
    let addr = server.addr().to_string();

    // The submission loses its stream mid-flight; any client-side error is
    // acceptable, a wedge is not.
    let err = client::submit(&addr, &infected_accelerator(), &mut |_| {});
    assert!(err.is_err(), "the severed stream cannot yield a report");

    // The orphaned run settles (cancelled once its only subscriber was cut)
    // and the daemon keeps serving.
    wait_idle(&addr);
    let ok = client::submit(&addr, &infected_accelerator(), &mut |_| {})
        .expect("the daemon serves after a forced disconnect");
    assert!(
        ok.report_text.contains("TROJAN SUSPECTED"),
        "{}",
        ok.report_text
    );
    server.stop();
}

#[test]
fn slow_frame_writes_delay_but_never_corrupt_a_job() {
    let server = Server::start(ServeOptions {
        fault: Some(FaultSpec::SlowWrites(Duration::from_millis(20))),
        ..test_options()
    })
    .expect("loopback server starts");
    let addr = server.addr().to_string();

    let ok = client::submit(&addr, &infected_accelerator(), &mut |_| {})
        .expect("throttled frames still complete");
    assert!(
        ok.report_text.contains("TROJAN SUSPECTED"),
        "{}",
        ok.report_text
    );
    server.stop();
}

#[test]
fn a_connect_and_say_nothing_client_gets_a_structured_408() {
    let server = Server::start(ServeOptions {
        header_timeout: Duration::from_millis(200),
        ..test_options()
    })
    .expect("loopback server starts");
    let addr = server.addr().to_string();

    // A slow-loris client: connect, send nothing, wait.  The daemon must
    // answer a structured timeout and close, not pin the thread forever.
    let mut stream = TcpStream::connect(&addr).unwrap();
    let mut answer = String::new();
    stream.read_to_string(&mut answer).unwrap();
    assert!(answer.starts_with("HTTP/1.1 408"), "{answer}");
    assert!(answer.contains("\"code\":\"timeout\""), "{answer}");

    // A half-written request line times out the same way.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.write_all(b"POST /jo").unwrap();
    let mut answer = String::new();
    stream.read_to_string(&mut answer).unwrap();
    assert!(answer.starts_with("HTTP/1.1 408"), "{answer}");

    // And an honest client right behind them is served immediately.
    let ok = client::submit(&addr, &infected_accelerator(), &mut |_| {})
        .expect("the accept side survived the loris");
    assert!(
        ok.report_text.contains("TROJAN SUSPECTED"),
        "{}",
        ok.report_text
    );
    server.stop();
}
