//! Behavioural suite for the flow-graph executor: cross-level pipelining
//! actually happens (not just in theory), and the clause-GC thresholds are
//! configurable and fire.

use std::num::NonZeroUsize;

use golden_free_htd::detect::{
    DetectorConfig, EngineChoice, PipelineStats, PropertyScheduler, SessionBuilder,
};
use golden_free_htd::ipc::CheckerOptions;
use golden_free_htd::rtl::{Design, ValidatedDesign};
use golden_free_htd::trusthub::registry::Benchmark;

fn scheduler(jobs: usize, pipeline: bool) -> EngineChoice {
    EngineChoice::Scheduled(
        PropertyScheduler::new(NonZeroUsize::new(jobs).unwrap())
            .with_level_pipelining(pipeline)
            .with_oversubscription(true),
    )
}

fn run_benchmark(benchmark: Benchmark, jobs: usize, pipeline: bool) -> PipelineStats {
    let design = benchmark.build().unwrap();
    let config = DetectorConfig {
        benign_state: benchmark.benign_state(&design),
        ..DetectorConfig::default()
    };
    let mut session = SessionBuilder::new(design)
        .config(config)
        .engine(scheduler(jobs, pipeline))
        .build()
        .unwrap();
    session.run().unwrap();
    session.pipeline_stats()
}

/// A two-deep chain of *hard* sub-properties: each level's prove obligation
/// is an 8-bit multiplier-commutativity miter (`s*t ^ t*s` must be proven
/// zero), which costs the solver tens of milliseconds — long enough that the
/// next level's task reliably starts while the previous one is still
/// solving.
fn mult_pipeline(bits: u32) -> ValidatedDesign {
    let mut d = Design::new("mult_pipeline");
    let input = d.add_input("in", bits).unwrap();
    let s = d.add_register("s", bits, 0).unwrap();
    let t = d.add_register("t", bits, 0).unwrap();
    let r1 = d.add_register("r1", bits, 0).unwrap();
    let r2 = d.add_register("r2", bits, 0).unwrap();
    let w = d.add_register("w", bits, 0).unwrap();
    d.set_register_next(s, d.signal(input)).unwrap();
    d.set_register_next(t, d.signal(input)).unwrap();
    d.set_register_next(w, d.signal(w)).unwrap();
    // Level 2: r1 <= (s*t) ^ (t*s) ^ in — equal iff multiplication commutes.
    let st = d.mul(d.signal(s), d.signal(t)).unwrap();
    let ts = d.mul(d.signal(t), d.signal(s)).unwrap();
    let comm1 = d.xor(st, ts).unwrap();
    let r1_next = d.xor(comm1, d.signal(input)).unwrap();
    d.set_register_next(r1, r1_next).unwrap();
    // Level 3: r2 <= (w*r1) ^ (r1*w), with w never assumed equal, so the
    // commutativity obligation recurs one level later.
    let wr = d.mul(d.signal(w), d.signal(r1)).unwrap();
    let rw = d.mul(d.signal(r1), d.signal(w)).unwrap();
    let comm2 = d.xor(wr, rw).unwrap();
    d.set_register_next(r2, comm2).unwrap();
    d.add_output("out", d.signal(r2)).unwrap();
    d.validated().unwrap()
}

/// The acceptance property of the flow-graph refactor: on bundled
/// benchmarks, sub-properties of two different levels are in flight
/// concurrently under `--jobs 2` — either a later level's tasks solving
/// while an earlier level's are unfinished (`cross_level_solves`) or the
/// master encoding a level while another level's forks solve
/// (`pipelined_prepares`).
///
/// On a host with a single hardware thread the coordinator can never win
/// the wake-up race against sub-millisecond solver tasks (workers drain the
/// whole level within one scheduler quantum), so the assertion only runs
/// with two or more hardware threads; `cross_level_tasks_solve_concurrently`
/// below covers single-core hosts with tasks long enough to straddle
/// quanta.
#[test]
fn bundled_benchmarks_pipeline_levels_under_two_jobs() {
    if PropertyScheduler::available_parallelism().get() < 2 {
        eprintln!(
            "skipping bundled-overlap assertion: single hardware thread \
             (see cross_level_tasks_solve_concurrently for the 1-core demonstration)"
        );
        return;
    }
    let candidates = [
        Benchmark::Rs232T2400,
        Benchmark::Rs232HtFree,
        Benchmark::BasicRsaHtFree,
        Benchmark::BasicRsaT200,
    ];
    for _ in 0..20 {
        for benchmark in candidates {
            let stats = run_benchmark(benchmark, 2, true);
            if stats.pipelined_prepares > 0 || stats.cross_level_solves > 0 {
                assert!(stats.tasks_dispatched > 0);
                return;
            }
        }
    }
    panic!("no bundled benchmark ever overlapped two levels under --jobs 2");
}

/// With pipelining disabled, speculative prepares are gated behind the
/// previous level's merge, so the encode/solve overlap counter stays zero.
/// (Resolution rounds still force-prepare the remaining levels — that is a
/// determinism requirement, not speculation.)
#[test]
fn disabling_pipelining_serialises_level_prepares() {
    let stats = run_benchmark(Benchmark::BasicRsaHtFree, 2, false);
    assert_eq!(stats.pipelined_prepares, 0);
}

/// True cross-level solve concurrency: with two workers and two consecutive
/// levels of hard sub-properties, a task of level `k + 1` starts while level
/// `k`'s task is still solving.
#[test]
fn cross_level_tasks_solve_concurrently() {
    let mut best = PipelineStats::default();
    for _ in 0..5 {
        let mut session = SessionBuilder::new(mult_pipeline(5))
            .engine(scheduler(2, true))
            .build()
            .unwrap();
        session.run().unwrap();
        let stats = session.pipeline_stats();
        if stats.cross_level_solves > 0 {
            return;
        }
        best = stats;
    }
    panic!("no cross-level solve overlap observed in 5 attempts (best schedule: {best:?})");
}

/// The pipelined schedule of the hard two-level design reports byte-identically
/// to the single-worker schedule.
#[test]
fn hard_pipeline_reports_are_schedule_invariant() {
    let run = |jobs: usize, pipeline: bool| {
        SessionBuilder::new(mult_pipeline(4))
            .engine(scheduler(jobs, pipeline))
            .build()
            .unwrap()
            .run()
            .unwrap()
            .normalized()
    };
    let baseline = run(1, true);
    assert_eq!(baseline, run(2, true));
    assert_eq!(baseline, run(2, false));
}

/// The arena fork cost model surfaces at every level of the stack: the
/// deterministic report counts one fork per consumed solve task (with its
/// byte cost), the session counts the master-side snapshot clones, and the
/// pipeline stats mirror them per generation.
#[test]
fn fork_cost_model_reaches_reports_and_pipeline_stats() {
    let mut session = SessionBuilder::new(mult_pipeline(4))
        .engine(scheduler(2, true))
        .build()
        .unwrap();
    let report = session.run().unwrap();
    let totals = report.solver_totals;
    let session_stats = session.session_stats();
    // Every level holds on this design, so every dispatched task is
    // consumed: the schedule-invariant report records exactly one fork per
    // task, each costing real bytes.
    assert_eq!(totals.fork_count, session_stats.parallel_tasks);
    assert!(totals.fork_count > 0);
    assert!(totals.bytes_cloned > 0);
    // The master froze at least one multi-task generation behind a snapshot
    // clone, and the scheduler accounted its bytes.
    let pipeline = session.pipeline_stats();
    assert_eq!(pipeline.snapshot_forks, session_stats.snapshot_forks);
    assert_eq!(
        pipeline.snapshot_bytes_cloned,
        session_stats.snapshot_bytes_cloned
    );
    assert!(session_stats.snapshot_forks > 0);
    assert!(session_stats.snapshot_bytes_cloned > 0);
}

/// Clause-GC thresholds are configurable: with the thresholds floored, the
/// master compacts before forking snapshots, and the GC counters reach the
/// report.  AES-T1600 is an infected AES flow: its init property fails, and
/// the end-of-flow hygiene retires the failing generation's activation
/// literals, leaving dead miter clauses for the compactor.
#[test]
fn lowered_gc_thresholds_fire_on_an_infected_aes_flow() {
    let design = Benchmark::AesT1600.build().unwrap();
    let config = DetectorConfig {
        benign_state: Benchmark::AesT1600.benign_state(&design),
        checker: CheckerOptions {
            gc_dead_pct: 0,
            gc_min_clauses: 1,
            ..CheckerOptions::default()
        },
        ..DetectorConfig::default()
    };
    let mut session = SessionBuilder::new(design)
        .config(config)
        .jobs(NonZeroUsize::new(2).unwrap())
        .build()
        .unwrap();
    session.run().unwrap();
    let backend = session.backend_stats();
    assert!(
        backend.solver.gc_runs > 0,
        "GC never fired with floored thresholds: {:?}",
        backend.solver
    );
}
