//! Property-based consistency checks on the interval property checker:
//!
//! * the variable-sharing optimisation (`share_assumed_equal`) never changes
//!   a verdict, only the encoding size (experiment E10's correctness side);
//! * every counterexample the checker returns is *real*: replaying its
//!   starting states and inputs on two concrete simulator instances
//!   reproduces the reported divergence.

mod common;

use std::collections::HashMap;

use common::{build_design, design_recipe};
use golden_free_htd::ipc::{
    CheckOutcome, CheckerOptions, Counterexample, IntervalProperty, PropertyChecker,
};
use golden_free_htd::rtl::sim::Simulator;
use golden_free_htd::rtl::structural::get_fanout;
use golden_free_htd::rtl::ValidatedDesign;
use proptest::prelude::*;

/// The init property of a design (the first property of the flow).
fn init_property(design: &ValidatedDesign) -> IntervalProperty {
    let inputs = design.design().inputs();
    IntervalProperty::new("init_property", vec![], get_fanout(design, &inputs))
}

/// Replays a single-cycle counterexample on two simulator instances and
/// checks that the reported diverging signals really do diverge with exactly
/// the reported values.
fn replay(design: &ValidatedDesign, cex: &Counterexample) {
    let mut instance1 = Simulator::new(design);
    let mut instance2 = Simulator::new(design);
    for state in &cex.starting_state {
        instance1
            .set_register(state.signal, state.instance1)
            .unwrap();
        instance2
            .set_register(state.signal, state.instance2)
            .unwrap();
    }
    let input_frames: Vec<HashMap<&str, u128>> = cex
        .inputs
        .iter()
        .map(|frame| frame.iter().map(|(n, v)| (n.as_str(), *v)).collect())
        .collect();
    for sim in [&mut instance1, &mut instance2] {
        for (name, value) in &input_frames[0] {
            sim.set_input_by_name(name, *value).unwrap();
        }
        sim.step().unwrap();
        // Outputs proven at t+1 observe the t+1 inputs.
        if input_frames.len() > 1 {
            for (name, value) in &input_frames[1] {
                sim.set_input_by_name(name, *value).unwrap();
            }
        }
    }
    for diff in &cex.diffs {
        let v1 = instance1.peek(diff.signal);
        let v2 = instance2.peek(diff.signal);
        assert_eq!(
            v1, diff.instance1,
            "instance 1 value of {} in replay",
            diff.name
        );
        assert_eq!(
            v2, diff.instance2,
            "instance 2 value of {} in replay",
            diff.name
        );
        assert_ne!(v1, v2, "{} was reported as diverging", diff.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sharing_option_never_changes_the_verdict(recipe in design_recipe()) {
        let design = build_design(&recipe);
        let property = init_property(&design);
        let shared = PropertyChecker::with_options(
            &design,
            CheckerOptions { share_assumed_equal: true, ..CheckerOptions::default() },
        )
        .check(&property);
        let unshared = PropertyChecker::with_options(
            &design,
            CheckerOptions { share_assumed_equal: false, ..CheckerOptions::default() },
        )
        .check(&property);
        prop_assert_eq!(shared.holds(), unshared.holds());
    }

    #[test]
    fn counterexamples_replay_on_the_simulator(recipe in design_recipe()) {
        let design = build_design(&recipe);
        let checker = PropertyChecker::new(&design);
        let property = init_property(&design);
        if let CheckOutcome::Fails(cex) = checker.check(&property).outcome {
            replay(&design, &cex);
        }
    }

    #[test]
    fn fanout_properties_also_produce_valid_counterexamples(recipe in design_recipe()) {
        let design = build_design(&recipe);
        let d = design.design();
        let checker = PropertyChecker::new(&design);
        let level1 = get_fanout(&design, &d.inputs());
        let level2 = get_fanout(&design, &level1);
        if level2.is_empty() {
            return Ok(());
        }
        let property = IntervalProperty::new("fanout_property_1", level1, level2);
        if let CheckOutcome::Fails(cex) = checker.check(&property).outcome {
            // The assumed-equal signals must indeed be equal in the reported
            // starting state (registers only; outputs are derived).
            for assumed in &property.assume_equal {
                if let Some(state) =
                    cex.starting_state.iter().find(|s| s.signal == *assumed)
                {
                    assert_eq!(
                        state.instance1, state.instance2,
                        "assumed-equal register {} differs in the starting state",
                        state.name
                    );
                }
            }
            replay(&design, &cex);
        }
    }
}
