//! Integration test for experiment E6: the RS232 UART case study.  The
//! infected UART is detected by a failed fanout property; the clean UART
//! verifies secure once the benign control state is waived.

use golden_free_htd::detect::{DetectedBy, DetectionOutcome, DetectorConfig, SessionBuilder};
use golden_free_htd::trusthub::registry::Benchmark;

#[test]
fn infected_uart_is_detected_by_a_fanout_property() {
    let benchmark = Benchmark::Rs232T2400;
    let design = benchmark.build().unwrap();
    let config = DetectorConfig {
        benign_state: benchmark.benign_state(&design),
        ..DetectorConfig::default()
    };
    let report = SessionBuilder::new(design.clone())
        .config(config)
        .build()
        .unwrap()
        .run()
        .unwrap();
    match &report.outcome {
        DetectionOutcome::PropertyFailed {
            detected_by,
            counterexample,
        } => {
            assert!(
                matches!(detected_by, DetectedBy::FanoutProperty(_)),
                "expected a fanout property, got {detected_by}"
            );
            // The corrupted serial line must be among the diverging signals.
            assert!(counterexample.diff_names().contains(&"txd"));
            // And the free-running trigger counter must differ in the
            // starting states.
            assert!(counterexample
                .differing_state()
                .iter()
                .any(|s| s.name == "trojan_cycle_count"));
        }
        other => panic!("expected detection, got {other:?}"),
    }
}

#[test]
fn infected_uart_without_waivers_is_still_detected() {
    // Waivers only suppress *spurious* counterexamples; with none supplied
    // the flow still ends in a detection (possibly at an earlier property).
    let design = Benchmark::Rs232T2400.build().unwrap();
    let report = SessionBuilder::new(design.clone())
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert!(!report.outcome.is_secure());
}

#[test]
fn uart_waivers_never_include_trojan_state() {
    let benchmark = Benchmark::Rs232T2400;
    let design = benchmark.build().unwrap();
    let d = design.design();
    for sig in benchmark.benign_state(&design) {
        assert!(!d.signal_name(sig).starts_with("trojan_"));
    }
}
