//! Equivalence suite for the IPASIR dynamic-library backend: the bundled
//! CDCL solver exported through the IPASIR C ABI (`crates/ipasir-shim`,
//! built as `libipasir_htd.so`) must drive the detection flow to reports
//! **byte-identical** to the builtin backend on every bundled benchmark,
//! across the whole `--jobs` × level-pipelining schedule matrix — and it
//! must do so *incrementally*: clauses cross the ABI exactly once per
//! backend instance, no matter how many queries run.
//!
//! Byte-identical here means everything the flow derives from solver
//! *answers*: verdicts, counterexamples, fanout levels, property traces,
//! resolution counts, encoder statistics.  The solver-internal work
//! counters (`SolverStats`) are scrubbed before comparison — the builtin
//! backend reports decisions/conflicts/propagations while an external
//! library is a black box that can only report queries and fork costs, so
//! those counters are backend-*dependent* by design.
//!
//! Identical models (not just identical verdicts) are possible because the
//! shim exports the optional `ipasir_htd_*` decision-masking extensions:
//! with them, a forked shim handle receives exactly the operation sequence
//! of a builtin solver shard (see `crates/sat/src/ipasir.rs`).  A foreign
//! IPASIR library without the extensions would still produce equivalent
//! verdicts, just not bit-equal counterexamples.

use std::num::NonZeroUsize;
use std::path::PathBuf;

use golden_free_htd::detect::{
    BackendChoice, DetectionReport, DetectorConfig, EngineChoice, PropertyScheduler, SessionBuilder,
};
use golden_free_htd::sat::{
    BudgetTracker, IpasirBackend, Lit, SatBackend, SolveBudget, SolveResult, SolverStats,
};
use golden_free_htd::trusthub::registry::Benchmark;

/// Locates the shim cdylib built by cargo (`HTD_IPASIR_LIB` overrides, for
/// CI legs that test a release build).  The root package has a
/// dev-dependency on `ipasir-shim`, so any `cargo test` invocation that
/// compiled this suite has also produced the shared object.
fn shim_library() -> PathBuf {
    // htd-lint: allow(strict-env): an opaque filesystem path consumed verbatim; there is nothing to parse strictly
    if let Ok(path) = std::env::var("HTD_IPASIR_LIB") {
        return PathBuf::from(path);
    }
    let exe = std::env::current_exe().expect("test binary has a path");
    // target/<profile>/deps/<test-binary> → target/<profile>
    let deps = exe.parent().expect("deps dir");
    let profile = deps.parent().expect("profile dir");
    for dir in [profile, deps] {
        let candidate = dir.join("libipasir_htd.so");
        if candidate.exists() {
            return candidate;
        }
    }
    panic!(
        "libipasir_htd.so not found next to {} — build it with `cargo build -p ipasir-shim` \
         (or point HTD_IPASIR_LIB at it)",
        exe.display()
    );
}

fn run_with(
    benchmark: Benchmark,
    backend: BackendChoice,
    jobs: usize,
    pipeline: bool,
) -> DetectionReport {
    let design = benchmark.build().expect("benchmark builds");
    let config = DetectorConfig {
        benign_state: benchmark.benign_state(&design),
        ..DetectorConfig::default()
    };
    let scheduler = PropertyScheduler::new(NonZeroUsize::new(jobs).expect("positive jobs"))
        .with_level_pipelining(pipeline)
        .with_oversubscription(true);
    SessionBuilder::new(design)
        .config(config)
        .backend(backend)
        .engine(EngineChoice::Scheduled(scheduler))
        .build()
        .expect("session builder accepts the design")
        .run()
        .expect("flow completes")
}

/// Normalizes a report for cross-backend comparison: wall-clocks zeroed
/// (as in `DetectionReport::normalized`) plus the backend-*bookkeeping*
/// fields scrubbed — the solver-internal work counters and the per-check
/// clause counts (the builtin solver reports live attached clauses after
/// unit-simplification and clause-GC; an external backend can only count
/// the clauses transmitted to it, so the two tallies differ by design).
/// Everything the flow derives from solver answers — verdicts,
/// counterexamples, fanout levels, variable counts, AIG statistics — must
/// match byte-for-byte.
fn scrubbed(report: &DetectionReport) -> DetectionReport {
    let mut report = report.normalized();
    report.solver_totals = SolverStats::default();
    for trace in &mut report.properties {
        trace.report.stats.solver = SolverStats::default();
        trace.report.stats.cnf_clauses = 0;
    }
    report
}

/// Every bundled benchmark must report identically on the builtin backend
/// and on the shim loaded through the IPASIR ABI, for every schedule in
/// the `--jobs {1,2,4}` × pipelining matrix.
#[test]
fn all_benchmarks_report_identically_on_the_ipasir_shim() {
    let library = shim_library();
    for benchmark in Benchmark::all() {
        let baseline = scrubbed(&run_with(benchmark, BackendChoice::Builtin, 1, true));
        for (jobs, pipeline) in [
            (1, true),
            (1, false),
            (2, true),
            (2, false),
            (4, true),
            (4, false),
        ] {
            let ipasir = scrubbed(&run_with(
                benchmark,
                BackendChoice::ipasir(&library),
                jobs,
                pipeline,
            ));
            assert_eq!(
                baseline,
                ipasir,
                "{}: builtin and ipasir reports differ at --jobs {jobs} (pipeline: {pipeline})",
                benchmark.name()
            );
            // Belt and braces: the rendered form covers every field.
            assert_eq!(
                format!("{baseline:?}"),
                format!("{ipasir:?}"),
                "{}: rendered reports differ at --jobs {jobs} (pipeline: {pipeline})",
                benchmark.name()
            );
        }
    }
}

/// The backend is genuinely incremental: clauses cross the ABI exactly
/// once per backend instance, regardless of how many queries run, and a
/// fork's replay re-transmits into the *fresh* instance only.
#[test]
fn clauses_are_transmitted_exactly_once_per_backend_instance() {
    let mut backend = IpasirBackend::load(shim_library()).expect("shim loads");
    assert!(
        backend.has_htd_extensions(),
        "the shim exports the ipasir_htd_* subset"
    );
    assert!(
        backend.signature().contains("htd-cdcl"),
        "{}",
        backend.signature()
    );

    let vars: Vec<_> = (0..8).map(|_| backend.new_var()).collect();
    for window in vars.windows(2) {
        backend.add_clause(&[Lit::neg(window[0]), Lit::pos(window[1])]);
    }
    let clause_count = vars.len() as u64 - 1;
    assert_eq!(backend.clauses_transmitted(), clause_count);

    // Many queries, zero re-transmissions.
    assert_eq!(backend.solve_under(&[]).unwrap(), SolveResult::Sat);
    assert_eq!(
        backend
            .solve_under(&[Lit::pos(vars[0]), Lit::neg(vars[7])])
            .unwrap(),
        SolveResult::Unsat,
        "the implication chain forces v7 from v0"
    );
    assert_eq!(
        backend.solve_under(&[Lit::pos(vars[3])]).unwrap(),
        SolveResult::Sat
    );
    assert_eq!(backend.model_value(vars[7]), Some(true));
    assert_eq!(backend.clauses_transmitted(), clause_count);
    assert_eq!(backend.stats().queries, 3);
    assert_eq!(backend.stats().solver.solves, 3);

    // A late clause is transmitted once, on add.
    backend.add_clause(&[Lit::neg(vars[7])]);
    assert_eq!(backend.clauses_transmitted(), clause_count + 1);
    assert_eq!(
        backend.solve_under(&[Lit::pos(vars[0])]).unwrap(),
        SolveResult::Unsat
    );
    assert_eq!(backend.clauses_transmitted(), clause_count + 1);

    // A fork replays the log into a fresh handle (once per *new* instance),
    // leaves the parent's counter untouched, and records its clone cost.
    let parent_transmitted = backend.clauses_transmitted();
    let parent_stats = backend.stats().solver;
    let mut fork = backend.fork().expect("ipasir backends fork");
    assert_eq!(backend.clauses_transmitted(), parent_transmitted);
    let fork_stats = fork.stats().solver;
    assert_eq!(fork_stats.fork_count, parent_stats.fork_count + 1);
    assert_eq!(
        fork_stats.bytes_cloned,
        parent_stats.bytes_cloned + backend.snapshot_bytes()
    );
    assert!(backend.snapshot_bytes() > 0);
    // The fork answers like the parent and stays independent.
    assert_eq!(
        fork.solve_under(&[Lit::pos(vars[0])]).unwrap(),
        SolveResult::Unsat
    );
    let extra = fork.new_var();
    fork.add_clause(&[Lit::pos(extra)]);
    assert_eq!(fork.stats().clauses as u64, parent_transmitted + 1);
    assert_eq!(backend.stats().clauses as u64, parent_transmitted);
}

/// The `ipasir_htd_clone` extension: `fork_native` snapshots the library
/// solver in O(bytes), the child inherits the parent's transmission ledger
/// (no clause crosses the ABI again), and the recorded clone cost is the
/// same `snapshot_bytes()` the replay path charges — so reports cannot
/// depend on which fork path a library supports.  The full-matrix test
/// above exercises this path end to end on every benchmark, because
/// `IpasirBackend::fork` prefers the native clone when the export exists.
#[test]
fn the_clone_extension_forks_without_retransmitting_clauses() {
    let mut backend = IpasirBackend::load(shim_library()).expect("shim loads");
    assert!(
        backend.has_clone_extension(),
        "the shim exports ipasir_htd_clone"
    );

    let vars: Vec<_> = (0..6).map(|_| backend.new_var()).collect();
    for window in vars.windows(2) {
        backend.add_clause(&[Lit::neg(window[0]), Lit::pos(window[1])]);
    }
    assert_eq!(backend.solve_under(&[]).unwrap(), SolveResult::Sat);

    let transmitted = backend.clauses_transmitted();
    let parent_stats = backend.stats().solver;
    let mut child = backend.fork_native().expect("clone extension is present");

    // A native clone moves bytes, not clauses: both handles keep the
    // parent's transmission count, with zero additional transmissions.
    assert_eq!(child.clauses_transmitted(), transmitted);
    assert_eq!(backend.clauses_transmitted(), transmitted);
    let child_stats = child.stats().solver;
    assert_eq!(child_stats.fork_count, parent_stats.fork_count + 1);
    assert_eq!(
        child_stats.bytes_cloned,
        parent_stats.bytes_cloned + backend.snapshot_bytes()
    );

    // Identical answers, independent futures.
    assert_eq!(
        child
            .solve_under(&[Lit::pos(vars[0]), Lit::neg(vars[5])])
            .unwrap(),
        SolveResult::Unsat,
        "the cloned chain still forces v5 from v0"
    );
    child.add_clause(&[Lit::neg(vars[0])]);
    assert_eq!(child.clauses_transmitted(), transmitted + 1);
    assert_eq!(backend.clauses_transmitted(), transmitted);
    assert_eq!(
        backend.solve_under(&[Lit::pos(vars[0])]).unwrap(),
        SolveResult::Sat,
        "the parent never sees the child's clause"
    );
}

/// The interrupt predicate reaches the library through
/// `ipasir_set_terminate` and surfaces as `SolveResult::Interrupted`.
#[test]
fn interrupts_reach_the_library_through_set_terminate() {
    let mut backend = IpasirBackend::load(shim_library()).expect("shim loads");
    let a = backend.new_var();
    let b = backend.new_var();
    backend.add_clause(&[Lit::pos(a), Lit::pos(b)]);
    backend.set_interrupt(std::sync::Arc::new(|| true));
    assert_eq!(backend.solve_under(&[]).unwrap(), SolveResult::Interrupted);
    backend.set_interrupt(std::sync::Arc::new(|| false));
    assert_eq!(backend.solve_under(&[]).unwrap(), SolveResult::Sat);
}

/// Regression for the fork/interrupt seam the portfolio backend cancels
/// losers through: a child forked *after* the parent armed a conflict
/// ceiling must honour it without a fresh `set_budget` — `fork_native`
/// used to drop the inherited terminate state on the floor, so a racing
/// fork would grind on after its budget was spent.
#[test]
fn a_forked_child_honours_a_pre_armed_conflict_ceiling() {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    let mut backend = IpasirBackend::load(shim_library()).expect("shim loads");
    let vars: Vec<_> = (0..6).map(|_| backend.new_var()).collect();
    for window in vars.windows(2) {
        backend.add_clause(&[Lit::neg(window[0]), Lit::pos(window[1])]);
    }

    // Arm a conflict ceiling on the *parent* and spend it (the external
    // solver's conflicts are charged by sibling shards, so charge the
    // tracker directly — this is exactly the shared-tracker state a racing
    // fork inherits).
    let tracker = Arc::new(BudgetTracker::start(
        SolveBudget {
            deadline: None,
            conflict_ceiling: Some(2),
        },
        Arc::new(AtomicBool::new(false)),
    ));
    backend.set_budget(Some(Arc::clone(&tracker)));
    for _ in 0..3 {
        tracker.charge_conflict();
    }
    assert!(tracker.check(), "the ceiling is spent");

    // Both fork paths must carry the armed budget across.
    let mut native = backend.fork_native().expect("clone extension is present");
    assert_eq!(
        native.solve_under(&[]).unwrap(),
        SolveResult::Interrupted,
        "a native clone honours the pre-armed ceiling without set_budget"
    );
    let mut replayed = backend.fork().expect("ipasir backends fork");
    assert_eq!(
        replayed.solve_under(&[]).unwrap(),
        SolveResult::Interrupted,
        "a replay fork honours the pre-armed ceiling without set_budget"
    );

    // Releasing the ceiling on the child restores normal solving — the
    // inherited state is a starting point, not a permanent verdict.
    native.set_budget(None);
    assert_eq!(native.solve_under(&[]).unwrap(), SolveResult::Sat);
}

/// The user-level interrupt predicate also survives a fork: a cancel flag
/// armed before forking stops the child the moment it trips, with no
/// fresh `set_interrupt` on the child handle.
#[test]
fn a_forked_child_inherits_the_parent_interrupt_predicate() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let mut backend = IpasirBackend::load(shim_library()).expect("shim loads");
    let a = backend.new_var();
    let b = backend.new_var();
    backend.add_clause(&[Lit::pos(a), Lit::pos(b)]);

    let cancel = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&cancel);
    backend.set_interrupt(Arc::new(move || flag.load(Ordering::Relaxed)));

    let mut child = backend.fork_native().expect("clone extension is present");
    assert_eq!(
        child.solve_under(&[]).unwrap(),
        SolveResult::Sat,
        "an untripped flag does not block the child"
    );
    cancel.store(true, Ordering::Relaxed);
    assert_eq!(
        child.solve_under(&[]).unwrap(),
        SolveResult::Interrupted,
        "the inherited predicate cancels the forked child"
    );
}

/// `detect --backend ipasir:` wiring end to end: dimacs-style detection
/// equivalence on an infected design, plus honest backend naming.
#[test]
fn detection_session_runs_on_the_ipasir_backend_by_choice_string() {
    let library = shim_library();
    let spec = format!("ipasir:{}", library.display());
    let choice: BackendChoice = spec.parse().expect("CLI syntax parses");
    assert_eq!(choice, BackendChoice::ipasir(&library));
    let report = run_with(Benchmark::AesT100, choice, 2, true);
    let builtin = run_with(Benchmark::AesT100, BackendChoice::Builtin, 2, true);
    assert_eq!(scrubbed(&report), scrubbed(&builtin));
    // The external library cannot report internal search counters, but the
    // visible cost accounting is real: queries ran and forks were paid for.
    assert!(report.solver_totals.solves > 0);
    assert!(report.solver_totals.fork_count > 0);
    assert!(report.solver_totals.bytes_cloned > 0);
}
