//! Shared helpers for the cross-crate integration tests: a generator for
//! small random RTL designs used by the property-based tests.

// Each integration-test binary compiles this module separately and uses a
// different subset of it.
#![allow(dead_code)]

use golden_free_htd::rtl::{Design, ExprId, SignalId, ValidatedDesign};
use proptest::prelude::*;

/// A compact, serialisable recipe for a random design; proptest shrinks this
/// structure rather than the built design.
#[derive(Clone, Debug)]
pub struct DesignRecipe {
    /// Word width of every signal in the design.
    pub width: u32,
    /// Number of primary inputs (at least 1).
    pub num_inputs: usize,
    /// One entry per register: the expression recipe for its next state.
    pub registers: Vec<ExprRecipe>,
    /// Expression recipe for the single primary output.
    pub output: ExprRecipe,
}

/// A tiny expression grammar over the design's inputs and registers.
#[derive(Clone, Debug)]
pub enum ExprRecipe {
    /// Reference to input `i % num_inputs`.
    Input(u8),
    /// Reference to register `r % num_registers`.
    Register(u8),
    /// A constant (masked to the design width).
    Const(u64),
    /// Exclusive or of two sub-expressions.
    Xor(Box<ExprRecipe>, Box<ExprRecipe>),
    /// Wrapping addition of two sub-expressions.
    Add(Box<ExprRecipe>, Box<ExprRecipe>),
    /// Bitwise and of two sub-expressions.
    And(Box<ExprRecipe>, Box<ExprRecipe>),
    /// Bitwise complement of a sub-expression.
    Not(Box<ExprRecipe>),
    /// `if a == const { b } else { c }`.
    MuxEq(u64, Box<ExprRecipe>, Box<ExprRecipe>, Box<ExprRecipe>),
}

fn leaf() -> impl Strategy<Value = ExprRecipe> {
    prop_oneof![
        any::<u8>().prop_map(ExprRecipe::Input),
        any::<u8>().prop_map(ExprRecipe::Register),
        any::<u64>().prop_map(ExprRecipe::Const),
    ]
}

fn expr_recipe() -> impl Strategy<Value = ExprRecipe> {
    leaf().prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ExprRecipe::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ExprRecipe::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ExprRecipe::And(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| ExprRecipe::Not(Box::new(a))),
            (any::<u64>(), inner.clone(), inner.clone(), inner).prop_map(|(c, a, b, e)| {
                ExprRecipe::MuxEq(c, Box::new(a), Box::new(b), Box::new(e))
            }),
        ]
    })
}

/// Strategy producing random design recipes.
pub fn design_recipe() -> impl Strategy<Value = DesignRecipe> {
    (
        prop_oneof![Just(1u32), Just(2), Just(4)],
        1usize..=2,
        prop::collection::vec(expr_recipe(), 1..=4),
        expr_recipe(),
    )
        .prop_map(|(width, num_inputs, registers, output)| DesignRecipe {
            width,
            num_inputs,
            registers,
            output,
        })
}

/// A recipe for a *layered* design: register `k` computes a combinational
/// function of register `k - 1` only (register 0 reads the single primary
/// input), and the output reads the last register.  Such designs satisfy the
/// data-driven side condition of the decomposition by construction — they are
/// the structural shape of the non-interfering, data-driven accelerators the
/// paper targets.
#[derive(Clone, Debug)]
pub struct LayeredRecipe {
    /// Word width of every signal.
    pub width: u32,
    /// Per-stage combinational function (applied to the previous stage).
    pub stages: Vec<StageOp>,
}

/// The combinational function of one pipeline stage.
#[derive(Clone, Copy, Debug)]
pub enum StageOp {
    /// Pass the previous stage through unchanged.
    Pass,
    /// Bitwise complement of the previous stage.
    Not,
    /// Xor the previous stage with a constant.
    XorConst(u64),
    /// Add a constant to the previous stage (wrapping).
    AddConst(u64),
}

/// Strategy producing layered pipeline recipes.
pub fn layered_recipe() -> impl Strategy<Value = LayeredRecipe> {
    let stage = prop_oneof![
        Just(StageOp::Pass),
        Just(StageOp::Not),
        any::<u64>().prop_map(StageOp::XorConst),
        any::<u64>().prop_map(StageOp::AddConst),
    ];
    (
        prop_oneof![Just(1u32), Just(4), Just(8)],
        prop::collection::vec(stage, 1..=6),
    )
        .prop_map(|(width, stages)| LayeredRecipe { width, stages })
}

impl LayeredRecipe {
    fn stage_expr(&self, d: &mut Design, op: StageOp, prev: ExprId) -> ExprId {
        match op {
            StageOp::Pass => prev,
            StageOp::Not => d.not(prev),
            StageOp::XorConst(c) => {
                let k = d
                    .constant(mask(self.width, c), self.width)
                    .expect("masked constant");
                d.xor(prev, k).expect("same width")
            }
            StageOp::AddConst(c) => {
                let k = d
                    .constant(mask(self.width, c), self.width)
                    .expect("masked constant");
                d.add(prev, k).expect("same width")
            }
        }
    }
}

/// Trait for recipes that can be materialised into a validated design, so the
/// tests can share one `build_design` entry point across recipe kinds.
pub trait BuildDesign {
    /// Builds the design described by the recipe.
    fn build(&self) -> ValidatedDesign;
}

impl BuildDesign for DesignRecipe {
    fn build(&self) -> ValidatedDesign {
        build_random_design(self)
    }
}

impl BuildDesign for LayeredRecipe {
    fn build(&self) -> ValidatedDesign {
        let mut d = Design::new("layered_design");
        let input = d.add_input("in", self.width).expect("fresh input name");
        let mut prev = d.signal(input);
        for (i, &op) in self.stages.iter().enumerate() {
            let reg = d
                .add_register(format!("stage{i}"), self.width, 0)
                .expect("fresh name");
            let next = self.stage_expr(&mut d, op, prev);
            d.set_register_next(reg, next).expect("same width");
            prev = d.signal(reg);
        }
        d.add_output("out", prev).expect("fresh output name");
        d.validated()
            .expect("layered recipes are always well-formed")
    }
}

/// Materialises any recipe into a validated design.
pub fn build_design<R: BuildDesign>(recipe: &R) -> ValidatedDesign {
    recipe.build()
}

fn mask(width: u32, value: u64) -> u128 {
    u128::from(value) & ((1u128 << width) - 1)
}

fn build_expr(
    d: &mut Design,
    recipe: &ExprRecipe,
    width: u32,
    inputs: &[SignalId],
    registers: &[SignalId],
) -> ExprId {
    match recipe {
        ExprRecipe::Input(i) => d.signal(inputs[*i as usize % inputs.len()]),
        ExprRecipe::Register(r) => d.signal(registers[*r as usize % registers.len()]),
        ExprRecipe::Const(v) => d
            .constant(mask(width, *v), width)
            .expect("masked constant fits"),
        ExprRecipe::Xor(a, b) => {
            let ea = build_expr(d, a, width, inputs, registers);
            let eb = build_expr(d, b, width, inputs, registers);
            d.xor(ea, eb).expect("same width")
        }
        ExprRecipe::Add(a, b) => {
            let ea = build_expr(d, a, width, inputs, registers);
            let eb = build_expr(d, b, width, inputs, registers);
            d.add(ea, eb).expect("same width")
        }
        ExprRecipe::And(a, b) => {
            let ea = build_expr(d, a, width, inputs, registers);
            let eb = build_expr(d, b, width, inputs, registers);
            d.and(ea, eb).expect("same width")
        }
        ExprRecipe::Not(a) => {
            let ea = build_expr(d, a, width, inputs, registers);
            d.not(ea)
        }
        ExprRecipe::MuxEq(c, a, b, e) => {
            let ea = build_expr(d, a, width, inputs, registers);
            let eb = build_expr(d, b, width, inputs, registers);
            let ee = build_expr(d, e, width, inputs, registers);
            let cond = d
                .eq_const(ea, mask(width, *c))
                .expect("masked constant fits");
            d.mux(cond, eb, ee).expect("same width")
        }
    }
}

/// Materialises a random-design recipe into a validated design.
fn build_random_design(recipe: &DesignRecipe) -> ValidatedDesign {
    let mut d = Design::new("random_design");
    let inputs: Vec<SignalId> = (0..recipe.num_inputs)
        .map(|i| {
            d.add_input(format!("in{i}"), recipe.width)
                .expect("fresh input name")
        })
        .collect();
    let registers: Vec<SignalId> = (0..recipe.registers.len())
        .map(|i| {
            d.add_register(format!("r{i}"), recipe.width, 0)
                .expect("fresh register name")
        })
        .collect();
    for (reg, expr_recipe) in registers.iter().zip(&recipe.registers) {
        let next = build_expr(&mut d, expr_recipe, recipe.width, &inputs, &registers);
        d.set_register_next(*reg, next).expect("same width");
    }
    let out = build_expr(&mut d, &recipe.output, recipe.width, &inputs, &registers);
    d.add_output("out", out).expect("fresh output name");
    d.validated()
        .expect("recipe designs are always well-formed")
}
