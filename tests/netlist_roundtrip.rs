//! The textual netlist format is the interchange point for external designs:
//! dumping a benchmark and parsing it back must preserve both simulation
//! behaviour and the detection verdict.

use golden_free_htd::detect::{DetectorConfig, SessionBuilder};
use golden_free_htd::rtl::netlist;
use golden_free_htd::rtl::sim::Simulator;
use golden_free_htd::rtl::Design;
use golden_free_htd::trusthub::registry::Benchmark;
use golden_free_htd::trusthub::rsa::{modexp_ref, LATENCY};

/// KNOWN LIMITATION: the textual netlist dump writes every signal's driver as
/// a nested expression, so designs whose expression DAG is deep *and* heavily
/// shared — the BasicRSA modexp datapath chains 32-bit multiply/reduce cones —
/// expand exponentially and exhaust memory.  The RSA benchmarks therefore
/// enter the toolkit through the builder API or the Verilog front-end, not
/// through the netlist text format.  The test is kept (ignored) to document
/// the gap; run it explicitly with `cargo test -- --ignored` after fixing the
/// dump to emit shared subexpressions as named wires.
#[test]
#[ignore = "netlist::dump expands the RSA's shared arithmetic DAG exponentially (see comment)"]
fn rsa_benchmark_roundtrips_through_the_netlist_format() {
    let original = Benchmark::BasicRsaHtFree.build().unwrap();
    let text = netlist::dump(&original);
    let parsed = netlist::parse(&text).unwrap();

    // Same signals.
    assert_eq!(
        original.design().num_signals(),
        parsed.design().num_signals()
    );

    // Same simulation behaviour.
    let mut sim = Simulator::new(&parsed);
    sim.set_input_by_name("indata", 0x321).unwrap();
    sim.set_input_by_name("inexp", 0x11).unwrap();
    sim.set_input_by_name("inmod", 0xfff1).unwrap();
    sim.set_input_by_name("ds", 1).unwrap();
    sim.step().unwrap();
    sim.set_input_by_name("ds", 0).unwrap();
    sim.run(LATENCY).unwrap();
    assert_eq!(
        sim.peek_by_name("cypher").unwrap(),
        u128::from(modexp_ref(0x321, 0x11, 0xfff1))
    );
}

#[test]
fn arithmetic_accumulator_roundtrips_through_the_netlist_format() {
    // A multiply-accumulate design with moderate expression sharing: deep
    // enough to exercise the arithmetic operators in the dump/parse path,
    // shallow enough that the textual expansion stays linear.
    let mut d = Design::new("mac");
    let a = d.add_input("a", 16).unwrap();
    let b = d.add_input("b", 16).unwrap();
    let acc = d.add_register("acc", 16, 0).unwrap();
    let product = d.mul(d.signal(a), d.signal(b)).unwrap();
    let sum = d.add(d.signal(acc), product).unwrap();
    d.set_register_next(acc, sum).unwrap();
    d.add_output("out", d.signal(acc)).unwrap();
    let original = d.validated().unwrap();

    let text = netlist::dump(&original);
    let parsed = netlist::parse(&text).unwrap();
    assert_eq!(
        original.design().num_signals(),
        parsed.design().num_signals()
    );

    // Same simulation behaviour on both variants.
    let stimuli = [(3u128, 5u128), (7, 11), (250, 301), (65_535, 2)];
    for design in [&original, &parsed] {
        let mut sim = Simulator::new(design);
        for (x, y) in stimuli {
            sim.set_input_by_name("a", x).unwrap();
            sim.set_input_by_name("b", y).unwrap();
            sim.step().unwrap();
        }
        assert_eq!(
            sim.peek_by_name("acc").unwrap(),
            (3 * 5 + 7 * 11 + 250 * 301 + 65_535 * 2) & 0xFFFF,
            "mismatch for {}",
            design.design().name()
        );
    }
}

#[test]
fn infected_uart_keeps_its_detection_verdict_after_a_roundtrip() {
    let benchmark = Benchmark::Rs232T2400;
    let original = benchmark.build().unwrap();
    let parsed = netlist::parse(&netlist::dump(&original)).unwrap();

    for design in [&original, &parsed] {
        let config = DetectorConfig {
            benign_state: benchmark.benign_state(design),
            ..DetectorConfig::default()
        };
        let report = SessionBuilder::new(design.clone())
            .config(config)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert!(
            !report.outcome.is_secure(),
            "trojan must be detected in both variants"
        );
    }
}

#[test]
fn clean_uart_keeps_its_secure_verdict_after_a_roundtrip() {
    let benchmark = Benchmark::Rs232HtFree;
    let original = benchmark.build().unwrap();
    let parsed = netlist::parse(&netlist::dump(&original)).unwrap();
    // Waivers are looked up by name so they survive the roundtrip.
    let config = DetectorConfig {
        benign_state: benchmark.benign_state(&parsed),
        ..DetectorConfig::default()
    };
    let report = SessionBuilder::new(parsed.clone())
        .config(config)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert!(report.outcome.is_secure());
}

#[test]
fn aes_netlist_dump_is_parseable() {
    // The AES dump is large (the S-box tables appear once per use); make sure
    // it still parses and keeps the same interface.
    let original = Benchmark::AesHtFree.build().unwrap();
    let text = netlist::dump(&original);
    assert!(text.len() > 10_000);
    let parsed = netlist::parse(&text).unwrap();
    assert_eq!(parsed.design().inputs().len(), 2);
    assert_eq!(parsed.design().registers().len(), 42);
}
