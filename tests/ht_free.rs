//! Integration test for experiment E2: the HT-free reference designs must
//! verify secure, with spurious counterexamples only where the paper reports
//! them (none for the data-driven AES, a few for the control-heavy RSA and
//! UART designs).

use golden_free_htd::detect::{DetectorConfig, SessionBuilder};
use golden_free_htd::trusthub::registry::Benchmark;

fn verify(benchmark: Benchmark) -> (bool, usize, usize) {
    let design = benchmark.build().expect("design builds");
    let config = DetectorConfig {
        benign_state: benchmark.benign_state(&design),
        ..DetectorConfig::default()
    };
    let report = SessionBuilder::new(design.clone())
        .config(config)
        .build()
        .expect("detector accepts the design")
        .run()
        .expect("flow completes");
    (
        report.outcome.is_secure(),
        report.spurious_resolved,
        report.properties_checked(),
    )
}

#[test]
fn ht_free_aes_verifies_secure_without_spurious_counterexamples() {
    let (secure, spurious, properties) = verify(Benchmark::AesHtFree);
    assert!(secure);
    assert_eq!(spurious, 0, "the data-driven AES pipeline needs no waivers");
    // init property + one fanout property per remaining structural level.
    assert_eq!(properties, 22);
}

#[test]
fn ht_free_rsa_verifies_secure_after_spurious_cex_resolution() {
    let (secure, spurious, _) = verify(Benchmark::BasicRsaHtFree);
    assert!(secure);
    // The paper resolved 2 spurious counterexamples for the RSA designs; the
    // exact count depends on the microarchitecture, but there must be at
    // least one (the design has interfering control state) and few.
    assert!(
        (1..=4).contains(&spurious),
        "unexpected spurious count {spurious}"
    );
}

#[test]
fn ht_free_uart_verifies_secure_after_spurious_cex_resolution() {
    let (secure, spurious, _) = verify(Benchmark::Rs232HtFree);
    assert!(secure);
    assert!(
        (1..=5).contains(&spurious),
        "unexpected spurious count {spurious}"
    );
}

#[test]
fn ht_free_verification_fails_without_waivers_for_interfering_designs() {
    // Without the engineer-supplied waivers the control state of the RSA
    // design produces a (false) detection — the situation Sec. V-B describes.
    let design = Benchmark::BasicRsaHtFree.build().unwrap();
    let report = SessionBuilder::new(design.clone())
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert!(!report.outcome.is_secure());
}
