//! The `HTD_GC_DEAD_PCT` / `HTD_GC_MIN_CLAUSES` environment overrides, in a
//! test binary of their own: mutating process-global environment variables
//! must not race sibling tests that read them through
//! `CheckerOptions::default()` (cargo runs test *binaries* sequentially, but
//! tests within one binary in parallel).

use golden_free_htd::ipc::CheckerOptions;

/// The `HTD_GC_DEAD_PCT` / `HTD_GC_MIN_CLAUSES` environment variables
/// override the `CheckerOptions` defaults.
#[test]
fn gc_threshold_env_overrides_are_honoured() {
    std::env::set_var(golden_free_htd::ipc::GC_DEAD_PCT_ENV_VAR, "5");
    std::env::set_var(golden_free_htd::ipc::GC_MIN_CLAUSES_ENV_VAR, "7");
    let options = CheckerOptions::default();
    std::env::remove_var(golden_free_htd::ipc::GC_DEAD_PCT_ENV_VAR);
    std::env::remove_var(golden_free_htd::ipc::GC_MIN_CLAUSES_ENV_VAR);
    assert_eq!(options.gc_dead_pct, 5);
    assert_eq!(options.gc_min_clauses, 7);
    let defaults = CheckerOptions::default();
    assert_eq!(defaults.gc_dead_pct, 25);
    assert_eq!(defaults.gc_min_clauses, 128);
}
