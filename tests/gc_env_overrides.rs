//! The strict environment overrides (`HTD_GC_DEAD_PCT` /
//! `HTD_GC_MIN_CLAUSES` / `HTD_JOBS` / `HTD_LEVEL_PIPELINE` /
//! `HTD_PORTFOLIO` / `HTD_SERVE_*`), in a test
//! binary of their own: mutating process-global environment variables must
//! not race sibling tests that read them through `CheckerOptions::default()`
//! or `PropertyScheduler::default_jobs()` (cargo runs test *binaries*
//! sequentially, but tests within one binary in parallel — which is why
//! every test here serialises on [`env_lock`]).
//!
//! The overrides are strict on purpose: an unset variable falls back to the
//! default, but a set-but-malformed one fails loudly.  `parse().ok()` would
//! let a typo (`HTD_JOBS=two`, `HTD_GC_DEAD_PCT=5%`) silently run a
//! differently-scheduled flow than the operator asked for.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard, OnceLock};

use golden_free_htd::detect::PropertyScheduler;
use golden_free_htd::ipc::CheckerOptions;
use golden_free_htd::serve;

/// Serialises the tests in this binary: they all mutate the process
/// environment.  Taken once at the top of every test (the helpers below do
/// not lock, so they can nest).
fn env_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs `body` with `var` set to `value`, restoring the previous state.
/// Caller holds [`env_lock`].
fn with_env<R>(var: &str, value: &str, body: impl FnOnce() -> R) -> R {
    let previous = std::env::var(var).ok();
    std::env::set_var(var, value);
    let result = catch_unwind(AssertUnwindSafe(body));
    match previous {
        Some(old) => std::env::set_var(var, old),
        None => std::env::remove_var(var),
    }
    match result {
        Ok(result) => result,
        Err(panic) => std::panic::resume_unwind(panic),
    }
}

/// Runs `body` with `var` removed from the environment, restoring the
/// previous state — the CI matrix exports `HTD_JOBS`/`HTD_LEVEL_PIPELINE`
/// for whole test runs, so "unset" defaults must be asserted under an
/// explicit unset, not the ambient environment.  Caller holds [`env_lock`].
fn without_env<R>(var: &str, body: impl FnOnce() -> R) -> R {
    let previous = std::env::var(var).ok();
    std::env::remove_var(var);
    let result = catch_unwind(AssertUnwindSafe(body));
    if let Some(old) = previous {
        std::env::set_var(var, old);
    }
    match result {
        Ok(result) => result,
        Err(panic) => std::panic::resume_unwind(panic),
    }
}

/// Like [`with_env`], but expects `body` to panic and returns the message.
fn panic_message_with_env(var: &str, value: &str, body: impl FnOnce()) -> String {
    with_env(var, value, || {
        let panic = catch_unwind(AssertUnwindSafe(body)).expect_err("expected a panic");
        panic
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| panic.downcast_ref::<&str>().map(ToString::to_string))
            .unwrap_or_default()
    })
}

/// The `HTD_GC_DEAD_PCT` / `HTD_GC_MIN_CLAUSES` environment variables
/// override the `CheckerOptions` defaults.
#[test]
fn gc_threshold_env_overrides_are_honoured() {
    let _guard = env_lock();
    let options = with_env(golden_free_htd::ipc::GC_DEAD_PCT_ENV_VAR, "5", || {
        with_env(
            golden_free_htd::ipc::GC_MIN_CLAUSES_ENV_VAR,
            "7",
            CheckerOptions::default,
        )
    });
    assert_eq!(options.gc_dead_pct, 5);
    assert_eq!(options.gc_min_clauses, 7);
    let defaults = CheckerOptions::default();
    assert_eq!(defaults.gc_dead_pct, 25);
    assert_eq!(defaults.gc_min_clauses, 128);
}

/// A malformed GC threshold fails loudly (naming the variable) instead of
/// silently running with the default.
#[test]
fn malformed_gc_thresholds_are_rejected() {
    let _guard = env_lock();
    let message = panic_message_with_env(golden_free_htd::ipc::GC_DEAD_PCT_ENV_VAR, "5%", || {
        let _ = CheckerOptions::default();
    });
    assert!(message.contains("HTD_GC_DEAD_PCT"), "{message}");
    let message =
        panic_message_with_env(golden_free_htd::ipc::GC_MIN_CLAUSES_ENV_VAR, "many", || {
            let _ = CheckerOptions::default();
        });
    assert!(message.contains("HTD_GC_MIN_CLAUSES"), "{message}");
}

/// `HTD_JOBS` must be a positive integer; whitespace is tolerated, zero and
/// garbage are not.
#[test]
fn jobs_env_override_is_strict() {
    let _guard = env_lock();
    assert_eq!(
        with_env("HTD_JOBS", "3", PropertyScheduler::default_jobs).get(),
        3
    );
    assert_eq!(
        with_env("HTD_JOBS", " 2 ", PropertyScheduler::default_jobs).get(),
        2
    );
    for bad in ["0", "two", "-1", "", "4x"] {
        let message = panic_message_with_env("HTD_JOBS", bad, || {
            let _ = PropertyScheduler::default_jobs();
        });
        assert!(
            message.contains("HTD_JOBS") && message.contains("positive integer"),
            "HTD_JOBS={bad}: {message}"
        );
        let error = with_env("HTD_JOBS", bad, PropertyScheduler::try_default_jobs)
            .expect_err("malformed HTD_JOBS is an error");
        assert!(error.contains("HTD_JOBS"), "{error}");
    }
    assert_eq!(
        without_env("HTD_JOBS", PropertyScheduler::default_jobs).get(),
        1,
        "unset default"
    );
}

/// `HTD_LEVEL_PIPELINE` understands the usual boolean spellings — in
/// particular `off` and `false` *disable* pipelining (they used to be
/// treated as enabled, because only the literal `0` was recognised) — and
/// rejects anything else.
#[test]
fn level_pipeline_env_override_is_strict_and_understands_off() {
    let _guard = env_lock();
    for on in ["1", "true", "on", "yes", "TRUE", " On "] {
        assert!(
            with_env(
                "HTD_LEVEL_PIPELINE",
                on,
                PropertyScheduler::default_level_pipelining
            ),
            "HTD_LEVEL_PIPELINE={on} must enable pipelining"
        );
    }
    for off in ["0", "false", "off", "no", "OFF", "False"] {
        assert!(
            !with_env(
                "HTD_LEVEL_PIPELINE",
                off,
                PropertyScheduler::default_level_pipelining
            ),
            "HTD_LEVEL_PIPELINE={off} must disable pipelining"
        );
    }
    for bad in ["2", "banana", "enabled", ""] {
        let message = panic_message_with_env("HTD_LEVEL_PIPELINE", bad, || {
            let _ = PropertyScheduler::default_level_pipelining();
        });
        assert!(
            message.contains("HTD_LEVEL_PIPELINE"),
            "HTD_LEVEL_PIPELINE={bad}: {message}"
        );
        let error = with_env(
            "HTD_LEVEL_PIPELINE",
            bad,
            PropertyScheduler::try_default_level_pipelining,
        )
        .expect_err("malformed HTD_LEVEL_PIPELINE is an error");
        assert!(error.contains("HTD_LEVEL_PIPELINE"), "{error}");
    }
    assert!(
        without_env(
            "HTD_LEVEL_PIPELINE",
            PropertyScheduler::default_level_pipelining
        ),
        "unset default is on"
    );
}

/// `HTD_PORTFOLIO` turns the default backend into a racing portfolio for
/// every session that does not choose one explicitly — and, being strict,
/// a malformed spec is an error everywhere it is consulted (sessions, the
/// CLI fallback and `ServeOptions::from_env`), never a silent builtin.
#[test]
fn portfolio_env_override_is_strict() {
    use golden_free_htd::detect::{BackendChoice, RacePolicy, PORTFOLIO_ENV_VAR};

    let _guard = env_lock();
    // With or without the `portfolio:` prefix, with an optional policy token.
    let choice = with_env(PORTFOLIO_ENV_VAR, "builtin,builtin", || {
        BackendChoice::try_default_from_env().expect("well-formed spec")
    });
    assert_eq!(
        choice,
        BackendChoice::portfolio(
            vec![BackendChoice::Builtin, BackendChoice::Builtin],
            RacePolicy::DeterministicCex,
        )
    );
    let choice = with_env(
        PORTFOLIO_ENV_VAR,
        "portfolio:fastest-cex,builtin,dimacs:/bin/solver",
        BackendChoice::default_from_env,
    );
    assert_eq!(
        choice,
        BackendChoice::portfolio(
            vec![BackendChoice::Builtin, BackendChoice::dimacs("/bin/solver")],
            RacePolicy::FastestCex,
        )
    );

    for bad in ["", "z3", "builtin,,builtin", "deterministic-cex"] {
        let error = with_env(PORTFOLIO_ENV_VAR, bad, BackendChoice::try_default_from_env)
            .expect_err("malformed HTD_PORTFOLIO is an error");
        assert!(
            error.contains("HTD_PORTFOLIO"),
            "HTD_PORTFOLIO={bad}: {error}"
        );
        let message = panic_message_with_env(PORTFOLIO_ENV_VAR, bad, || {
            let _ = BackendChoice::default_from_env();
        });
        assert!(message.contains("HTD_PORTFOLIO"), "{message}");
        // The serve tier consults the same variable and refuses the same way.
        let error = with_env(PORTFOLIO_ENV_VAR, bad, serve::ServeOptions::from_env)
            .expect_err("ServeOptions::from_env propagates the refusal");
        assert!(error.contains("HTD_PORTFOLIO"), "{error}");
    }

    assert_eq!(
        without_env(PORTFOLIO_ENV_VAR, BackendChoice::try_default_from_env),
        Ok(BackendChoice::Builtin),
        "unset default is the builtin solver"
    );
    let options = without_env(PORTFOLIO_ENV_VAR, || {
        without_env(serve::FAULT_ENV_VAR, serve::ServeOptions::from_env)
    })
    .expect("unset environment yields the default options");
    assert_eq!(options.backend, BackendChoice::Builtin);
}

/// `HTD_SERVE_ADDR` must be a socket address; whitespace is trimmed, and a
/// malformed value fails loudly instead of binding a surprise interface.
#[test]
fn serve_addr_env_override_is_strict() {
    let _guard = env_lock();
    assert_eq!(
        with_env(serve::ADDR_ENV_VAR, "0.0.0.0:9000", serve::default_addr),
        "0.0.0.0:9000"
    );
    assert_eq!(
        with_env(serve::ADDR_ENV_VAR, " [::1]:7171 ", serve::default_addr),
        "[::1]:7171"
    );
    for bad in ["localhost:7171", "7171", "127.0.0.1", "", "not an addr"] {
        let message = panic_message_with_env(serve::ADDR_ENV_VAR, bad, || {
            let _ = serve::default_addr();
        });
        assert!(
            message.contains("HTD_SERVE_ADDR") && message.contains("socket address"),
            "HTD_SERVE_ADDR={bad}: {message}"
        );
        let error = with_env(serve::ADDR_ENV_VAR, bad, serve::try_default_addr)
            .expect_err("malformed HTD_SERVE_ADDR is an error");
        assert!(error.contains("HTD_SERVE_ADDR"), "{error}");
    }
    assert_eq!(
        without_env(serve::ADDR_ENV_VAR, serve::default_addr),
        serve::DEFAULT_ADDR,
        "unset default"
    );
}

/// `HTD_SERVE_MAX_JOBS` must be a positive integer (the admission bound can
/// never be zero — the daemon would reject everything).
#[test]
fn serve_max_jobs_env_override_is_strict() {
    let _guard = env_lock();
    assert_eq!(
        with_env(serve::MAX_JOBS_ENV_VAR, "3", serve::default_max_jobs).get(),
        3
    );
    assert_eq!(
        with_env(serve::MAX_JOBS_ENV_VAR, " 12 ", serve::default_max_jobs).get(),
        12
    );
    for bad in ["0", "eight", "-1", "", "4x"] {
        let message = panic_message_with_env(serve::MAX_JOBS_ENV_VAR, bad, || {
            let _ = serve::default_max_jobs();
        });
        assert!(
            message.contains("HTD_SERVE_MAX_JOBS") && message.contains("positive integer"),
            "HTD_SERVE_MAX_JOBS={bad}: {message}"
        );
        let error = with_env(serve::MAX_JOBS_ENV_VAR, bad, serve::try_default_max_jobs)
            .expect_err("malformed HTD_SERVE_MAX_JOBS is an error");
        assert!(error.contains("HTD_SERVE_MAX_JOBS"), "{error}");
    }
    assert_eq!(
        without_env(serve::MAX_JOBS_ENV_VAR, serve::default_max_jobs).get(),
        serve::DEFAULT_MAX_JOBS,
        "unset default"
    );
}

/// `HTD_SERVE_CACHE_BYTES` must be a non-negative integer; `0` is a valid
/// setting (it disables the snapshot cache), garbage is not.
#[test]
fn serve_cache_bytes_env_override_is_strict() {
    let _guard = env_lock();
    assert_eq!(
        with_env(serve::CACHE_BYTES_ENV_VAR, "0", serve::default_cache_bytes),
        0,
        "zero disables caching, it is not an error"
    );
    assert_eq!(
        with_env(
            serve::CACHE_BYTES_ENV_VAR,
            " 1048576 ",
            serve::default_cache_bytes
        ),
        1_048_576
    );
    for bad in ["-1", "1MiB", "lots", "", "0.5"] {
        let message = panic_message_with_env(serve::CACHE_BYTES_ENV_VAR, bad, || {
            let _ = serve::default_cache_bytes();
        });
        assert!(
            message.contains("HTD_SERVE_CACHE_BYTES") && message.contains("byte count"),
            "HTD_SERVE_CACHE_BYTES={bad}: {message}"
        );
        let error = with_env(
            serve::CACHE_BYTES_ENV_VAR,
            bad,
            serve::try_default_cache_bytes,
        )
        .expect_err("malformed HTD_SERVE_CACHE_BYTES is an error");
        assert!(error.contains("HTD_SERVE_CACHE_BYTES"), "{error}");
    }
    assert_eq!(
        without_env(serve::CACHE_BYTES_ENV_VAR, serve::default_cache_bytes),
        serve::DEFAULT_CACHE_BYTES,
        "unset default"
    );
}

/// `HTD_SERVE_BUDGET_DEADLINE_MS` / `HTD_SERVE_BUDGET_CONFLICTS` set the
/// server-wide per-job budget cap.  Both must be positive integers — a zero
/// deadline would exhaust every job on arrival, so "no limit" is spelled by
/// unsetting the variable, not by `0`.
#[test]
fn serve_budget_env_overrides_are_strict() {
    let _guard = env_lock();
    let budget = with_env(serve::BUDGET_DEADLINE_ENV_VAR, "250", || {
        with_env(serve::BUDGET_CONFLICTS_ENV_VAR, " 1000 ", || {
            serve::try_default_budget().expect("well-formed budget")
        })
    });
    assert_eq!(budget.deadline, Some(std::time::Duration::from_millis(250)));
    assert_eq!(budget.conflict_ceiling, Some(1000));
    for bad in ["0", "-1", "soon", "", "1.5"] {
        let error = with_env(
            serve::BUDGET_DEADLINE_ENV_VAR,
            bad,
            serve::try_default_budget,
        )
        .expect_err("malformed deadline is an error");
        assert!(
            error.contains("HTD_SERVE_BUDGET_DEADLINE_MS"),
            "HTD_SERVE_BUDGET_DEADLINE_MS={bad}: {error}"
        );
        let error = with_env(
            serve::BUDGET_CONFLICTS_ENV_VAR,
            bad,
            serve::try_default_budget,
        )
        .expect_err("malformed conflict ceiling is an error");
        assert!(
            error.contains("HTD_SERVE_BUDGET_CONFLICTS"),
            "HTD_SERVE_BUDGET_CONFLICTS={bad}: {error}"
        );
    }
    let unset = without_env(serve::BUDGET_DEADLINE_ENV_VAR, || {
        without_env(serve::BUDGET_CONFLICTS_ENV_VAR, serve::try_default_budget)
    })
    .expect("unset budget is the default");
    assert!(unset.is_unlimited(), "budgets are strictly opt-in");
}

/// `HTD_SERVE_DRAIN_DEADLINE_MS` / `HTD_SERVE_HEADER_TIMEOUT_MS` are
/// positive millisecond counts with built-in defaults.
#[test]
fn serve_drain_and_header_timeout_env_overrides_are_strict() {
    let _guard = env_lock();
    assert_eq!(
        with_env(
            serve::DRAIN_DEADLINE_ENV_VAR,
            "1500",
            serve::try_default_drain_deadline
        ),
        Ok(std::time::Duration::from_millis(1500))
    );
    assert_eq!(
        with_env(
            serve::HEADER_TIMEOUT_ENV_VAR,
            " 750 ",
            serve::try_default_header_timeout
        ),
        Ok(std::time::Duration::from_millis(750))
    );
    for bad in ["0", "forever", ""] {
        let error = with_env(
            serve::DRAIN_DEADLINE_ENV_VAR,
            bad,
            serve::try_default_drain_deadline,
        )
        .expect_err("malformed drain deadline is an error");
        assert!(
            error.contains("HTD_SERVE_DRAIN_DEADLINE_MS"),
            "HTD_SERVE_DRAIN_DEADLINE_MS={bad}: {error}"
        );
        let error = with_env(
            serve::HEADER_TIMEOUT_ENV_VAR,
            bad,
            serve::try_default_header_timeout,
        )
        .expect_err("malformed header timeout is an error");
        assert!(
            error.contains("HTD_SERVE_HEADER_TIMEOUT_MS"),
            "HTD_SERVE_HEADER_TIMEOUT_MS={bad}: {error}"
        );
    }
    assert_eq!(
        without_env(
            serve::DRAIN_DEADLINE_ENV_VAR,
            serve::try_default_drain_deadline
        ),
        Ok(serve::DEFAULT_DRAIN_DEADLINE)
    );
    assert_eq!(
        without_env(
            serve::HEADER_TIMEOUT_ENV_VAR,
            serve::try_default_header_timeout
        ),
        Ok(serve::DEFAULT_HEADER_TIMEOUT)
    );
}

/// `HTD_SERVE_FAULT` acceptance is compiled in only for test builds of the
/// `htd-serve` crate itself and builds with its `fault-injection` feature.
/// This test binary links the *regular* library build, so any set value —
/// even a well-formed one — must be refused loudly, never silently ignored:
/// an operator who sets a fault knob a build cannot honour is told so.
#[test]
fn serve_fault_env_is_refused_by_builds_without_the_hooks() {
    let _guard = env_lock();
    for value in ["runner-panic", "solve-stall:100", "coffee-spill"] {
        let error = with_env(serve::FAULT_ENV_VAR, value, serve::fault::try_default_fault)
            .expect_err("a non-fault build refuses every HTD_SERVE_FAULT value");
        assert!(
            error.contains("HTD_SERVE_FAULT") && error.contains("fault-injection"),
            "HTD_SERVE_FAULT={value}: {error}"
        );
        let error = with_env(serve::FAULT_ENV_VAR, value, serve::ServeOptions::from_env)
            .expect_err("from_env propagates the refusal");
        assert!(error.contains("HTD_SERVE_FAULT"), "{error}");
    }
    assert_eq!(
        without_env(serve::FAULT_ENV_VAR, serve::fault::try_default_fault),
        Ok(None),
        "unset means no fault, in every build"
    );

    // The *parser* is always compiled (tests construct faults directly), and
    // it is strict in the usual way.
    use golden_free_htd::serve::FaultSpec;
    assert_eq!(
        "solve-stall:250".parse(),
        Ok(FaultSpec::SolveStall(std::time::Duration::from_millis(250)))
    );
    assert!("solve-stall:soon".parse::<FaultSpec>().is_err());
    assert!("coffee-spill".parse::<FaultSpec>().is_err());
}
