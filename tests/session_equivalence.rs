//! Backend-equivalence suite for the session redesign: the incremental
//! `DetectionSession` path must reach the same verdicts as the legacy
//! per-property re-encode path (`TrojanDetector`) on every bundled
//! benchmark, while performing exactly one bit-blast per flow run.

#![allow(deprecated)] // the legacy TrojanDetector is the reference path here

use golden_free_htd::detect::{
    DetectionOutcome, DetectionReport, DetectorConfig, SessionBuilder, TrojanDetector,
};
use golden_free_htd::trusthub::registry::Benchmark;

fn legacy_run(benchmark: Benchmark) -> DetectionReport {
    let design = benchmark.build().expect("benchmark builds");
    let config = DetectorConfig {
        benign_state: benchmark.benign_state(&design),
        ..DetectorConfig::default()
    };
    TrojanDetector::with_config(&design, config)
        .expect("legacy detector accepts the design")
        .run()
        .expect("legacy flow completes")
}

fn session_run(benchmark: Benchmark) -> (DetectionReport, u64) {
    let design = benchmark.build().expect("benchmark builds");
    let config = DetectorConfig {
        benign_state: benchmark.benign_state(&design),
        ..DetectorConfig::default()
    };
    let mut session = SessionBuilder::new(design)
        .config(config)
        .build()
        .expect("session builder accepts the design");
    let report = session.run().expect("session flow completes");
    (report, session.session_stats().bit_blasts)
}

fn diff_set(outcome: &DetectionOutcome) -> Option<Vec<String>> {
    match outcome {
        DetectionOutcome::PropertyFailed { counterexample, .. } => {
            let mut names: Vec<String> = counterexample
                .diff_names()
                .iter()
                .map(ToString::to_string)
                .collect();
            names.sort();
            Some(names)
        }
        _ => None,
    }
}

fn assert_equivalent(benchmark: Benchmark) {
    let legacy = legacy_run(benchmark);
    let (session, bit_blasts) = session_run(benchmark);
    let name = benchmark.name();

    assert_eq!(
        bit_blasts, 1,
        "{name}: the session must bit-blast exactly once"
    );
    assert_eq!(
        legacy.outcome.is_secure(),
        session.outcome.is_secure(),
        "{name}: verdict mismatch\nlegacy: {legacy}\nsession: {session}"
    );
    assert_eq!(
        legacy.outcome.detected_by(),
        session.outcome.detected_by(),
        "{name}: detection mechanism mismatch"
    );
    assert_eq!(
        legacy.properties_checked(),
        session.properties_checked(),
        "{name}: different number of properties checked"
    );
    assert_eq!(
        legacy.fanout_levels, session.fanout_levels,
        "{name}: structural levels must be identical"
    );
    // The diverging signals of the failing property.  Both paths stop at the
    // same property, but the solver is free to return different models — a
    // counterexample may flip one payload signal or several at once — so the
    // reported sets are compared up to overlap, not equality.
    match (diff_set(&legacy.outcome), diff_set(&session.outcome)) {
        (None, None) => {}
        (Some(legacy_diffs), Some(session_diffs)) => {
            assert!(
                !legacy_diffs.is_empty(),
                "{name}: legacy counterexample has no diffs"
            );
            assert!(
                !session_diffs.is_empty(),
                "{name}: session counterexample has no diffs"
            );
            assert!(
                legacy_diffs.iter().any(|s| session_diffs.contains(s)),
                "{name}: counterexamples point at disjoint divergences \
                 (legacy: {legacy_diffs:?}, session: {session_diffs:?})"
            );
        }
        (legacy_diffs, session_diffs) => panic!(
            "{name}: one path found a counterexample and the other did not \
             (legacy: {legacy_diffs:?}, session: {session_diffs:?})"
        ),
    }
    if let (
        DetectionOutcome::UncoveredSignals {
            signals: legacy_signals,
        },
        DetectionOutcome::UncoveredSignals {
            signals: session_signals,
        },
    ) = (&legacy.outcome, &session.outcome)
    {
        assert_eq!(
            legacy_signals, session_signals,
            "{name}: uncovered-signal mismatch"
        );
    }
}

#[test]
fn table1_benchmarks_agree_between_session_and_legacy_paths() {
    for benchmark in Benchmark::table1() {
        assert_equivalent(benchmark);
    }
}

#[test]
fn ht_free_and_case_study_benchmarks_agree_between_paths() {
    for benchmark in [
        Benchmark::AesHtFree,
        Benchmark::BasicRsaHtFree,
        Benchmark::Rs232HtFree,
        Benchmark::Rs232T2400,
    ] {
        assert_equivalent(benchmark);
    }
}

#[test]
fn session_path_reuses_its_encoding_across_properties() {
    // On a clean design the session proves N properties; re-running the same
    // session must not re-encode anything (the AIG is already mirrored).
    let design = Benchmark::Rs232HtFree.build().expect("benchmark builds");
    let mut session = SessionBuilder::new(design).build().expect("session builds");
    session.run().expect("first run completes");
    let stats_first = session.session_stats();
    session.run().expect("second run completes");
    let stats_second = session.session_stats();
    assert_eq!(stats_first.bit_blasts, 1);
    assert_eq!(stats_second.bit_blasts, 1);
    assert_eq!(
        stats_first.nodes_encoded, stats_second.nodes_encoded,
        "a repeated run must not grow the encoding"
    );
    assert!(stats_second.properties_checked > stats_first.properties_checked);
}
