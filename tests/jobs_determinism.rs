//! Determinism suite for the flow-graph executor: a flow run must produce
//! the same `DetectionReport` — verdicts, counterexamples, coverage *and*
//! work counters — for every worker count and with level pipelining on or
//! off.
//!
//! The guarantee comes from the execution model: every per-signal
//! sub-property is solved on a fork of its generation's frozen snapshot, the
//! master mutation stream is a pure function of the (ascending) prepare
//! order, results merge in node order (first counterexample wins), and only
//! the consumed prefix of tasks contributes statistics.  Wall-clock
//! durations are the only nondeterministic fields, so reports are compared
//! after [`DetectionReport::normalized`] zeroes them.
//!
//! The matrix runs with oversubscription enabled so multi-worker schedules
//! are exercised even on single-core hosts.

use std::num::NonZeroUsize;

use golden_free_htd::detect::{
    DetectionReport, DetectorConfig, EngineChoice, PropertyScheduler, SessionBuilder,
};
use golden_free_htd::trusthub::registry::Benchmark;

fn run_with(benchmark: Benchmark, jobs: usize, pipeline: bool) -> DetectionReport {
    let design = benchmark.build().expect("benchmark builds");
    let config = DetectorConfig {
        benign_state: benchmark.benign_state(&design),
        ..DetectorConfig::default()
    };
    let scheduler = PropertyScheduler::new(NonZeroUsize::new(jobs).expect("positive jobs"))
        .with_level_pipelining(pipeline)
        .with_oversubscription(true);
    SessionBuilder::new(design)
        .config(config)
        .engine(EngineChoice::Scheduled(scheduler))
        .build()
        .expect("session builder accepts the design")
        .run()
        .expect("flow completes")
}

fn assert_schedule_invariant(benchmark: Benchmark) {
    let baseline = run_with(benchmark, 1, true).normalized();
    for (jobs, pipeline) in [(1, false), (2, true), (2, false), (4, true), (4, false)] {
        let variant = run_with(benchmark, jobs, pipeline).normalized();
        assert_eq!(
            baseline,
            variant,
            "{}: --jobs 1 and --jobs {jobs} (pipeline: {pipeline}) reports differ",
            benchmark.name()
        );
        // Belt and braces: the rendered reports must be byte-identical too
        // (the Debug form covers every field, including counterexamples).
        assert_eq!(
            format!("{baseline:?}"),
            format!("{variant:?}"),
            "{}: rendered reports differ at --jobs {jobs} (pipeline: {pipeline})",
            benchmark.name()
        );
    }
}

/// Every bundled benchmark — the 28 infected Table-I rows, the HT-free
/// references and the UART case study — must report identically across the
/// whole schedule matrix: 1, 2 and 4 worker shards, level pipelining on and
/// off.
#[test]
fn all_bundled_benchmarks_report_identically_for_any_schedule() {
    for benchmark in Benchmark::all() {
        assert_schedule_invariant(benchmark);
    }
}

/// Repeated runs with the same schedule are also bit-stable (no hidden
/// dependence on thread scheduling or hash-map iteration order).
#[test]
fn repeated_runs_are_bit_stable() {
    for benchmark in [
        Benchmark::AesT1600,
        Benchmark::BasicRsaT200,
        Benchmark::Rs232HtFree,
    ] {
        let first = run_with(benchmark, 4, true).normalized();
        let second = run_with(benchmark, 4, true).normalized();
        assert_eq!(first, second, "{}: unstable report", benchmark.name());
    }
}
