//! Determinism suite for the sharded property scheduler: a flow run must
//! produce the same `DetectionReport` — verdicts, counterexamples, coverage
//! *and* work counters — for every worker count.
//!
//! The guarantee comes from the sharding model: every per-signal sub-property
//! is solved on a fork of the same frozen master snapshot, results merge in
//! sub-property id order (first counterexample wins), and only the consumed
//! prefix of tasks contributes statistics.  Wall-clock durations are the only
//! nondeterministic fields, so reports are compared after
//! [`DetectionReport::normalized`] zeroes them.

use std::num::NonZeroUsize;

use golden_free_htd::detect::{DetectionReport, DetectorConfig, SessionBuilder};
use golden_free_htd::trusthub::registry::Benchmark;

fn run_with_jobs(benchmark: Benchmark, jobs: usize) -> DetectionReport {
    let design = benchmark.build().expect("benchmark builds");
    let config = DetectorConfig {
        benign_state: benchmark.benign_state(&design),
        ..DetectorConfig::default()
    };
    SessionBuilder::new(design)
        .config(config)
        .jobs(NonZeroUsize::new(jobs).expect("positive jobs"))
        .build()
        .expect("session builder accepts the design")
        .run()
        .expect("flow completes")
}

fn assert_jobs_invariant(benchmark: Benchmark) {
    let baseline = run_with_jobs(benchmark, 1).normalized();
    for jobs in [2usize, 4] {
        let parallel = run_with_jobs(benchmark, jobs).normalized();
        assert_eq!(
            baseline,
            parallel,
            "{}: --jobs 1 and --jobs {jobs} reports differ",
            benchmark.name()
        );
        // Belt and braces: the rendered reports must be byte-identical too
        // (the Debug form covers every field, including counterexamples).
        assert_eq!(
            format!("{baseline:?}"),
            format!("{parallel:?}"),
            "{}: rendered reports differ at --jobs {jobs}",
            benchmark.name()
        );
    }
}

/// Every bundled benchmark — the 28 infected Table-I rows, the HT-free
/// references and the UART case study — must report identically for 1, 2
/// and 4 worker shards.
#[test]
fn all_bundled_benchmarks_report_identically_for_any_worker_count() {
    for benchmark in Benchmark::all() {
        assert_jobs_invariant(benchmark);
    }
}

/// Repeated runs with the same worker count are also bit-stable (no hidden
/// dependence on thread scheduling or hash-map iteration order).
#[test]
fn repeated_runs_are_bit_stable() {
    for benchmark in [
        Benchmark::AesT1600,
        Benchmark::BasicRsaT200,
        Benchmark::Rs232HtFree,
    ] {
        let first = run_with_jobs(benchmark, 4).normalized();
        let second = run_with_jobs(benchmark, 4).normalized();
        assert_eq!(first, second, "{}: unstable report", benchmark.name());
    }
}
